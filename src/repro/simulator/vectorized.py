"""NumPy-vectorized fast path for the concrete (trace-based) pipeline.

The reference implementations in :mod:`repro.simulator.trace`,
:mod:`repro.simulator.lru` and :mod:`repro.simulator.set_assoc` run one
Python-level iteration per memory access, which makes the trace fallback of
the analytical model, ``cross_check`` validation and the simulator baselines
the dominant wall-time cost of a run.  This module reimplements the same
pipeline on NumPy arrays:

* **trace generation** — iteration domains are enumerated as index arrays
  (bounding box from the rational bounds, then vectorized constraint
  filtering), schedule values become integer key matrices sorted with a
  stable lexsort, and the affine address math is evaluated as exact integer
  matrix operations;
* **stack-distance profiling** — the per-access binary-indexed-tree loop of
  the Bennett-Kruskal algorithm is replaced by an offline merge-counting
  pass (``O(n log^2 n)`` NumPy work, no Python-level per-access iteration):
  the stack distance of access ``t`` with previous occurrence ``p`` is
  ``(t - p) - #{s < t : prev[s] > p}``, a dominance count evaluated with a
  bottom-up merge and batched ``searchsorted``;
* **hit/miss evaluation** — fully associative LRU statistics fall out of the
  distance array directly; set-associative LRU statistics reuse the same
  profiler on the trace grouped (stably) by set index; tree-PLRU and FIFO —
  which have no distance formulation — reuse the vectorized trace and the
  same stable set grouping, replaying each set's (much shorter) subsequence
  with a lean per-set loop (:func:`set_associative_policy_stats`);
* **write-back accounting** — the ``writebacks`` counter of the reference
  caches is recovered from the distance array by residency-period counting
  (each miss starts a period; a period containing a write emits exactly one
  write-back, at eviction or at the end-of-run flush).

Every function is bit-exact against its reference: the trace order matches
:meth:`TraceGenerator.accesses`, the distances match
:class:`StackDistanceProfiler`, and the statistics match
:class:`FullyAssociativeLRU` / :class:`SetAssociativeCache` under the
hierarchy's end-of-run flush convention.  Only prefetch-enabled levels
(:attr:`CacheLevelConfig.prefetch_degree`) stay on the reference
implementation — prefetches perturb replacement state mid-trace in a way no
offline pass expresses.

NumPy is an optional extra: :func:`resolve_backend` decides between the
``"numpy"`` and ``"python"`` implementations, honouring the
``REPRO_BACKEND`` environment variable and falling back automatically when
NumPy is not installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isl.veceval import (
    BACKENDS,
    BACKEND_ENV,
    BackendUnavailableError,
    _np_full_like_any,
    _require_numpy,
    default_backend,
    eval_qpoly_arrays as _eval_qpoly,
    numpy_available,
    resolve_backend,
    validate_backend_env,
)
from ..scop.scop import Scop, Statement
from .lru import CacheStatistics
from .trace import ArrayLayout

__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "BackendUnavailableError",
    "TraceArrays",
    "default_backend",
    "distance_histogram",
    "fully_associative_stats",
    "misses_for_capacity",
    "numpy_available",
    "resolve_backend",
    "set_associative_policy_stats",
    "set_associative_stats",
    "simulate_hierarchy_arrays",
    "stack_distances",
    "trace_arrays",
    "trace_model_curve",
    "validate_backend_env",
]


# ----------------------------------------------------------------------
# Vectorized domain enumeration and trace generation
# ----------------------------------------------------------------------
def _enumerate_statement(statement: Statement, np) -> Dict[str, "object"]:
    """Integer points of the iteration domain as parallel index arrays.

    The points come back in lexicographic order of ``statement.loop_vars``,
    which is exactly the order :meth:`Statement.enumerate_instances`
    produces, so downstream stable sorts preserve reference tie-breaking.
    """
    from ..isl.constraints import variable_range

    names = list(statement.loop_vars)
    domain = statement.domain
    if not names:
        if domain.has_trivially_false():
            return {}
        return {"__count": 1}
    axes = []
    for name in names:
        low, high = variable_range(domain, name, [n for n in domain.variables() if n != name])
        if high < low:
            return {name: np.empty(0, dtype=np.int64) for name in names}
        axes.append(np.arange(low, high + 1, dtype=np.int64))
    grids = np.meshgrid(*axes, indexing="ij")
    values = {name: grid.reshape(-1) for name, grid in zip(names, grids)}
    keep = None
    for constraint in domain.constraints:
        evaluated = _eval_qpoly(constraint.expr, values, np)
        ok = (evaluated == 0) if constraint.kind == "eq" else (evaluated >= 0)
        keep = ok if keep is None else (keep & ok)
    if keep is not None and not keep.all():
        values = {name: array[keep] for name, array in values.items()}
    return values


@dataclass
class TraceArrays:
    """The full memory trace of a SCoP as parallel NumPy arrays."""

    #: Byte addresses, one entry per dynamic access, in execution order.
    addresses: "object"
    #: Element sizes in bytes (parallel to ``addresses``).
    sizes: "object"
    #: Write flags (parallel to ``addresses``).
    is_write: "object"
    #: The array layout used to place the arrays (same as the reference).
    layout: ArrayLayout
    line_size: int

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    def line_indices(self, line_size: Optional[int] = None) -> "object":
        np = _require_numpy()
        return np.floor_divide(self.addresses, line_size or self.line_size)


def trace_arrays(scop: Scop, *, line_size: int = 64, padded: bool = True) -> TraceArrays:
    """Vectorized equivalent of :meth:`TraceGenerator.accesses`.

    Returns the trace in exactly the reference execution order: statement
    instances sorted by their (zero-padded) schedule vectors with stable
    tie-breaking on statement order and lexicographic instance order, and one
    access per array reference in program order within each instance.
    """
    np = _require_numpy()
    layout = ArrayLayout(scop, line_size=line_size, padded=padded)
    schedule_length = scop.schedule_length()

    per_statement: List[Tuple[Statement, Dict[str, "object"], int]] = []
    counts: List[int] = []
    for statement in scop.statements:
        values = _enumerate_statement(statement, np)
        if "__count" in values:
            count = values["__count"]
            values = {}
        else:
            count = int(next(iter(values.values())).shape[0]) if values else 0
        per_statement.append((statement, values, count))
        counts.append(count)

    total_instances = sum(counts)
    keys = np.zeros((total_instances, max(schedule_length, 1)), dtype=np.int64)
    stmt_of = np.zeros(total_instances, dtype=np.int64)
    row_of = np.zeros(total_instances, dtype=np.int64)
    offset = 0
    for stmt_index, (statement, values, count) in enumerate(per_statement):
        if not count:
            continue
        block = slice(offset, offset + count)
        stmt_of[block] = stmt_index
        row_of[block] = np.arange(count, dtype=np.int64)
        for position, expr in enumerate(statement.schedule_exprs(schedule_length)):
            if expr.is_constant():
                keys[block, position] = int(expr.constant_value())
            else:
                keys[block, position] = _eval_qpoly(expr, values, np)
        offset += count

    # Stable lexicographic sort on the schedule vectors: np.lexsort's last
    # key is primary, so feed the columns reversed.  Ties keep concatenation
    # order (statement order, then instance order), like the reference sort.
    order = np.lexsort(tuple(keys[:, position] for position in reversed(range(keys.shape[1]))))

    access_counts_by_stmt = np.asarray([len(s.accesses) for s, _, _ in per_statement], dtype=np.int64)
    per_instance_accesses = access_counts_by_stmt[stmt_of[order]]
    starts = np.concatenate(([0], np.cumsum(per_instance_accesses)))
    total_accesses = int(starts[-1])

    addresses = np.zeros(total_accesses, dtype=np.int64)
    sizes = np.zeros(total_accesses, dtype=np.int64)
    writes = np.zeros(total_accesses, dtype=bool)

    sorted_stmt = stmt_of[order]
    sorted_row = row_of[order]
    for stmt_index, (statement, values, count) in enumerate(per_statement):
        refs = statement.accesses
        if not count or not refs:
            continue
        positions = np.nonzero(sorted_stmt == stmt_index)[0]
        rows = sorted_row[positions]
        out_starts = starts[positions]
        for ref_index, ref in enumerate(refs):
            array = ref.array
            strides = layout.strides[array.name]
            offsets = None
            for dim, expr in enumerate(ref.indices):
                index = _eval_qpoly(expr, values, np) if values else _np_full_like_any(values, int(expr.constant_value()), np)
                _check_bounds(index, array, dim, statement.name, np)
                contribution = index * int(strides[dim])
                offsets = contribution if offsets is None else offsets + contribution
            if offsets is None:
                offsets = np.zeros(count, dtype=np.int64)
            element_addresses = layout.base[array.name] + offsets * array.element_size
            slots = out_starts + ref_index
            addresses[slots] = element_addresses[rows]
            sizes[slots] = array.element_size
            writes[slots] = ref.is_write
    return TraceArrays(addresses=addresses, sizes=sizes, is_write=writes, layout=layout, line_size=line_size)


def _check_bounds(index, array, dim: int, statement: str, np) -> None:
    extent = array.shape[dim]
    bad = (index < 0) | (index >= extent)
    if bad.any():
        offender = int(index[np.argmax(bad)])
        raise IndexError(
            f"statement {statement} accesses {array.name} at index {offender} in dimension "
            f"{dim} outside its shape {list(array.shape)}"
        )


# ----------------------------------------------------------------------
# Vectorized Bennett-Kruskal stack distances
# ----------------------------------------------------------------------
def _previous_occurrence(lines, np):
    """``prev[t]`` = index of the previous access to ``lines[t]`` or ``-1``."""
    n = lines.shape[0]
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    prev = np.full(n, -1, dtype=np.int64)
    if n > 1:
        same = sorted_lines[1:] == sorted_lines[:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def _count_greater_before(values, np):
    """``out[t] = #{s < t : values[s] > values[t]}`` by bottom-up merging.

    A classic inversion count, evaluated level by level: at block size ``b``
    every (sorted) even block is merged against the queries of its odd
    sibling with one batched ``searchsorted`` over offset-disambiguated
    keys.  Each ordered pair (s, t) is counted exactly once — at the level
    where s and t first fall into sibling blocks.
    """
    n = values.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    size = 1
    while size < n:
        size *= 2
    low = int(values.min())
    padded = np.full(size, low - 1, dtype=np.int64)
    padded[:n] = values
    span = int(values.max()) - (low - 1) + 2
    block = 1
    while block < size:
        pair_count = size // (2 * block)
        pairs = padded.reshape(pair_count, 2 * block)
        left_sorted = np.sort(pairs[:, :block], axis=1)
        queries = pairs[:, block:]
        pair_ids = np.arange(pair_count, dtype=np.int64)[:, None]
        base = low - 1
        left_keys = ((left_sorted - base) + pair_ids * span).reshape(-1)
        query_keys = ((queries - base) + pair_ids * span).reshape(-1)
        positions = np.searchsorted(left_keys, query_keys, side="right")
        leq = positions - np.repeat(pair_ids.reshape(-1) * block, block)
        greater = block - leq
        targets = (np.arange(size, dtype=np.int64).reshape(pair_count, 2 * block)[:, block:]).reshape(-1)
        in_range = targets < n
        # Each access appears in exactly one right block per level, so the
        # target indices are unique and a fancy-indexed += is safe (and much
        # faster than np.add.at).
        counts[targets[in_range]] += greater[in_range]
        block *= 2
    return counts


def stack_distances(lines) -> "object":
    """Backward stack distance of every access; ``-1`` for first touches.

    Matches :meth:`StackDistanceProfiler.profile` exactly (with ``-1``
    standing in for ``None``): the distance of access ``t`` with previous
    occurrence ``p`` is the number of distinct lines in ``(p, t)`` plus one,
    i.e. ``(t - p)`` minus the number of reuse edges fully inside ``(p, t)``.
    """
    np = _require_numpy()
    lines = np.asarray(lines, dtype=np.int64)
    n = lines.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    prev = _previous_occurrence(lines, np)
    inversions = _count_greater_before(prev, np)
    t = np.arange(n, dtype=np.int64)
    distances = (t - prev) - inversions
    distances[prev < 0] = -1
    return distances


def distance_histogram(lines) -> Dict[Optional[int], int]:
    """Stack-distance histogram with the reference ``None`` bucket."""
    np = _require_numpy()
    distances = stack_distances(lines)
    result: Dict[Optional[int], int] = {}
    values, counts = np.unique(distances, return_counts=True)
    for value, count in zip(values.tolist(), counts.tolist()):
        result[None if value < 0 else value] = count
    return result


def misses_for_capacity(lines, capacity_lines: int) -> Tuple[int, int]:
    """Vectorized (compulsory, capacity) miss counts for one cache size."""
    distances = stack_distances(lines)
    return _misses_from_distances(distances, capacity_lines)


def _misses_from_distances(distances, capacity_lines: int) -> Tuple[int, int]:
    compulsory = int((distances < 0).sum())
    capacity = int((distances > capacity_lines).sum())
    return compulsory, capacity


def _count_writebacks(lines, distances, is_write, capacity_lines: int, np) -> int:
    """LRU write-backs over this trace, end-of-run flush included.

    Every miss starts a new residency period of its line (the line was not
    in the cache, so any previous period ended with an eviction); a period
    containing at least one write leaves the line dirty and emits exactly
    one write-back — at its eviction, or at the final flush for the period
    still resident when the trace ends.  Grouping accesses stably by line
    makes periods contiguous runs, so one cumulative sum over the miss flags
    labels them and one ``unique`` over the written labels counts them.
    """
    is_write = np.asarray(is_write, dtype=bool)
    if not is_write.any():
        return 0
    miss = (distances < 0) | (distances > capacity_lines)
    order = np.argsort(lines, kind="stable")
    periods = np.cumsum(miss[order])
    return int(np.unique(periods[is_write[order]]).size)


def fully_associative_stats(
    lines, cache_size: int, line_size: int = 64, *, is_write=None
) -> CacheStatistics:
    """Statistics identical to :func:`simulate_fully_associative`.

    With ``is_write`` (a parallel bool array), ``writebacks`` is filled in
    under the hierarchy's end-of-run flush convention
    (:meth:`FullyAssociativeLRU.flush`); without it the counter stays zero.
    """
    if cache_size <= 0 or line_size <= 0:
        raise ValueError("cache and line size must be positive")
    if cache_size % line_size:
        raise ValueError("cache size must be a multiple of the line size")
    np = _require_numpy()
    lines = np.asarray(lines, dtype=np.int64)
    distances = stack_distances(lines)
    stats = _stats_from_distances(distances, cache_size // line_size, conflict=False)
    if is_write is not None:
        stats.writebacks = _count_writebacks(
            lines, distances, is_write, cache_size // line_size, np
        )
    return stats


def set_associative_stats(
    lines,
    cache_size: int,
    line_size: int = 64,
    associativity: int = 8,
    *,
    is_write=None,
) -> CacheStatistics:
    """Statistics identical to :class:`SetAssociativeCache` with LRU.

    Each set observes the stable subsequence of lines mapping to it, so the
    per-set LRU stack distance decides hits; grouping the trace stably by set
    index lets one global profiling pass answer every set at once (lines of
    different sets never alias, and each group is contiguous after the stable
    sort, so no reuse window spans a foreign set).  ``is_write`` fills in
    ``writebacks`` exactly like :func:`fully_associative_stats`.
    """
    np = _require_numpy()
    if cache_size % (line_size * associativity):
        raise ValueError("cache size must be a multiple of line size * associativity")
    lines = np.asarray(lines, dtype=np.int64)
    num_sets = cache_size // (line_size * associativity)
    order = np.argsort(lines % num_sets, kind="stable")
    grouped = lines[order]
    distances = stack_distances(grouped)
    stats = _stats_from_distances(distances, associativity, conflict=True)
    if is_write is not None:
        writes = np.asarray(is_write, dtype=bool)[order]
        stats.writebacks = _count_writebacks(grouped, distances, writes, associativity, np)
    return stats


def set_associative_policy_stats(
    lines,
    cache_size: int,
    line_size: int = 64,
    associativity: int = 8,
    *,
    policy: str,
    is_write=None,
) -> CacheStatistics:
    """Statistics identical to :class:`SetAssociativeCache` with FIFO/tree-PLRU.

    Neither policy is a stack algorithm, so there is no distance
    formulation; but sets never interact, so after the same stable
    set-grouping :func:`set_associative_stats` uses, each set's (short)
    subsequence is replayed by a lean per-set loop with exactly the
    reference's replacement structures.  The vectorized trace generation and
    grouping — the expensive part of a run — stay array operations.
    ``is_write`` fills in ``writebacks`` under the end-of-run flush
    convention, like the other statistics functions.
    """
    from collections import OrderedDict

    from .set_assoc import ReplacementPolicy, _TreePLRUSet

    if policy not in (ReplacementPolicy.FIFO, ReplacementPolicy.TREE_PLRU):
        raise ValueError(f"unsupported replacement policy {policy!r}")
    np = _require_numpy()
    if cache_size % (line_size * associativity):
        raise ValueError("cache size must be a multiple of line size * associativity")
    lines = np.asarray(lines, dtype=np.int64)
    n = int(lines.shape[0])
    stats = CacheStatistics()
    stats.accesses = n
    if n == 0:
        return stats
    num_sets = cache_size // (line_size * associativity)
    sets = lines % num_sets
    order = np.argsort(sets, kind="stable")
    grouped = lines[order]
    grouped_sets = sets[order]
    writes = np.asarray(is_write, dtype=bool)[order] if is_write is not None else None
    boundaries = np.flatnonzero(grouped_sets[1:] != grouped_sets[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
    ends = np.concatenate((boundaries, np.asarray([n], dtype=np.int64)))

    hits = compulsory = writebacks = 0
    for start, end in zip(starts.tolist(), ends.tolist()):
        sequence = grouped[start:end].tolist()
        written = writes[start:end].tolist() if writes is not None else None
        seen: set = set()
        dirty: set = set()
        if policy == ReplacementPolicy.TREE_PLRU:
            plru_set = _TreePLRUSet(associativity)
            for position, line in enumerate(sequence):
                way = plru_set.lookup(line)
                if way is not None:
                    plru_set.touch(way)
                    hits += 1
                else:
                    if line not in seen:
                        compulsory += 1
                        seen.add(line)
                    evicted = plru_set.insert(line)
                    if evicted is not None and evicted in dirty:
                        dirty.discard(evicted)
                        writebacks += 1
                if written is not None and written[position]:
                    dirty.add(line)
        else:  # FIFO: hits never reorder; misses enqueue and evict the oldest.
            fifo_set: "OrderedDict[int, None]" = OrderedDict()
            for position, line in enumerate(sequence):
                if line in fifo_set:
                    hits += 1
                else:
                    if line not in seen:
                        compulsory += 1
                        seen.add(line)
                    fifo_set[line] = None
                    if len(fifo_set) > associativity:
                        evicted, _ = fifo_set.popitem(last=False)
                        if evicted in dirty:
                            dirty.discard(evicted)
                            writebacks += 1
                if written is not None and written[position]:
                    dirty.add(line)
        writebacks += len(dirty)  # end-of-run flush

    stats.hits = hits
    stats.compulsory_misses = compulsory
    stats.conflict_misses = n - hits - compulsory
    stats.writebacks = writebacks
    return stats


def _stats_from_distances(distances, capacity_lines: int, *, conflict: bool) -> CacheStatistics:
    stats = CacheStatistics()
    stats.accesses = int(distances.shape[0])
    compulsory = int((distances < 0).sum())
    over = int((distances > capacity_lines).sum())
    stats.compulsory_misses = compulsory
    if conflict:
        stats.conflict_misses = over
    else:
        stats.capacity_misses = over
    stats.hits = stats.accesses - compulsory - over
    return stats


# ----------------------------------------------------------------------
# Hierarchy evaluation
# ----------------------------------------------------------------------
def simulate_hierarchy_arrays(trace: TraceArrays, configs: Sequence) -> Optional[List[CacheStatistics]]:
    """Per-level statistics for an inclusive hierarchy, from one trace pass.

    Every level observes the full trace (the inclusive model), so levels are
    independent.  Statistics — including ``writebacks`` — match
    :meth:`CacheHierarchySimulator.run` (which ends with a flush) for every
    replacement policy.  Returns ``None`` only when a level enables a
    prefetcher (``prefetch_degree > 0``): prefetches perturb replacement
    state mid-trace, which no offline pass expresses, so the caller falls
    back to the reference simulator.
    """
    from .set_assoc import ReplacementPolicy

    results: List[CacheStatistics] = []
    for config in configs:
        if getattr(config, "prefetch_degree", 0):
            return None
        lines = trace.line_indices(config.line_size)
        if config.associativity is None:
            results.append(
                fully_associative_stats(
                    lines, config.cache_size, config.line_size, is_write=trace.is_write
                )
            )
        elif config.policy == ReplacementPolicy.LRU:
            results.append(
                set_associative_stats(
                    lines,
                    config.cache_size,
                    config.line_size,
                    config.associativity,
                    is_write=trace.is_write,
                )
            )
        else:
            results.append(
                set_associative_policy_stats(
                    lines,
                    config.cache_size,
                    config.line_size,
                    config.associativity,
                    policy=config.policy,
                    is_write=trace.is_write,
                )
            )
    return results


def trace_model_curve(scop: Scop, *, line_size: int) -> Dict[Optional[int], int]:
    """Full stack-distance histogram of the exact trace (``None`` bucket =
    first touches), the concrete feedstock of
    :meth:`repro.core.curve.MissCurve.from_histogram` — the vectorized body
    of the analytical model's trace fallback.

    One trace generation plus one profiling pass answer *every* capacity: the
    histogram's suffix sums are the whole miss curve, so a 64-point sweep
    costs the same as a single fixed-capacity fallback analysis.
    """
    return distance_histogram(trace_arrays(scop, line_size=line_size, padded=True).line_indices())
