"""A Dinero IV style trace-driven cache simulator facade.

This is the reproduction's substitute for the Dinero IV simulator the paper
benchmarks against: it enumerates the full memory trace of a SCoP and feeds
it through a configurable cache hierarchy.  Its execution time is
proportional to the number of memory accesses (Figure 1 / Figure 15b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..scop.scop import Scop
from .hierarchy import CacheHierarchySimulator, CacheLevelConfig
from .lru import CacheStatistics, StackDistanceProfiler
from .trace import TraceGenerator

__all__ = ["DineroResult", "DineroSimulator", "simulate_scop"]


@dataclass
class DineroResult:
    """Result of one simulation run."""

    kernel: str
    levels: List[CacheStatistics]
    accesses: int
    elapsed_seconds: float

    def level(self, index: int) -> CacheStatistics:
        return self.levels[index]

    def misses(self, index: int = 0) -> int:
        return self.levels[index].misses

    def as_dict(self) -> Dict:
        return {
            "kernel": self.kernel,
            "accesses": self.accesses,
            "elapsed_seconds": self.elapsed_seconds,
            "levels": [stats.as_dict() for stats in self.levels],
        }


class DineroSimulator:
    """Trace-driven simulation of a SCoP through a cache hierarchy."""

    def __init__(
        self,
        levels: Sequence[CacheLevelConfig],
        *,
        padded_layout: bool = True,
    ) -> None:
        self.levels = list(levels)
        self.padded_layout = padded_layout

    def run(self, scop: Scop) -> DineroResult:
        start = time.perf_counter()
        line_size = self.levels[0].line_size
        generator = TraceGenerator(scop, line_size=line_size, padded=self.padded_layout)
        hierarchy = CacheHierarchySimulator(self.levels)
        accesses = 0
        for access in generator.accesses():
            accesses += 1
            hierarchy.access(access.address, is_write=access.is_write)
        elapsed = time.perf_counter() - start
        return DineroResult(
            kernel=scop.name,
            levels=hierarchy.statistics(),
            accesses=accesses,
            elapsed_seconds=elapsed,
        )

    def stack_distances(self, scop: Scop) -> List[Optional[int]]:
        """Exact per-access stack distances (profiling oracle)."""
        line_size = self.levels[0].line_size
        generator = TraceGenerator(scop, line_size=line_size, padded=self.padded_layout)
        profiler = StackDistanceProfiler()
        return profiler.profile(generator.line_trace())


def simulate_scop(
    scop: Scop,
    cache_sizes: Sequence[int],
    *,
    line_size: int = 64,
    associativity: Optional[int] = None,
    policy: str = "lru",
) -> DineroResult:
    """Convenience helper: simulate ``scop`` against one or more cache sizes."""
    levels = [
        CacheLevelConfig(cache_size=size, line_size=line_size, associativity=associativity, policy=policy)
        for size in cache_sizes
    ]
    return DineroSimulator(levels).run(scop)
