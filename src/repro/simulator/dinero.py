"""A Dinero IV style trace-driven cache simulator facade.

This is the reproduction's substitute for the Dinero IV simulator the paper
benchmarks against: it enumerates the full memory trace of a SCoP and feeds
it through a configurable cache hierarchy.  Its execution time is
proportional to the number of memory accesses (Figure 1 / Figure 15b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..scop.scop import Scop
from .hierarchy import CacheHierarchySimulator, CacheLevelConfig
from .lru import CacheStatistics, StackDistanceProfiler
from .trace import TraceGenerator

__all__ = ["DineroResult", "DineroSimulator", "simulate_scop"]


@dataclass
class DineroResult:
    """Result of one simulation run."""

    kernel: str
    levels: List[CacheStatistics]
    accesses: int
    elapsed_seconds: float

    def level(self, index: int) -> CacheStatistics:
        return self.levels[index]

    def misses(self, index: int = 0) -> int:
        return self.levels[index].misses

    def as_dict(self) -> Dict:
        return {
            "kernel": self.kernel,
            "accesses": self.accesses,
            "elapsed_seconds": self.elapsed_seconds,
            "levels": [stats.as_dict() for stats in self.levels],
        }


class DineroSimulator:
    """Trace-driven simulation of a SCoP through a cache hierarchy.

    ``backend`` selects the concrete implementation (see
    :func:`repro.simulator.vectorized.resolve_backend`): ``"numpy"`` runs
    the whole pipeline as array operations, ``"python"`` keeps the
    per-access reference loop, ``"auto"`` (default) prefers NumPy when it is
    installed.  Every replacement policy vectorizes (tree-PLRU and FIFO via
    stable set grouping plus per-set replay); only prefetch-enabled levels
    always run on the reference simulator.
    """

    def __init__(
        self,
        levels: Sequence[CacheLevelConfig],
        *,
        padded_layout: bool = True,
        backend: str = "auto",
    ) -> None:
        self.levels = list(levels)
        self.padded_layout = padded_layout
        self.backend = backend

    def _vectorizable(self) -> bool:
        """True when no level enables a prefetcher (so the vectorized pass
        will not fall back after generating the trace — the expensive half
        of a run).  All replacement policies are otherwise vectorizable."""
        return all(not getattr(config, "prefetch_degree", 0) for config in self.levels)

    def run(self, scop: Scop) -> DineroResult:
        from .vectorized import resolve_backend

        start = time.perf_counter()
        line_size = self.levels[0].line_size
        stats = None
        if resolve_backend(self.backend) == "numpy" and self._vectorizable():
            from .vectorized import simulate_hierarchy_arrays, trace_arrays

            trace = trace_arrays(scop, line_size=line_size, padded=self.padded_layout)
            stats = simulate_hierarchy_arrays(trace, self.levels)
            accesses = len(trace)
        if stats is None:
            generator = TraceGenerator(scop, line_size=line_size, padded=self.padded_layout)
            hierarchy = CacheHierarchySimulator(self.levels)
            accesses = 0
            for access in generator.accesses():
                accesses += 1
                hierarchy.access(access.address, is_write=access.is_write)
            hierarchy.flush()  # same write-back convention as the vectorized pass
            stats = hierarchy.statistics()
        elapsed = time.perf_counter() - start
        return DineroResult(
            kernel=scop.name,
            levels=stats,
            accesses=accesses,
            elapsed_seconds=elapsed,
        )

    def stack_distances(self, scop: Scop) -> List[Optional[int]]:
        """Exact per-access stack distances (profiling oracle)."""
        line_size = self.levels[0].line_size
        generator = TraceGenerator(scop, line_size=line_size, padded=self.padded_layout)
        profiler = StackDistanceProfiler()
        return profiler.profile(generator.line_trace())


def simulate_scop(
    scop: Scop,
    cache_sizes: Sequence[int],
    *,
    line_size: int = 64,
    associativity: Optional[int] = None,
    policy: str = "lru",
    prefetch_degree: int = 0,
) -> DineroResult:
    """Convenience helper: simulate ``scop`` against one or more cache sizes."""
    levels = [
        CacheLevelConfig(
            cache_size=size,
            line_size=line_size,
            associativity=associativity,
            policy=policy,
            prefetch_degree=prefetch_degree,
        )
        for size in cache_sizes
    ]
    return DineroSimulator(levels).run(scop)
