"""Fully associative LRU cache simulation and stack-distance profiling.

These are the reference implementations the analytical model is validated
against:

* :class:`FullyAssociativeLRU` simulates a single fully associative cache with
  LRU replacement, write-allocate and write-through semantics — exactly the
  hardware model of the paper (Section 2.1).
* :class:`StackDistanceProfiler` computes the exact backward stack (reuse)
  distance of every access with the classic Mattson/Bennett-Kruskal algorithm
  using a binary indexed tree, in ``O(n log n)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "CacheStatistics",
    "FullyAssociativeLRU",
    "StackDistanceProfiler",
    "simulate_fully_associative",
]


@dataclass
class CacheStatistics:
    """Hit/miss counters of a simulated cache.

    ``writebacks`` counts dirty-line evictions (plus the end-of-run flush of
    a hierarchy run) — the write-back traffic a write-back/write-allocate
    cache would generate.  Miss accounting is unchanged by the write policy:
    under write-allocate a write misses exactly like a read.
    """

    accesses: int = 0
    hits: int = 0
    compulsory_misses: int = 0
    capacity_misses: int = 0
    conflict_misses: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        return self.compulsory_misses + self.capacity_misses + self.conflict_misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "compulsory_misses": self.compulsory_misses,
            "capacity_misses": self.capacity_misses,
            "conflict_misses": self.conflict_misses,
            "writebacks": self.writebacks,
            "misses": self.misses,
        }


class FullyAssociativeLRU:
    """A fully associative LRU cache of ``cache_size`` bytes.

    The cache distinguishes compulsory misses (first touch of a line) from
    capacity misses, which is what the analytical model predicts.  Writes
    allocate the line (write-allocate), so a write behaves exactly like a
    read for miss accounting; a per-line dirty bit additionally counts the
    write-back traffic (``stats.writebacks``) a write-back cache would emit
    — one write-back per dirty eviction, plus :meth:`flush` at end of run.
    """

    def __init__(self, cache_size: int, line_size: int = 64) -> None:
        if cache_size <= 0 or line_size <= 0:
            raise ValueError("cache and line size must be positive")
        if cache_size % line_size:
            raise ValueError("cache size must be a multiple of the line size")
        self.cache_size = cache_size
        self.line_size = line_size
        self.capacity_lines = cache_size // line_size
        self.stats = CacheStatistics()
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self._touched: set = set()
        self._dirty: set = set()

    def access(self, address: int, *, is_write: bool = False) -> bool:
        """Access one byte address; returns ``True`` on a hit."""
        return self.access_line(address // self.line_size, is_write=is_write)

    def access_line(self, line: int, *, is_write: bool = False) -> bool:
        self.stats.accesses += 1
        if line in self._lines:
            self._lines.move_to_end(line)
            if is_write:
                self._dirty.add(line)
            self.stats.hits += 1
            return True
        if line in self._touched:
            self.stats.capacity_misses += 1
        else:
            self.stats.compulsory_misses += 1
            self._touched.add(line)
        self._lines[line] = None
        if is_write:
            self._dirty.add(line)
        if len(self._lines) > self.capacity_lines:
            evicted, _ = self._lines.popitem(last=False)
            if evicted in self._dirty:
                self._dirty.discard(evicted)
                self.stats.writebacks += 1
        return False

    def flush(self) -> None:
        """Write back every resident dirty line (end-of-run convention)."""
        self.stats.writebacks += len(self._dirty)
        self._dirty.clear()

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._lines.clear()
        self._touched.clear()
        self._dirty.clear()


def simulate_fully_associative(
    line_trace: Iterable[int],
    cache_size: int,
    line_size: int = 64,
) -> CacheStatistics:
    """Simulate a trace of cache-line indices through a fully associative LRU."""
    cache = FullyAssociativeLRU(cache_size, line_size)
    for line in line_trace:
        cache.access_line(line)
    return cache.stats


class _BinaryIndexedTree:
    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self.tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += self.tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, low: int, high: int) -> int:
        if high < low:
            return 0
        return self.prefix_sum(high) - (self.prefix_sum(low - 1) if low > 0 else 0)


class StackDistanceProfiler:
    """Exact LRU stack distances via the Bennett-Kruskal algorithm.

    The *backward stack distance* of an access is the number of distinct cache
    lines referenced since the previous access to the same line, including the
    line itself — i.e. the quantity the paper's symbolic pipeline computes.
    The first access of a line has an undefined (infinite) distance.
    """

    def __init__(self) -> None:
        self._distances: List[Optional[int]] = []

    def profile(self, line_trace: Iterable[int]) -> List[Optional[int]]:
        trace = list(line_trace)
        n = len(trace)
        tree = _BinaryIndexedTree(n)
        last_seen: Dict[int, int] = {}
        distances: List[Optional[int]] = []
        for time, line in enumerate(trace):
            previous = last_seen.get(line)
            if previous is None:
                distances.append(None)
            else:
                # Distinct lines accessed in (previous, time) plus the line itself.
                distances.append(tree.range_sum(previous + 1, time - 1) + 1)
            if previous is not None:
                tree.add(previous, -1)
            tree.add(time, 1)
            last_seen[line] = time
        self._distances = distances
        return distances

    def histogram(self, line_trace: Iterable[int]) -> Dict[Optional[int], int]:
        """Stack distance histogram (``None`` bucket = compulsory misses)."""
        result: Dict[Optional[int], int] = {}
        for distance in self.profile(line_trace):
            result[distance] = result.get(distance, 0) + 1
        return result

    def misses_for_capacity(self, line_trace: Iterable[int], capacity_lines: int) -> Tuple[int, int]:
        """Return (compulsory, capacity) miss counts for a given capacity.

        An access hits a fully associative LRU cache of ``capacity_lines``
        lines iff its stack distance is defined and at most the capacity.
        """
        compulsory = 0
        capacity = 0
        for distance in self.profile(line_trace):
            if distance is None:
                compulsory += 1
            elif distance > capacity_lines:
                capacity += 1
        return compulsory, capacity
