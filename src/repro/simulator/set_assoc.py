"""Set-associative cache simulation with LRU and tree-PLRU replacement.

The paper compares its fully associative model against Dinero IV simulations
of the test system's real geometry (8-way L1, 16-way L2) and attributes the
remaining prediction error to associativity and to the pseudo-LRU policy of
the hardware.  This module provides both policies so the reproduction can
regenerate those comparisons and build the "measured hardware" surrogate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from .lru import CacheStatistics

__all__ = ["SetAssociativeCache", "ReplacementPolicy"]


class ReplacementPolicy:
    LRU = "lru"
    TREE_PLRU = "tree-plru"
    FIFO = "fifo"


class _TreePLRUSet:
    """One cache set managed by a tree pseudo-LRU policy.

    The associativity is rounded up to a power of two for the decision tree;
    unused ways are never allocated.
    """

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.slots: List[Optional[int]] = [None] * ways
        size = 1
        while size < ways:
            size *= 2
        self.tree_bits = [0] * max(1, size - 1)
        self._tree_size = size

    def lookup(self, tag: int) -> Optional[int]:
        for way, value in enumerate(self.slots):
            if value == tag:
                return way
        return None

    def touch(self, way: int) -> None:
        # Walk from the root to the leaf and point the bits away from it.
        index = 0
        low, high = 0, self._tree_size
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                self.tree_bits[index] = 1  # remember: go right next time
                index = 2 * index + 1
                high = mid
            else:
                self.tree_bits[index] = 0
                index = 2 * index + 2
                low = mid
            if index >= len(self.tree_bits):
                break

    def victim(self) -> int:
        for way, value in enumerate(self.slots):
            if value is None:
                return way
        index = 0
        low, high = 0, self._tree_size
        while high - low > 1:
            mid = (low + high) // 2
            go_right = self.tree_bits[index] if index < len(self.tree_bits) else 0
            if go_right:
                index = 2 * index + 2
                low = mid
            else:
                index = 2 * index + 1
                high = mid
        return min(low, self.ways - 1)

    def insert(self, tag: int) -> Optional[int]:
        """Place ``tag`` on the victim way; returns the evicted tag, if any."""
        way = self.victim()
        evicted = self.slots[way]
        self.slots[way] = tag
        self.touch(way)
        return evicted


class SetAssociativeCache:
    """A set-associative cache with configurable replacement policy."""

    def __init__(
        self,
        cache_size: int,
        line_size: int = 64,
        associativity: int = 8,
        *,
        policy: str = ReplacementPolicy.LRU,
    ) -> None:
        if cache_size % (line_size * associativity):
            raise ValueError("cache size must be a multiple of line size * associativity")
        self.cache_size = cache_size
        self.line_size = line_size
        self.associativity = associativity
        self.policy = policy
        self.num_sets = cache_size // (line_size * associativity)
        self.stats = CacheStatistics()
        self._touched: set = set()
        # Lines map to exactly one set, so one dirty set keyed by line index
        # tracks write-back state for every set at once.
        self._dirty: set = set()
        if policy == ReplacementPolicy.TREE_PLRU:
            self._plru_sets: Dict[int, _TreePLRUSet] = {}
        else:
            self._sets: Dict[int, "OrderedDict[int, None]"] = {}

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def access(self, address: int, *, is_write: bool = False) -> bool:
        return self.access_line(address // self.line_size, is_write=is_write)

    def access_line(self, line: int, *, is_write: bool = False) -> bool:
        self.stats.accesses += 1
        index = self._set_index(line)
        hit, evicted = self._access_set(index, line)
        if is_write:
            self._dirty.add(line)
        if evicted is not None and evicted in self._dirty:
            self._dirty.discard(evicted)
            self.stats.writebacks += 1
        if hit:
            self.stats.hits += 1
            return True
        if line not in self._touched:
            self.stats.compulsory_misses += 1
            self._touched.add(line)
        else:
            # A fully associative cache of the same size may or may not have
            # missed; following Dinero's convention we classify all non-first
            # misses of a set-associative cache as conflict+capacity combined
            # and report them under conflict_misses when associativity is
            # finite.  The hierarchy layer reclassifies if needed.
            self.stats.conflict_misses += 1
        return False

    def _access_set(self, index: int, line: int) -> "tuple[bool, Optional[int]]":
        """``(hit, evicted_line)`` of one access to one set."""
        if self.policy == ReplacementPolicy.TREE_PLRU:
            cache_set = self._plru_sets.setdefault(index, _TreePLRUSet(self.associativity))
            way = cache_set.lookup(line)
            if way is not None:
                cache_set.touch(way)
                return True, None
            return False, cache_set.insert(line)
        cache_set = self._sets.setdefault(index, OrderedDict())
        if line in cache_set:
            if self.policy == ReplacementPolicy.LRU:
                cache_set.move_to_end(line)
            return True, None
        cache_set[line] = None
        evicted = None
        if len(cache_set) > self.associativity:
            evicted, _ = cache_set.popitem(last=False)
        return False, evicted

    def flush(self) -> None:
        """Write back every resident dirty line (end-of-run convention)."""
        self.stats.writebacks += len(self._dirty)
        self._dirty.clear()

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._touched.clear()
        self._dirty.clear()
        if self.policy == ReplacementPolicy.TREE_PLRU:
            self._plru_sets = {}
        else:
            self._sets = {}
