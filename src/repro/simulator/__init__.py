"""Trace-driven cache simulation substrate (Dinero IV surrogate)."""

from .dinero import DineroResult, DineroSimulator, simulate_scop
from .hierarchy import CacheHierarchySimulator, CacheLevelConfig
from .lru import CacheStatistics, FullyAssociativeLRU, StackDistanceProfiler, simulate_fully_associative
from .set_assoc import ReplacementPolicy, SetAssociativeCache
from .trace import ArrayLayout, MemoryAccess, TraceGenerator

__all__ = [
    "ArrayLayout",
    "CacheHierarchySimulator",
    "CacheLevelConfig",
    "CacheStatistics",
    "DineroResult",
    "DineroSimulator",
    "FullyAssociativeLRU",
    "MemoryAccess",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "StackDistanceProfiler",
    "TraceGenerator",
    "simulate_fully_associative",
    "simulate_scop",
]
