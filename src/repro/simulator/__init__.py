"""Trace-driven cache simulation substrate (Dinero IV surrogate).

Two interchangeable implementations live here: the per-access reference
(:mod:`.trace`, :mod:`.lru`, :mod:`.set_assoc`) and the NumPy-vectorized
fast path (:mod:`.vectorized`), selected by the ``backend`` option
(``"auto"``/``"numpy"``/``"python"``) and guaranteed to produce identical
results.
"""

from .dinero import DineroResult, DineroSimulator, simulate_scop
from .hierarchy import CacheHierarchySimulator, CacheLevelConfig
from .lru import CacheStatistics, FullyAssociativeLRU, StackDistanceProfiler, simulate_fully_associative
from .set_assoc import ReplacementPolicy, SetAssociativeCache
from .trace import ArrayLayout, MemoryAccess, TraceGenerator
from .vectorized import (
    BACKENDS,
    BackendUnavailableError,
    numpy_available,
    resolve_backend,
    validate_backend_env,
)

__all__ = [
    "ArrayLayout",
    "BACKENDS",
    "BackendUnavailableError",
    "CacheHierarchySimulator",
    "CacheLevelConfig",
    "CacheStatistics",
    "DineroResult",
    "DineroSimulator",
    "FullyAssociativeLRU",
    "MemoryAccess",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "StackDistanceProfiler",
    "TraceGenerator",
    "numpy_available",
    "resolve_backend",
    "simulate_fully_associative",
    "simulate_scop",
    "validate_backend_env",
]
