"""Memory trace generation for static control programs.

The trace generator enumerates all statement instances of a SCoP in schedule
order and emits one :class:`MemoryAccess` per array reference, exactly like
the QEMU + Dinero IV tool-chain the paper uses to obtain simulation results.
Its cost is proportional to the number of memory accesses, which is the
behaviour the analytical model is compared against in Figure 1.

This is the pure-Python *reference*: one Python-level iteration per access.
:func:`repro.simulator.vectorized.trace_arrays` is its batched twin — the
iteration domains become index arrays and the affine address math becomes
integer matrix operations — and is guaranteed to emit the same accesses in
the same order; the ``backend`` option decides which one runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..scop.scop import AccessRef, Array, Scop, Statement

__all__ = ["MemoryAccess", "TraceGenerator", "ArrayLayout"]


@dataclass(frozen=True)
class MemoryAccess:
    """One dynamic memory access of the program."""

    address: int
    size: int
    is_write: bool
    statement: str
    array: str


class ArrayLayout:
    """Row-major array layout with cache-line padded innermost dimension.

    Each array starts at a cache-line aligned base address and its innermost
    dimension is padded to an integer multiple of the line size, matching the
    layout assumption of the analytical model (paper Section 3.1).  With the
    padded layout, accesses to different arrays or different rows never share
    a cache line, so the simulator and the model describe the same machine.
    """

    def __init__(self, scop: Scop, *, line_size: int = 64, padded: bool = True) -> None:
        self.line_size = line_size
        self.padded = padded
        self.base: Dict[str, int] = {}
        self.strides: Dict[str, Tuple[int, ...]] = {}
        cursor = 0
        for array in scop.arrays.values():
            cursor = _align(cursor, line_size)
            self.base[array.name] = cursor
            shape = array.padded_shape(line_size) if padded else array.shape
            strides = _row_major_strides(shape)
            self.strides[array.name] = strides
            cursor += _product(shape) * array.element_size
        self._total_bytes = cursor

    def address(self, array: Array, indices: Tuple[int, ...]) -> int:
        strides = self.strides[array.name]
        offset = sum(index * stride for index, stride in zip(indices, strides))
        return self.base[array.name] + offset * array.element_size

    def total_bytes(self) -> int:
        return self._total_bytes


def _align(value: int, alignment: int) -> int:
    return ((value + alignment - 1) // alignment) * alignment


def _product(values: Tuple[int, ...]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


def _row_major_strides(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    strides: List[int] = []
    running = 1
    for extent in reversed(shape):
        strides.append(running)
        running *= extent
    return tuple(reversed(strides))


class TraceGenerator:
    """Enumerates the memory accesses of a SCoP in schedule order."""

    def __init__(self, scop: Scop, *, line_size: int = 64, padded: bool = True) -> None:
        self.scop = scop
        self.layout = ArrayLayout(scop, line_size=line_size, padded=padded)

    def instances_in_order(self) -> List[Tuple[Tuple[int, ...], Statement, Dict[str, int]]]:
        """All statement instances sorted by their schedule value."""
        length = self.scop.schedule_length()
        instances: List[Tuple[Tuple[int, ...], Statement, Dict[str, int]]] = []
        for statement in self.scop.statements:
            exprs = statement.schedule_exprs(length)
            for point in statement.enumerate_instances():
                value = tuple(int(expr.evaluate(point)) for expr in exprs)
                instances.append((value, statement, dict(point)))
        instances.sort(key=lambda item: item[0])
        return instances

    def __iter__(self) -> Iterator[MemoryAccess]:
        return self.accesses()

    def accesses(self) -> Iterator[MemoryAccess]:
        """Yield the full memory trace in execution order."""
        for _, statement, point in self.instances_in_order():
            for ref in statement.accesses:
                indices = tuple(int(expr.evaluate(point)) for expr in ref.indices)
                _check_in_bounds(ref.array, indices, statement.name)
                yield MemoryAccess(
                    address=self.layout.address(ref.array, indices),
                    size=ref.array.element_size,
                    is_write=ref.is_write,
                    statement=statement.name,
                    array=ref.array.name,
                )

    def line_trace(self) -> Iterator[int]:
        """Yield the accessed cache-line index for every access."""
        line = self.layout.line_size
        for access in self.accesses():
            yield access.address // line

    def access_count(self) -> int:
        return sum(1 for _ in self.accesses())


def _check_in_bounds(array: Array, indices: Tuple[int, ...], statement: str) -> None:
    for index, extent in zip(indices, array.shape):
        if index < 0 or index >= extent:
            raise IndexError(
                f"statement {statement} accesses {array.name}{list(indices)} outside its shape {list(array.shape)}"
            )
