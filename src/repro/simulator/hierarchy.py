"""Multi-level inclusive cache hierarchy simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..hardware.prefetcher import NextLinePrefetcher
from .lru import CacheStatistics, FullyAssociativeLRU
from .set_assoc import ReplacementPolicy, SetAssociativeCache

__all__ = ["CacheLevelConfig", "CacheHierarchySimulator"]


@dataclass(frozen=True)
class CacheLevelConfig:
    """Configuration of one cache hierarchy level.

    ``prefetch_degree`` enables a next-line prefetcher on this level
    (:class:`~repro.hardware.prefetcher.NextLinePrefetcher`): on every demand
    miss the next ``prefetch_degree`` sequential lines are installed without
    being charged as accesses.  The paper's model deliberately excludes
    prefetchers; enabling one here lets the surrogate study how much
    overfetch shifts the measured miss counts away from the prediction.
    """

    cache_size: int
    line_size: int = 64
    associativity: Optional[int] = None  # None = fully associative
    policy: str = ReplacementPolicy.LRU
    name: str = ""
    prefetch_degree: int = 0

    def label(self, level: int) -> str:
        return self.name or f"L{level + 1}"


class CacheHierarchySimulator:
    """Simulates an inclusive multi-level hierarchy.

    Every access is presented to every level (the inclusive model of the
    paper: lower-level caches forward all accesses), so each level behaves
    exactly like an isolated cache of its size observing the full trace.
    This matches the analytical model, which evaluates the same stack
    distance against each level's capacity.  Levels with a
    ``prefetch_degree`` additionally run a next-line prefetcher that
    perturbs their replacement state on every demand miss.
    """

    def __init__(self, levels: Sequence[CacheLevelConfig]) -> None:
        if not levels:
            raise ValueError("at least one cache level is required")
        self.configs = list(levels)
        self.caches = []
        self.prefetchers: List[Optional[NextLinePrefetcher]] = []
        for config in self.configs:
            if config.associativity is None:
                cache = FullyAssociativeLRU(config.cache_size, config.line_size)
            else:
                cache = SetAssociativeCache(
                    config.cache_size,
                    config.line_size,
                    config.associativity,
                    policy=config.policy,
                )
            self.caches.append(cache)
            self.prefetchers.append(
                NextLinePrefetcher(cache, degree=config.prefetch_degree)
                if config.prefetch_degree > 0
                else None
            )

    def access(self, address: int, *, is_write: bool = False) -> List[bool]:
        results = []
        for config, cache, prefetcher in zip(self.configs, self.caches, self.prefetchers):
            line = address // config.line_size
            hit = cache.access_line(line, is_write=is_write)
            if prefetcher is not None:
                prefetcher.observe(line, hit)
            results.append(hit)
        return results

    def access_line(self, line: int) -> List[bool]:
        """Present one cache-line index to every level (raw line traces)."""
        results = []
        for cache, prefetcher in zip(self.caches, self.prefetchers):
            hit = cache.access_line(line)
            if prefetcher is not None:
                prefetcher.observe(line, hit)
            results.append(hit)
        return results

    def run(self, accesses: Iterable) -> List[CacheStatistics]:
        """Run a trace of :class:`~repro.simulator.trace.MemoryAccess` objects.

        Ends with a :meth:`flush`, so write-back counters include the dirty
        lines still resident when the trace ends.
        """
        for access in accesses:
            if hasattr(access, "address"):
                self.access(access.address, is_write=access.is_write)
            else:
                # Raw line index trace.
                self.access_line(access)
        self.flush()
        return self.statistics()

    def flush(self) -> None:
        """Write back every level's resident dirty lines."""
        for cache in self.caches:
            cache.flush()

    def statistics(self) -> List[CacheStatistics]:
        return [cache.stats for cache in self.caches]
