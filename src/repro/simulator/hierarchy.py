"""Multi-level inclusive cache hierarchy simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from .lru import CacheStatistics, FullyAssociativeLRU
from .set_assoc import ReplacementPolicy, SetAssociativeCache

__all__ = ["CacheLevelConfig", "CacheHierarchySimulator"]


@dataclass(frozen=True)
class CacheLevelConfig:
    """Configuration of one cache hierarchy level."""

    cache_size: int
    line_size: int = 64
    associativity: Optional[int] = None  # None = fully associative
    policy: str = ReplacementPolicy.LRU
    name: str = ""

    def label(self, level: int) -> str:
        return self.name or f"L{level + 1}"


class CacheHierarchySimulator:
    """Simulates an inclusive multi-level hierarchy.

    Every access is presented to every level (the inclusive model of the
    paper: lower-level caches forward all accesses, write-through), so each
    level behaves exactly like an isolated cache of its size observing the
    full trace.  This matches the analytical model, which evaluates the same
    stack distance against each level's capacity.
    """

    def __init__(self, levels: Sequence[CacheLevelConfig]) -> None:
        if not levels:
            raise ValueError("at least one cache level is required")
        self.configs = list(levels)
        self.caches = []
        for config in self.configs:
            if config.associativity is None:
                self.caches.append(FullyAssociativeLRU(config.cache_size, config.line_size))
            else:
                self.caches.append(
                    SetAssociativeCache(
                        config.cache_size,
                        config.line_size,
                        config.associativity,
                        policy=config.policy,
                    )
                )

    def access(self, address: int, *, is_write: bool = False) -> List[bool]:
        return [cache.access(address, is_write=is_write) for cache in self.caches]

    def run(self, accesses: Iterable) -> List[CacheStatistics]:
        """Run a trace of :class:`~repro.simulator.trace.MemoryAccess` objects."""
        for access in accesses:
            if hasattr(access, "address"):
                self.access(access.address, is_write=access.is_write)
            else:
                # Raw line index trace.
                for cache in self.caches:
                    cache.access_line(access)
        return self.statistics()

    def statistics(self) -> List[CacheStatistics]:
        return [cache.stats for cache in self.caches]
