"""Static kernel verifier: coded diagnostics before any analysis runs.

The model only produces sound miss counts for well-formed inputs —
in-bounds affine accesses under an injective schedule — and its symbolic
pipeline silently degrades to a minutes-long trace replay when a work
budget trips.  This package fronts the expensive engine with a static
analysis pass built from the same decision procedures
(:mod:`repro.isl.constraints`):

* :func:`verify_scop` / :func:`verify_program` run every check and return a
  :class:`VerifyReport` of :class:`Diagnostic` findings (stable codes,
  severities, ``file:line:col`` locations for frontend kernels);
* :func:`repro.verify.checks.check_scop` is the pure static half (OOB,
  DEAD, SCHED, UNUSED, WRITE-NEVER-READ, NONAFF);
* :func:`repro.verify.cost.estimate_cost` is the COST half: a
  deterministic prediction of whether a symbolic work budget will trip.

Surfaces: ``repro-haystack lint``, :meth:`repro.api.session.Session.lint`,
``POST /v1/lint`` on the analysis server, and the
``ModelOptions.verify`` pre-flight inside :mod:`repro.core.model`.
See docs/LINT.md for the full code reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.config import MachineModel
from ..core.model import ModelOptions
from ..frontend.parser import KernelProgram
from ..scop.scop import Scop
from .checks import check_scop
from .cost import DEFAULT_VERIFY_BUDGET, CostReport, cost_diagnostics, estimate_cost
from .diagnostics import (
    DIAGNOSTIC_CODES,
    DIAGNOSTICS_SCHEMA_VERSION,
    Diagnostic,
    SEVERITIES,
    VerificationError,
    VerificationWarning,
    count_severities,
    sort_diagnostics,
)

__all__ = [
    "DIAGNOSTIC_CODES",
    "DIAGNOSTICS_SCHEMA_VERSION",
    "DEFAULT_VERIFY_BUDGET",
    "CostReport",
    "Diagnostic",
    "SEVERITIES",
    "VerificationError",
    "VerificationWarning",
    "VerifyReport",
    "check_scop",
    "cost_diagnostics",
    "count_severities",
    "estimate_cost",
    "sort_diagnostics",
    "verify_program",
    "verify_scop",
]


@dataclass
class VerifyReport:
    """All findings for one kernel/dataset, plus the optional cost report."""

    kernel: str
    dataset: Optional[str]
    diagnostics: List[Diagnostic] = field(default_factory=list)
    cost: Optional[CostReport] = None

    def counts(self) -> Dict[str, int]:
        """Findings per severity (``{"error": n, "warning": n, "info": n}``)."""
        return count_severities(self.diagnostics)

    def has_errors(self, *, strict: bool = False) -> bool:
        """Any error-severity finding (``strict`` also counts warnings)?"""
        counts = self.counts()
        if strict:
            return counts["error"] + counts["warning"] > 0
        return counts["error"] > 0

    def codes(self) -> List[str]:
        """Distinct diagnostic codes present, in report order."""
        seen: List[str] = []
        for diag in self.diagnostics:
            if diag.code not in seen:
                seen.append(diag.code)
        return seen

    def to_payload(self) -> Dict[str, Any]:
        """Schema-versioned JSON payload (CLI ``--json``, ``POST /v1/lint``)."""
        payload: Dict[str, Any] = {
            "schema_version": DIAGNOSTICS_SCHEMA_VERSION,
            "kernel": self.kernel,
            "dataset": self.dataset,
            "diagnostics": [diag.to_payload() for diag in self.diagnostics],
            "summary": self.counts(),
        }
        if self.cost is not None:
            payload["cost"] = self.cost.to_payload()
        return payload


def verify_scop(
    scop: Scop,
    machine: Optional[MachineModel] = None,
    *,
    dataset: Optional[str] = None,
    budget: Optional[int] = DEFAULT_VERIFY_BUDGET,
    cost: bool = True,
    options: Optional[ModelOptions] = None,
) -> VerifyReport:
    """Statically verify ``scop`` and (optionally) predict its symbolic cost.

    The static checks always run; ``cost=False`` skips the budget probe
    (useful when sweeping many datasets — the probe's wall cost, while
    bounded by ``budget``, dominates the static checks).
    """
    report = VerifyReport(kernel=scop.name, dataset=dataset)
    report.diagnostics = check_scop(scop)
    if cost:
        report.cost = estimate_cost(scop, machine, budget=budget, options=options)
        report.diagnostics.extend(cost_diagnostics(report.cost))
    report.diagnostics = sort_diagnostics(report.diagnostics)
    return report


def verify_program(
    program: KernelProgram,
    dataset: Optional[str] = None,
    machine: Optional[MachineModel] = None,
    *,
    budget: Optional[int] = DEFAULT_VERIFY_BUDGET,
    cost: bool = True,
    options: Optional[ModelOptions] = None,
) -> VerifyReport:
    """Instantiate a parsed kernel at ``dataset`` and verify the result.

    ``dataset`` defaults to the program's first dataset block (the same
    convention as ``repro-haystack analyze``).  Raises
    :class:`repro.frontend.KernelParseError` for an unknown dataset name.
    """
    if dataset is None:
        if not program.datasets:
            raise ValueError(f"kernel {program.name!r} declares no datasets")
        dataset = next(iter(program.datasets))
    scop = program.instantiate(program.dataset_sizes(dataset))
    return verify_scop(
        scop, machine, dataset=dataset, budget=budget, cost=cost, options=options
    )
