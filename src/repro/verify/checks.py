"""Static well-formedness checks over a :class:`~repro.scop.Scop`.

All checks run on the polyhedral representation alone — no cache model, no
trace — using the same decision procedures the model itself is built on
(:func:`repro.isl.constraints.feasible_rational`,
:func:`repro.isl.constraints.enumerate_points`).  Every feasibility query is
issued under a *detached* work budget so a check can never charge (or trip)
the budget of an enclosing analysis.

Proof obligations are discharged in the sound direction:

* ``OOB`` reports an **error** only with a concrete witness instance; a
  rationally-feasible violation without an integer witness is a warning.
* ``DEAD`` and the absence of ``SCHED`` findings rely on
  ``feasible_rational`` returning ``False`` — a proof of integer emptiness.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.refs import rename_map, renamed_vars
from ..isl.constraints import (
    Constraint,
    ConstraintSystem,
    UnboundedSetError,
    enumerate_points,
    eq,
    feasible_rational,
    ge,
    gt,
    le,
)
from ..isl.qpoly import QPoly
from ..isl.work import BudgetExhausted, WorkBudget, active_budget
from ..scop.scop import AccessRef, Scop, SourceLoc, Statement
from .diagnostics import Diagnostic

__all__ = ["check_scop", "WITNESS_BUDGET"]

#: Work-unit cap for each integer-witness search.  Witness searches only
#: upgrade a rationally-feasible violation to a confirmed one; giving up
#: merely downgrades the finding to a warning, so the cap can be small.
WITNESS_BUDGET = 500

#: Loop-variable rename prefix for the second statement of a schedule
#: collision system (same convention as ``cnt$`` in :mod:`repro.core.distance`).
_SCHED_PREFIX = "sched$"


def check_scop(scop: Scop) -> List[Diagnostic]:
    """All static findings for ``scop``, in discovery order (unsorted)."""
    findings: List[Diagnostic] = []
    # Detach from any enclosing analysis budget: verification work is never
    # charged against the model's symbolic budget.
    with active_budget(None):
        findings.extend(_check_bounds(scop))
        findings.extend(_check_dead(scop))
        findings.extend(_check_schedule(scop))
        findings.extend(_check_dataflow(scop))
        findings.extend(_check_affine(scop))
    return findings


# ----------------------------------------------------------------------
# OOB: access image vs. array extents
# ----------------------------------------------------------------------
def _check_bounds(scop: Scop) -> Iterator[Diagnostic]:
    for statement, position, ref in scop.all_accesses():
        for dimension, index in enumerate(ref.indices):
            if not index.is_affine():
                continue  # reported by the NONAFF check instead
            extent = ref.array.shape[dimension]
            yield from _bounds_violation(
                statement, position, ref, dimension, index, extent
            )


def _bounds_violation(
    statement: Statement,
    position: int,
    ref: AccessRef,
    dimension: int,
    index: QPoly,
    extent: int,
) -> Iterator[Diagnostic]:
    kind = "write" if ref.is_write else "read"
    for side, system in (
        ("below", _conjoin(statement.domain, le(index, -1))),
        ("above", _conjoin(statement.domain, ge(index, extent))),
    ):
        if not feasible_rational(system):
            continue  # proven in-bounds on this side
        witness = _find_witness(system, statement.loop_vars)
        bound = "< 0" if side == "below" else f">= extent {extent}"
        where = (
            f" (e.g. at {_render_point(witness, statement.loop_vars)})"
            if witness is not None
            else ""
        )
        yield Diagnostic(
            code="OOB",
            severity="error" if witness is not None else "warning",
            message=(
                f"{kind} access {ref.array.name}[...] goes out of bounds: "
                f"index {dimension} ({index}) can be {bound}{where}"
            ),
            statement=statement.name,
            array=ref.array.name,
            access_position=position,
            location=ref.location,
        )


# ----------------------------------------------------------------------
# DEAD: provably empty iteration domains
# ----------------------------------------------------------------------
def _check_dead(scop: Scop) -> Iterator[Diagnostic]:
    for statement in scop.statements:
        if feasible_rational(statement.domain):
            continue
        yield Diagnostic(
            code="DEAD",
            severity="warning",
            message=(
                f"statement {statement.name} never executes: its iteration "
                "domain is empty under this dataset"
            ),
            statement=statement.name,
            location=statement.location,
        )


# ----------------------------------------------------------------------
# SCHED: schedule collisions (non-injective execution order)
# ----------------------------------------------------------------------
def _check_schedule(scop: Scop) -> Iterator[Diagnostic]:
    length = scop.schedule_length()
    statements = scop.statements
    for first_index, first in enumerate(statements):
        for second in statements[first_index:]:
            yield from _schedule_collision(first, second, length)


def _schedule_collision(
    first: Statement, second: Statement, length: int
) -> Iterator[Diagnostic]:
    mapping = rename_map(second, _SCHED_PREFIX)
    base = first.domain.conjoin(second.domain.substitute(mapping))
    for expr_a, expr_b in zip(
        first.schedule_exprs(length),
        (e.substitute(mapping) for e in second.schedule_exprs(length)),
    ):
        base.add(eq(expr_a, expr_b))
    if base.has_trivially_false():
        return

    names = list(first.loop_vars) + renamed_vars(second, _SCHED_PREFIX)
    if first is second:
        # A statement collides with itself only when two *distinct*
        # instances share a timestamp: add "some loop variable differs" as
        # a disjunction of strict branches.
        if not first.loop_vars:
            return
        branches = []
        for var in first.loop_vars:
            delta = QPoly.variable(var) - QPoly.variable(_SCHED_PREFIX + var)
            branches.append(_conjoin(base, gt(delta, 0)))
            branches.append(_conjoin(base, gt(-delta, 0)))
    else:
        branches = [base]

    for branch in branches:
        if not feasible_rational(branch):
            continue
        witness = _find_witness(branch, names)
        detail = ""
        if witness is not None:
            left = _render_point(witness, first.loop_vars)
            right = _render_point(
                {
                    var: witness[_SCHED_PREFIX + var]
                    for var in second.loop_vars
                    if _SCHED_PREFIX + var in witness
                },
                second.loop_vars,
            )
            detail = f": instances {first.name}{left} and {second.name}{right} coincide"
        yield Diagnostic(
            code="SCHED",
            severity="error",
            message=(
                f"schedule is not injective: statements {first.name} and "
                f"{second.name} map two distinct instances to the same "
                f"timestamp{detail}"
            ),
            statement=first.name,
            location=second.location or first.location,
        )
        return  # one collision finding per statement pair is enough


# ----------------------------------------------------------------------
# UNUSED / WRITE-NEVER-READ: array dataflow over the access lists
# ----------------------------------------------------------------------
def _check_dataflow(scop: Scop) -> Iterator[Diagnostic]:
    read: Dict[str, bool] = {name: False for name in scop.arrays}
    written: Dict[str, Optional[SourceLoc]] = {}
    touched: Dict[str, bool] = {name: False for name in scop.arrays}
    for _statement, _position, ref in scop.all_accesses():
        touched[ref.array.name] = True
        if ref.is_write:
            written.setdefault(ref.array.name, ref.location)
        else:
            read[ref.array.name] = True
    for name, array in scop.arrays.items():
        if not touched[name]:
            yield Diagnostic(
                code="UNUSED",
                severity="warning",
                message=f"array {name} is declared but never accessed",
                array=name,
                location=array.location,
            )
        elif name in written and not read[name]:
            yield Diagnostic(
                code="WRITE-NEVER-READ",
                severity="info",
                message=(
                    f"array {name} is written but never read "
                    "(pure output, or a dead store)"
                ),
                array=name,
                location=written[name],
            )


# ----------------------------------------------------------------------
# NONAFF: access expressions outside the affine fragment
# ----------------------------------------------------------------------
def _check_affine(scop: Scop) -> Iterator[Diagnostic]:
    for statement, position, ref in scop.all_accesses():
        for dimension, index in enumerate(ref.indices):
            if index.is_affine():
                continue
            yield Diagnostic(
                code="NONAFF",
                severity="warning",
                message=(
                    f"index {dimension} of access to {ref.array.name} "
                    f"({index}) is not affine; counting will fall back to "
                    "rasterization, partial enumeration or the trace"
                ),
                statement=statement.name,
                array=ref.array.name,
                access_position=position,
                location=ref.location,
            )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _conjoin(system: ConstraintSystem, constraint: Constraint) -> ConstraintSystem:
    out = system.copy()
    out.add(constraint)
    return out


def _find_witness(
    system: ConstraintSystem, names: Sequence[str]
) -> Optional[Dict[str, int]]:
    """First integer point of ``system``, or ``None`` if none is found.

    The search runs under its own small :data:`WITNESS_BUDGET`; running out
    of budget (or an unbounded system) simply means "unconfirmed".
    """
    try:
        with active_budget(WorkBudget(WITNESS_BUDGET)):
            for point in islice(enumerate_points(system, list(names)), 1):
                return point
    except (BudgetExhausted, UnboundedSetError):
        return None
    return None


def _render_point(point: Optional[Dict[str, int]], names: Tuple[str, ...]) -> str:
    if point is None:
        return "()"
    return "(" + ", ".join(f"{name}={point.get(name, 0)}" for name in names) + ")"
