"""Diagnostic objects emitted by the static kernel verifier.

Every finding is a :class:`Diagnostic` with a **stable code** (the contract
surface for tooling: CI gates grep for codes, tests pin them), a severity,
a human-readable message, and — when the scop came out of the kernel
frontend — a precise ``file:line:col`` :class:`~repro.scop.scop.SourceLoc`.

Codes
-----
``OOB``
    An access can index outside its array's declared extents.
``DEAD``
    A statement's iteration domain is provably empty under the chosen
    dataset: the statement never executes.
``SCHED``
    Two distinct statement instances share a schedule timestamp, so the
    execution order (and therefore every reuse distance) is ill-defined.
``UNUSED``
    An array is declared but never accessed by any statement.
``WRITE-NEVER-READ``
    An array is written but its values are never read back.
``NONAFF``
    A non-affine access expression (or a non-affine distance piece found by
    the cost probe) that forces rasterization, partial enumeration or the
    trace fallback.
``COST``
    The symbolic-cost prediction: whether the configured work budget will
    trip before the symbolic analysis completes.

The JSON payload shape is versioned like
:class:`repro.core.results.ModelResult` so downstream consumers can detect
schema changes (`DIAGNOSTICS_SCHEMA_VERSION`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..scop.scop import SourceLoc

__all__ = [
    "DIAGNOSTIC_CODES",
    "DIAGNOSTICS_SCHEMA_VERSION",
    "Diagnostic",
    "SEVERITIES",
    "VerificationError",
    "VerificationWarning",
    "count_severities",
    "sort_diagnostics",
]

#: Version of the diagnostics JSON payload (CLI ``--json`` and
#: ``POST /v1/lint`` responses).
DIAGNOSTICS_SCHEMA_VERSION = 1

#: Every code the verifier can emit, in report order.
DIAGNOSTIC_CODES: Tuple[str, ...] = (
    "OOB",
    "DEAD",
    "SCHED",
    "UNUSED",
    "WRITE-NEVER-READ",
    "NONAFF",
    "COST",
)

#: Severities from most to least severe; the order is the sort key.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

_SEVERITY_RANK: Dict[str, int] = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding with a stable code and optional source location."""

    code: str
    severity: str
    message: str
    #: Statement the finding is anchored to, if any.
    statement: Optional[str] = None
    #: Array the finding is anchored to, if any.
    array: Optional[str] = None
    #: Position of the offending access in the statement's access list.
    access_position: Optional[int] = None
    #: ``file:line:col`` of the offending source text (frontend scops only).
    location: Optional[SourceLoc] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location_str(self) -> str:
        """``file:line:col`` when located, else the empty string."""
        return str(self.location) if self.location is not None else ""

    def render(self) -> str:
        """One-line compiler-style rendering of the finding."""
        prefix = f"{self.location}: " if self.location is not None else ""
        anchors: List[str] = []
        if self.location is None and self.statement:
            anchors.append(f"statement {self.statement}")
        if self.location is None and self.array:
            anchors.append(f"array {self.array}")
        suffix = f" [{', '.join(anchors)}]" if anchors else ""
        return f"{prefix}{self.severity}[{self.code}]: {self.message}{suffix}"

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serialisable dict (schema: `DIAGNOSTICS_SCHEMA_VERSION`)."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.statement is not None:
            payload["statement"] = self.statement
        if self.array is not None:
            payload["array"] = self.array
        if self.access_position is not None:
            payload["access_position"] = self.access_position
        if self.location is not None:
            payload["location"] = {
                "file": self.location.filename,
                "line": self.location.line,
                "col": self.location.col,
            }
        return payload


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable report order: severity, then source position, then code."""

    def key(diag: Diagnostic) -> Tuple[int, str, int, int, str]:
        loc = diag.location
        return (
            _SEVERITY_RANK[diag.severity],
            loc.filename if loc is not None else "",
            loc.line if loc is not None else 0,
            loc.col if loc is not None else 0,
            diag.code,
        )

    return sorted(diagnostics, key=key)


def count_severities(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """``{"error": n, "warning": n, "info": n}`` for a finding list."""
    counts = {name: 0 for name in SEVERITIES}
    for diag in diagnostics:
        counts[diag.severity] += 1
    return counts


class VerificationWarning(UserWarning):
    """Warning category used by the ``verify="warn"`` model pre-flight."""


class VerificationError(ValueError):
    """Raised by the ``verify="error"`` pre-flight on error-severity findings.

    Carries the full finding list so callers can format or serialise it.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics: List[Diagnostic] = sort_diagnostics(diagnostics)
        errors = [diag for diag in self.diagnostics if diag.severity == "error"]
        lines = "; ".join(diag.render() for diag in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"kernel verification failed with {len(errors)} error(s): {lines}{more}"
        )
