"""Symbolic-cost prediction: will a work budget trip before analysis ends?

The cache model's symbolic work is metered in deterministic units
(:mod:`repro.isl.work`): feasibility checks and counting-recursion steps
whose count depends only on the analyzed program — never on wall clock,
cache warmth or backend.  :func:`estimate_cost` exploits that determinism:
it replays the chamber/piece derivation (stack distances + capacity
counting structure) under an **isolated metering budget** equal to the one
being predicted, via :meth:`repro.core.model.CacheModel.symbolic_probe`.

* The probe's wall-clock cost is bounded by the budget itself (it stops the
  moment the meter trips) — it never runs the minutes-long trace fallback,
  which is exactly the cliff the prediction exists to warn about.
* Because charges are deterministic, the probe's trip/no-trip outcome *is*
  the outcome the real analysis will see under the same options — the
  prediction cannot diverge from reality.
* The metering budget is private to the probe (scoped with
  :func:`repro.isl.work.active_budget`), so estimating cost never charges
  an enclosing analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from ..core.config import MachineModel
from ..core.model import CacheModel, ModelOptions
from ..scop.scop import Scop
from .diagnostics import Diagnostic

__all__ = ["CostReport", "DEFAULT_VERIFY_BUDGET", "cost_diagnostics", "estimate_cost"]

#: Default work budget predicted against — the CLI's default
#: ``--budget`` (`repro.cli:DEFAULT_WORK_BUDGET`).
DEFAULT_VERIFY_BUDGET = 10_000


@dataclass(frozen=True)
class CostReport:
    """Prediction of the symbolic pipeline's deterministic cost.

    ``outcome`` is ``"fits"`` (completes within the budget), ``"budget"``
    (the budget trips) or ``"fallback"`` (a non-affine/inexact construct
    forces the trace fallback regardless of budget).
    """

    outcome: str
    #: Work units charged up to completion or the trip point.
    work_units: int
    #: The budget predicted against (``None`` = unlimited).
    budget: Optional[int]
    #: Distance pieces counted by the completed probe (``"fits"`` only).
    piece_count: int = 0
    #: Pieces that needed rasterization / partial enumeration.
    nonaffine_pieces: int = 0
    #: Grid points visited by partial enumeration.
    enumerated_points: int = 0
    #: Human-readable reason for a ``"fallback"`` outcome.
    reason: str = ""

    @property
    def trips(self) -> bool:
        """Will the real analysis abandon the symbolic result?"""
        return self.outcome != "fits"

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "outcome": self.outcome,
            "work_units": self.work_units,
            "budget": self.budget,
            "trips": self.trips,
        }
        if self.outcome == "fits":
            payload["piece_count"] = self.piece_count
            payload["nonaffine_pieces"] = self.nonaffine_pieces
            payload["enumerated_points"] = self.enumerated_points
        if self.reason:
            payload["reason"] = self.reason
        return payload


def estimate_cost(
    scop: Scop,
    machine: Optional[MachineModel] = None,
    *,
    budget: Optional[int] = DEFAULT_VERIFY_BUDGET,
    options: Optional[ModelOptions] = None,
) -> CostReport:
    """Predict whether ``budget`` trips before the symbolic analysis ends.

    ``options`` (minus budget/fallback/verify, which the probe owns) should
    match the analysis being predicted; the default matches the CLI's.
    """
    probe_options = replace(
        options or ModelOptions(),
        symbolic_work_budget=budget,
        fallback_to_simulation=False,
        cross_check=False,
        store_path=None,
        piece_workers=None,
        verify="off",
    )
    probe = CacheModel(machine, probe_options).symbolic_probe(scop)
    if probe.outcome == "ok" and probe.result is not None:
        return CostReport(
            outcome="fits",
            work_units=probe.work_units,
            budget=budget,
            piece_count=probe.result.piece_count,
            nonaffine_pieces=probe.result.nonaffine_pieces,
            enumerated_points=probe.result.enumerated_points,
        )
    outcome = "budget" if probe.outcome == "budget" else "fallback"
    return CostReport(
        outcome=outcome,
        work_units=probe.work_units,
        budget=budget,
        reason=probe.reason,
    )


def cost_diagnostics(report: CostReport) -> List[Diagnostic]:
    """COST (and piece-level NONAFF) findings for a cost report."""
    findings: List[Diagnostic] = []
    if report.outcome == "budget":
        findings.append(
            Diagnostic(
                code="COST",
                severity="warning",
                message=(
                    f"symbolic work budget of {report.budget} units will trip "
                    f"(charged {report.work_units} before giving up); the "
                    "analysis will fall back to trace simulation — raise "
                    "--budget or simplify the kernel"
                ),
            )
        )
    elif report.outcome == "fallback":
        findings.append(
            Diagnostic(
                code="COST",
                severity="warning",
                message=(
                    "symbolic analysis cannot handle this program exactly "
                    f"({report.reason}); it will fall back to trace simulation"
                ),
            )
        )
    else:
        budget_text = str(report.budget) if report.budget is not None else "unlimited"
        findings.append(
            Diagnostic(
                code="COST",
                severity="info",
                message=(
                    f"symbolic analysis fits the budget: {report.work_units} "
                    f"of {budget_text} work units "
                    f"({report.piece_count} distance pieces)"
                ),
            )
        )
        if report.nonaffine_pieces:
            findings.append(
                Diagnostic(
                    code="NONAFF",
                    severity="info",
                    message=(
                        f"{report.nonaffine_pieces} of {report.piece_count} "
                        "distance pieces are non-affine and were counted by "
                        "rasterization/partial enumeration "
                        f"({report.enumerated_points} points enumerated)"
                    ),
                )
            )
    return findings
