"""Benchmark regression harness: named suites, reports, baseline comparison.

``repro-haystack bench`` runs a *named workload suite* through the batch
engine and emits a machine-readable ``BENCH_<suite>.json`` report: wall
time, per-job phase breakdown, cardinality-cache and store traffic, and the
deterministic symbolic work charged by each job.  A report can be compared
against a committed baseline with a configurable tolerance; the comparison
exits non-zero on regression, which is how CI holds the line on the model's
speed and accuracy claims.

Two metric families with different trust levels:

* **deterministic** — miss counts (the model is exact, so *any* change is an
  accuracy regression) and symbolic work units (machine-independent cost;
  compared with the tolerance);
* **wall clock** — noisy and machine-dependent.  Every report therefore
  includes a ``calibration_seconds`` measurement of a fixed symbolic
  workload taken on the same machine at the same time; wall-time comparison
  uses the *calibration-normalized* ratio, so a baseline recorded on a fast
  laptop still compares meaningfully on a slow CI runner.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = [
    "SUITES",
    "compare_reports",
    "default_baseline_path",
    "load_report",
    "run_suite",
    "suite_names",
    "write_report",
]

#: Schema version of the ``BENCH_*.json`` payload (2 = added the ``trace``
#: simulator workload; 3 = added the ``curve`` sweep workload; 4 = added the
#: ``symbolic`` chamber-evaluation workload; 5 = added the ``serve`` live
#: server workload; 6 = added the ``explore`` design-space workload; readers
#: treat missing sections as absent).
BENCH_SCHEMA = 6

#: Named workload suites: kernels x datasets analysed under a deterministic
#: work budget, plus a ``trace`` simulator workload that times the concrete
#: pipeline under both backends and records the numpy-vs-python speedup
#: (the fig10 simulator-accuracy path), plus a ``curve`` workload that
#: measures the cost of a many-point capacity sweep via
#: :class:`~repro.core.MissCurve` against a single fixed-capacity analysis,
#: plus a ``symbolic`` workload that times the bulk chamber/grid evaluator
#: (:mod:`repro.isl.veceval`) against the pure-Python piecewise walk, plus a
#: ``serve`` workload that load-tests a live analysis server (coalescing,
#: admission control, store dedup, request latency), plus an ``explore``
#: workload that prices a design-space grid (:mod:`repro.explore`) against
#: independent per-configuration analyses and pins its Pareto table.
#: ``smoke`` finishes in seconds (CI gate); ``full`` covers the whole
#: PolyBench registry for offline trend tracking.
SUITES: Dict[str, Dict] = {
    "smoke": {
        "kernels": ["gemm", "atax", "bicg", "mvt", "trisolv", "jacobi-1d"],
        "datasets": ["mini"],
        "levels": [(32 * 1024, 256 * 1024)],
        "budget": 2_000,
        # ~11k-access gemm: large enough that the >=10x vectorization claim
        # is far from the noise floor (measured ~40-60x), small enough that
        # the reference pass stays under a second.
        "trace": {"size": 14, "rounds": 3, "min_speedup": 10.0},
        # 64-point sweep vs one fixed-capacity analysis on a kernel the
        # symbolic pipeline completes in seconds; the 2x ceiling is the
        # miss-curve acceptance bar (shared counting pass, sweep points
        # nearly free).
        "curve": {"size": 32, "points": 64, "max_ratio": 2.0},
        # Dense capacity grid through the parametric chambers of the matvec
        # distance pieces: the pure-Python piecewise walk is the reference,
        # the veceval bulk evaluator must beat it by the floor while
        # producing byte-identical totals.
        "symbolic": {"size": 32, "points": 1024, "rounds": 3, "min_speedup": 3.0},
        # Live-server load test: hundreds of mixed requests (duplicates
        # interleaved with unique capacity sweeps) against a background
        # `repro-haystack serve` with real process workers and a fresh
        # sqlite store.  Gates: zero errors, exact engine-job dedup,
        # deterministic coalescing of batch duplicates, budget shedding,
        # and calibration-normalized p95 latency.
        "serve": {
            "kernels": ["gemm", "atax", "bicg", "mvt", "trisolv", "jacobi-1d"],
            "dataset": "mini",
            "budget": 2_000,
            "repeats": 34,
            "clients": 8,
            "workers": 2,
        },
        # Design-space explorer: a 4-tile x 16-capacity grid (64
        # configurations, 4 analyses) against 64 independent store-cold
        # analyses of the same configurations.  Gates: the grid must cost at
        # most a quarter of the independent sweep (the per-axis parametric
        # amortization claim) and the ranked table must be byte-identical
        # across backends and worker counts, and stable against the baseline.
        "explore": {"size": 16, "tiles": [1, 2, 4, 8], "points": 16, "max_cost_ratio": 0.25},
    },
    "full": {
        "kernels": "all",
        "datasets": ["mini"],
        "levels": [(32 * 1024, 256 * 1024)],
        "budget": 10_000,
        "trace": {"size": 20, "rounds": 3, "min_speedup": 10.0},
        "curve": {"size": 48, "points": 64, "max_ratio": 2.0},
        "symbolic": {"size": 48, "points": 2048, "rounds": 3, "min_speedup": 3.0},
        "serve": {
            "kernels": ["gemm", "atax", "bicg", "mvt", "trisolv", "jacobi-1d"],
            "dataset": "mini",
            "budget": 10_000,
            "repeats": 67,
            "clients": 8,
            "workers": 2,
        },
        "explore": {"size": 24, "tiles": [1, 2, 4, 8, 16], "points": 16, "max_cost_ratio": 0.25},
    },
}


def suite_names() -> List[str]:
    return sorted(SUITES)


def default_baseline_path(suite: str) -> Path:
    """Committed baseline location (relative to the repository root / cwd)."""
    return Path("benchmarks") / "baselines" / f"BENCH_{suite}.json"


#: Repetitions of the calibration workload (one analysis is a few ms; the sum
#: is long enough that timer noise stays well under the comparison tolerance).
_CALIBRATION_ROUNDS = 50


def _calibrate() -> float:
    """Seconds for a fixed symbolic workload on this machine, right now.

    The workload is deterministic (same kernel, same machine model, no
    store), so the measurement tracks machine speed only.  Reports carry it
    so wall-time comparisons can be normalized across machines.  One warm-up
    run is excluded, then a fixed number of fresh analyses are timed.
    """
    from ..api import Session
    from ..scop import ScopBuilder

    builder = ScopBuilder("calibration", context={"N": 10, "M": 9}, element_size=64)
    A = builder.array("A", (10, 9))
    B = builder.array("B", (9, 10))
    with builder.loop("i", 0, 10):
        with builder.loop("j", 0, 9):
            builder.stmt(reads=[A[builder.v("i"), builder.v("j")]], writes=[B[builder.v("j"), builder.v("i")]])
    scop = builder.build()
    session = Session().machine((1024, 8192))
    session.analyze(scop)
    start = time.perf_counter()
    for _ in range(_CALIBRATION_ROUNDS):
        session.analyze(scop)
    return time.perf_counter() - start


def _trace_workload_scop(size: int):
    """The fig10-style simulator workload: a gemm of ``size``^3 updates.

    Element size equals the line size so every access is one line — the
    trace length (and therefore the measured speedup) depends only on
    ``size``, not on layout details.
    """
    from ..scop import ScopBuilder

    builder = ScopBuilder("bench-trace-gemm", context={"N": size}, element_size=64)
    C = builder.array("C", (size, size))
    A = builder.array("A", (size, size))
    B = builder.array("B", (size, size))
    with builder.loop("i", 0, size):
        with builder.loop("j", 0, size):
            builder.stmt(reads=[C[builder.v("i"), builder.v("j")]], writes=[C[builder.v("i"), builder.v("j")]])
        with builder.loop("k", 0, size):
            with builder.loop("j2", 0, size):
                builder.stmt(
                    reads=[A[builder.v("i"), builder.v("k")], B[builder.v("k"), builder.v("j2")], C[builder.v("i"), builder.v("j2")]],
                    writes=[C[builder.v("i"), builder.v("j2")]],
                )
    return builder.build()


def _run_trace_workload(config: Dict) -> Dict:
    """Time the concrete simulator pipeline under both backends.

    Runs the fig10 simulator-accuracy path — one fully associative level and
    one 4-way LRU level over the full trace — once with the pure-Python
    reference and ``rounds`` times with the vectorized backend (best run
    counts, the reference is the slow side and is measured once).  Records
    the speedup ratio and whether the two backends produced identical miss
    counts; :func:`compare_reports` gates on both.
    """
    from ..simulator import CacheLevelConfig, DineroSimulator, numpy_available

    size = config.get("size", 14)
    rounds = max(1, int(config.get("rounds", 3)))
    scop = _trace_workload_scop(size)
    levels = [
        CacheLevelConfig(cache_size=16 * 64, line_size=64, associativity=None),
        CacheLevelConfig(cache_size=128 * 64, line_size=64, associativity=4),
    ]
    python_result = DineroSimulator(levels, backend="python").run(scop)
    entry: Dict = {
        "kernel": scop.name,
        "accesses": python_result.accesses,
        "misses": [stats.misses for stats in python_result.levels],
        "python_seconds": python_result.elapsed_seconds,
        "numpy_available": numpy_available(),
        "numpy_seconds": None,
        "speedup": None,
        "results_match": True,
        "min_speedup": config.get("min_speedup", 10.0),
    }
    if not numpy_available():
        return entry
    simulator = DineroSimulator(levels, backend="numpy")
    best = None
    for _ in range(rounds):
        numpy_result = simulator.run(scop)
        best = numpy_result.elapsed_seconds if best is None else min(best, numpy_result.elapsed_seconds)
        if [stats.misses for stats in numpy_result.levels] != entry["misses"]:
            entry["results_match"] = False
            entry["numpy_misses"] = [stats.misses for stats in numpy_result.levels]
    entry["numpy_seconds"] = best
    entry["speedup"] = python_result.elapsed_seconds / best if best else None
    return entry


def _curve_workload_scop(size: int):
    """The curve-sweep workload: a matrix-vector product of ``size``^2 updates.

    One statement with three distinct reuse behaviours (``x`` reused within a
    row, ``y`` reused across rows at distance ~``size``, ``A`` streamed), so
    the miss curve has real structure across the sweep.  Element size equals
    the line size, which keeps the symbolic pipeline fast enough to complete
    un-budgeted in seconds.
    """
    from ..scop import ScopBuilder

    builder = ScopBuilder("bench-curve-matvec", context={"N": size}, element_size=64)
    A = builder.array("A", (size, size))
    x = builder.array("x", (size,))
    y = builder.array("y", (size,))
    with builder.loop("i", 0, size):
        with builder.loop("j", 0, size):
            builder.stmt(
                reads=[A[builder.v("i"), builder.v("j")], y[builder.v("j")], x[builder.v("i")]],
                writes=[x[builder.v("i")]],
            )
    return builder.build()


def _curve_sweep_bytes(points: int, line_size: int = 64) -> List[int]:
    """Log-spaced sweep from one line to 4096 lines (deterministic)."""
    from ..sweep import log_spaced

    return log_spaced(line_size, line_size * 4096, points)


def _run_curve_workload(config: Dict) -> Dict:
    """Time a many-point capacity sweep against one fixed-capacity analysis.

    Both runs use the full symbolic pipeline (no budget, no store).  The
    sweep resolves every capacity through the result's
    :class:`~repro.core.MissCurve`; its counts are additionally checked
    against the exact trace-derived curve, so :func:`compare_reports` can
    gate on correctness (``counts_match``, count drift vs the baseline) and
    on the sweep staying under ``max_ratio`` times the single-capacity wall
    time (the one-analysis-every-cache-size claim).
    """
    from ..api import Session
    from ..core import CacheModel, ModelOptions

    size = int(config.get("size", 32))
    points = int(config.get("points", 64))
    max_ratio = float(config.get("max_ratio", 2.0))
    scop = _curve_workload_scop(size)
    machine = (16 * 64,)  # one 16-line L1: y overflows it, x does not
    sweep = _curve_sweep_bytes(points)

    # Warm process-wide state (Faulhaber tables, interpreter specialization)
    # with one untimed full-size run, so the single-vs-sweep ratio measures
    # the sweep and not whichever analysis happened to go first.
    Session().machine(machine).no_store().analyze(_curve_workload_scop(size))

    session = Session().machine(machine).no_store()
    start = time.perf_counter()
    single = session.analyze(scop)
    single_seconds = time.perf_counter() - start

    sweep_session = Session().machine(machine).no_store().capacities(*sweep)
    start = time.perf_counter()
    swept = sweep_session.analyze(scop)
    sweep_seconds = time.perf_counter() - start

    curve = swept.miss_curve
    lines = [max(1, size_bytes // 64) for size_bytes in sweep]
    sweep_misses = curve.sample(lines) if curve is not None else None
    reference = CacheModel(
        session.machine_model, ModelOptions(backend="python")
    ).analyze_by_trace(scop).miss_curve
    counts_match = (
        curve is not None
        and sweep_misses == reference.sample(lines)
        and single.level_results[0].misses == swept.level_results[0].misses
    )
    return {
        "kernel": scop.name,
        "accesses": swept.accesses,
        "points": len(sweep),
        "single_seconds": single_seconds,
        "sweep_seconds": sweep_seconds,
        "sweep_ratio": (sweep_seconds / single_seconds) if single_seconds else None,
        "counts_match": counts_match,
        "used_fallback": swept.used_fallback,
        "sweep_misses": sweep_misses,
        "max_ratio": max_ratio,
    }


def _run_symbolic_workload(config: Dict) -> Dict:
    """Time bulk chamber/grid evaluation under both backends.

    This is the gate on the vectorized symbolic core: the parametric
    capacity chambers of every distance piece of the curve-workload matvec
    are extracted once (symbolic work, untimed — identical for both
    backends), then evaluated over a dense capacity grid of ``points``
    capacities — once with the pure-Python piecewise walk and ``rounds``
    times with the :mod:`repro.isl.veceval` bulk evaluator (best run
    counts, the reference is the slow side and is measured once).  The two
    backends must produce byte-identical per-capacity totals; the report
    records a digest of the totals so :func:`compare_reports` can gate on
    accuracy drift as well as on the speedup floor.
    """
    import hashlib

    from ..core.capacity import CAPACITY_PARAM, CapacityCounter
    from ..core.distance import StackDistanceAnalysis
    from ..isl.counting import piecewise_values
    from ..isl.veceval import numpy_available

    size = int(config.get("size", 32))
    points = int(config.get("points", 1024))
    rounds = max(1, int(config.get("rounds", 3)))
    scop = _curve_workload_scop(size)
    grid = list(range(1, points + 1))
    chamber_sets = []
    for access_distances in StackDistanceAnalysis(scop, line_size=64).analyze():
        counter = CapacityCounter(access_distances.access.statement.loop_vars)
        for piece in access_distances.pieces:
            if not piece.polynomial.is_affine():
                continue
            chambers = counter._parametric_chambers(piece)
            if chambers:
                chamber_sets.append(chambers)

    def evaluate(backend: str) -> List[int]:
        totals = [0] * len(grid)
        for chambers in chamber_sets:
            values = piecewise_values(chambers, {CAPACITY_PARAM: grid}, backend=backend)
            if values is None:
                raise RuntimeError("symbolic workload: chamber evaluation failed")
            for index, value in enumerate(values):
                totals[index] += value
        return totals

    start = time.perf_counter()
    python_totals = evaluate("python")
    python_seconds = time.perf_counter() - start
    entry: Dict = {
        "kernel": scop.name,
        "chamber_sets": len(chamber_sets),
        "points": len(grid),
        "python_seconds": python_seconds,
        "totals_sha256": hashlib.sha256(json.dumps(python_totals).encode("ascii")).hexdigest(),
        "numpy_available": numpy_available(),
        "numpy_seconds": None,
        "speedup": None,
        "results_match": True,
        "min_speedup": config.get("min_speedup", 3.0),
    }
    if not numpy_available():
        return entry
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        numpy_totals = evaluate("numpy")
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        if numpy_totals != python_totals:
            entry["results_match"] = False
    entry["numpy_seconds"] = best
    entry["speedup"] = python_seconds / best if best else None
    return entry


#: Inline ``.knl`` program shipped by the serve workload's coalesce probe.
#: It exists in no registry, so its first submission is always a fresh
#: engine job — the duplicates in the same batch *must* coalesce onto it.
_SERVE_PROBE_SOURCE = """\
kernel bench_serve_probe

dataset mini { N = 24 }

array A[N][N]
array x[N]
array y[N]

S0: { [i, j] : 0 <= i < N and 0 <= j < N }
    schedule [0, i, 0, j, 0]
    y[i] += A[i][j] * x[j]
"""


def _run_serve_workload(config: Dict) -> Dict:
    """Load-test a live analysis server: duplicate-heavy traffic, real workers.

    Boots an in-process :class:`~repro.server.BackgroundServer` — process
    workers, the same execution path as ``repro-haystack serve`` — on a
    fresh sqlite store, then drives two deterministic probes plus a
    concurrent mixed load:

    * **coalesce probe** — one ``/v1/batch`` carrying three copies of an
      inline ``.knl`` job nobody else submits: the server admits all three
      before the leader's first engine job can finish, so exactly one job
      runs and both duplicates answer ``coalesced`` (deterministic — no
      timing assumptions);
    * **shed probe** — a request demanding an unlimited work budget against
      the server's admission ceiling must come back 429 / ``shed=budget``;
    * **mixed load** — ``repeats`` round-robin rounds over the unique specs
      (one per kernel, each with its own capacity sweep) fired from
      ``clients`` concurrent connections.  Every duplicate must be served
      without a new engine job — coalesced while the leader is in flight,
      from the store afterwards — so ``engine_jobs`` equals the unique-spec
      count *exactly*, and all responses for one spec must be
      byte-identical.

    The entry records the dedup accounting, per-kernel miss counts
    (accuracy), the store counters, and p50/p95 request latency;
    :func:`compare_reports` gates on all of them.
    """
    import hashlib
    import statistics
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from ..server import BackgroundServer

    kernels = list(config.get("kernels", []))
    dataset = str(config.get("dataset", "mini"))
    budget = int(config.get("budget", 2_000))
    repeats = max(2, int(config.get("repeats", 34)))
    clients = max(1, int(config.get("clients", 8)))
    # Process workers (never the inline-thread test mode): the bench must
    # exercise the same pool the production `serve` command runs.
    workers = max(1, int(config.get("workers", 2)))
    levels = [32 * 1024, 256 * 1024]

    unique_jobs = [
        {
            "kernel": kernel,
            "dataset": dataset,
            "levels": levels,
            "budget": budget,
            # Every spec gets its own sweep, so duplicates repeat a genuine
            # miss-curve request rather than a degenerate single-point one.
            "capacities": _curve_sweep_bytes(8 + 2 * index),
        }
        for index, kernel in enumerate(kernels)
    ]
    probe = {
        "source": _SERVE_PROBE_SOURCE,
        "dataset": "mini",
        "levels": levels,
        "budget": budget,
    }

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        server = BackgroundServer(
            store_path=f"sqlite:{tmp}/store.sqlite",
            workers=workers,
            max_inflight=len(unique_jobs) + 4,
            max_budget=budget,
        )
        with server:
            client = server.client()
            client.wait_ready()

            records = list(client.batch_iter([dict(probe) for _ in range(3)]))
            probe_ok = len(records) == 3 and all(r["status"] == 200 for r in records)
            probe_coalesced = sum(
                1 for r in records if r["status"] == 200 and r["body"]["meta"]["coalesced"]
            )

            status, body = client.request(
                "POST",
                "/v1/analyze",
                {"kernel": kernels[0], "dataset": dataset, "levels": levels},
            )
            shed_ok = status == 429 and body.get("shed") == "budget"

            requests = [job for _ in range(repeats) for job in unique_jobs]
            latencies: List[float] = []
            payload_digests: Dict[str, set] = {}
            misses: Dict[str, List[int]] = {}
            cached = coalesced_responses = client_errors = 0

            def one_request(job: Dict):
                start = time.perf_counter()
                envelope = client.analyze(job)
                return time.perf_counter() - start, envelope

            wall_start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients) as pool:
                futures = [pool.submit(one_request, job) for job in requests]
                for future, job in zip(futures, requests):
                    try:
                        elapsed, envelope = future.result()
                    except Exception:  # noqa: BLE001 - failures become the errors gate
                        client_errors += 1
                        continue
                    latencies.append(elapsed)
                    meta = envelope["meta"]
                    cached += bool(meta["cached"])
                    coalesced_responses += bool(meta["coalesced"])
                    kernel = job["kernel"]
                    digest = hashlib.sha256(
                        json.dumps(envelope["result"], sort_keys=True).encode("utf-8")
                    ).hexdigest()
                    payload_digests.setdefault(kernel, set()).add(digest)
                    misses.setdefault(
                        kernel, [level["misses"] for level in envelope["result"]["levels"]]
                    )
            wall_seconds = time.perf_counter() - wall_start
            stats = client.stats()

    # One engine job per unique spec (the kernels plus the probe source);
    # everything else is a duplicate and must be coalesced or store-served.
    unique = len(unique_jobs) + 1
    admitted = len(requests) + 3  # the shed probe is rejected, not deduped
    store = stats.get("store") or {}
    if latencies:
        p50 = statistics.median(latencies)
        p95 = statistics.quantiles(latencies, n=20)[18] if len(latencies) >= 20 else max(latencies)
    else:
        p50 = p95 = None
    return {
        "kernels": kernels,
        "requests": admitted,
        "unique_specs": unique,
        "dedup": admitted - unique,
        "workers": workers,
        "clients": clients,
        "probe_ok": probe_ok,
        "probe_coalesced": probe_coalesced,
        "shed_ok": shed_ok,
        "errors": client_errors + int(stats.get("errors", 0)),
        "engine_jobs": stats.get("engine_jobs"),
        "coalesced": stats.get("coalesced"),
        "cached": cached,
        "payloads_identical": all(len(digests) == 1 for digests in payload_digests.values()),
        "misses": {kernel: misses[kernel] for kernel in sorted(misses)},
        "store_hits": store.get("hits"),
        "store_misses": store.get("misses"),
        "store_hit_rate": store.get("hit_rate"),
        "wall_seconds": wall_seconds,
        "p50_seconds": p50,
        "p95_seconds": p95,
    }


def _run_explore_workload(config: Dict) -> Dict:
    """Price a design-space grid against independent per-configuration runs.

    Walks a ``tiles`` x ``points``-capacity grid of the curve-workload
    matvec through :meth:`repro.api.Session.explore` (store-cold, no
    budget), then analyzes the *same* configurations as independent
    store-cold :meth:`~repro.api.Session.analyze` calls — one per (tile,
    capacity), each against a machine of exactly that capacity.  The grid
    shares one analysis per tile (the capacity axis rides along as
    parametric :class:`~repro.core.MissCurve` breakpoints), so its wall time
    must stay under ``max_cost_ratio`` times the independent sweep.

    The ranked table is re-derived with the pure-Python backend, with the
    NumPy backend (when installed), and with two piece workers; all must
    produce a byte-identical :meth:`~repro.explore.ExploreResult.table_digest`
    — the determinism half of the explore acceptance gate.  The digest also
    rides into the report so :func:`compare_reports` can hold the table
    stable against the committed baseline.
    """
    from ..api import Session
    from ..scop.schedule import tile_scop
    from ..simulator import numpy_available
    from ..sweep import log_spaced

    size = int(config.get("size", 16))
    tiles = [int(tile) for tile in config.get("tiles", (1, 2, 4, 8))]
    points = int(config.get("points", 16))
    max_cost_ratio = float(config.get("max_cost_ratio", 0.25))
    scop = _curve_workload_scop(size)
    capacities = [64 * lines for lines in log_spaced(2, 1024, points)]

    # Warm process-wide state with one untimed analysis (same convention as
    # the curve workload) so the grid-vs-independent ratio is not dominated
    # by whichever side pays the first-run interpreter and table costs.
    Session().machine((8 * 64,)).no_store().analyze(_curve_workload_scop(size))

    def grid_session() -> Session:
        return Session().machine((max(capacities),)).no_store()

    start = time.perf_counter()
    result = grid_session().explore(scop, tiles=tiles, capacities=capacities)
    grid_seconds = time.perf_counter() - start
    digest = result.table_digest()

    # The independent side gets the tiled variants for free: it pays one
    # full analysis per configuration, nothing else.
    variants = {tile: tile_scop(scop, tile) if tile > 1 else scop for tile in tiles}
    start = time.perf_counter()
    independent = 0
    for tile in tiles:
        for capacity in capacities:
            Session().machine((capacity,)).no_store().analyze(variants[tile])
            independent += 1
    independent_seconds = time.perf_counter() - start

    backends_match = (
        grid_session().backend("python").explore(scop, tiles=tiles, capacities=capacities).table_digest()
        == digest
    )
    if numpy_available():
        backends_match = backends_match and (
            grid_session().backend("numpy").explore(scop, tiles=tiles, capacities=capacities).table_digest()
            == digest
        )
    workers_match = (
        grid_session().piece_workers(2).explore(scop, tiles=tiles, capacities=capacities).table_digest()
        == digest
    )
    return {
        "kernel": scop.name,
        "tiles": tiles,
        "capacity_points": len(capacities),
        "grid_size": len(result.configs),
        "pareto_size": len(result.front()),
        "analyses": result.analyses,
        "independent_analyses": independent,
        "grid_seconds": grid_seconds,
        "independent_seconds": independent_seconds,
        "cost_ratio": (grid_seconds / independent_seconds) if independent_seconds else None,
        "max_cost_ratio": max_cost_ratio,
        "table_digest": digest,
        "backends_match": backends_match,
        "workers_match": workers_match,
        "numpy_available": numpy_available(),
    }


def run_suite(
    suite: str,
    *,
    jobs: int = 1,
    store_path: Optional[str] = None,
    backend: str = "auto",
) -> Dict:
    """Run one named suite and return the ``BENCH_*.json`` report payload."""
    try:
        config = SUITES[suite]
    except KeyError:
        raise ValueError(f"unknown bench suite {suite!r}; available: {', '.join(suite_names())}") from None
    from ..api import Session, registry

    kernels = registry.kernel_names() if config["kernels"] == "all" else list(config["kernels"])
    session = Session().budget(config["budget"]).workers(jobs).backend(backend)
    if store_path:
        session.store(store_path)
    request = (
        session.kernels(*kernels)
        .datasets(*config["datasets"])
        .levels(*[tuple(levels) for levels in config["levels"]])
    )
    calibration = _calibrate()
    trace_entry = _run_trace_workload(config["trace"]) if config.get("trace") else None
    curve_entry = _run_curve_workload(config["curve"]) if config.get("curve") else None
    symbolic_entry = _run_symbolic_workload(config["symbolic"]) if config.get("symbolic") else None
    serve_entry = _run_serve_workload(config["serve"]) if config.get("serve") else None
    explore_entry = _run_explore_workload(config["explore"]) if config.get("explore") else None
    batch = request.run()

    job_entries = []
    for record in batch.records:
        entry = {
            "kernel": record.kernel,
            "dataset": record.dataset,
            "levels": list(record.levels),
            "status": record.status,
            "cached": record.cached,
            "elapsed_seconds": record.elapsed_seconds,
        }
        if record.result is not None:
            timing = record.result.timing
            entry.update(
                {
                    "accesses": record.result.accesses,
                    "misses": [level.misses for level in record.result.level_results],
                    "used_fallback": record.result.used_fallback,
                    "work_units": timing.work_units_charged,
                    "cache_hits": timing.cardinality_cache_hits,
                    "cache_misses": timing.cardinality_cache_misses,
                    "store_hits": timing.store_hits,
                    "store_misses": timing.store_misses,
                    "phases": {
                        "stack_distance_seconds": timing.stack_distance_seconds,
                        "capacity_seconds": timing.capacity_seconds,
                        "other_seconds": timing.other_seconds,
                    },
                }
            )
        job_entries.append(entry)

    # Totals describe the compute of THIS run: records served whole from the
    # store replay the counters of the run that originally computed them, so
    # they are excluded here (per-job entries keep them, flagged ``cached``).
    computed = [r.result for r in batch.records if r.result is not None and not r.cached]
    report = {
        "schema_version": BENCH_SCHEMA,
        "suite": suite,
        "wall_seconds": batch.elapsed_seconds,
        "calibration_seconds": calibration,
        "worker_count": batch.worker_count,
        "jobs": job_entries,
        "totals": {
            "jobs": len(batch),
            "errors": batch.error_count,
            "cached": batch.cached_count,
            "fallbacks": batch.fallback_count,
            "work_units": sum(r.timing.work_units_charged for r in computed),
            "cache_hits": batch.cache_hits,
            "cache_misses": batch.cache_misses,
            "store_hits": batch.cardinality_store_hits,
            "store_misses": batch.cardinality_store_misses,
        },
        "store": dict(batch.store_stats) if batch.store_stats is not None else None,
        "trace": trace_entry,
        "curve": curve_entry,
        "symbolic": symbolic_entry,
        "serve": serve_entry,
        "explore": explore_entry,
    }
    return report


def write_report(report: Dict, path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _job_key(entry: Dict):
    return (entry["kernel"], entry["dataset"], tuple(entry["levels"]))


def _normalized_wall(report: Dict) -> Optional[float]:
    calibration = report.get("calibration_seconds") or 0.0
    wall = report.get("wall_seconds")
    if not calibration or wall is None:
        return None
    return wall / calibration


def compare_reports(
    current: Dict,
    baseline: Dict,
    *,
    tolerance: float = 0.2,
    check_wall: bool = True,
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty list = clean).

    * any job error, missing job, or miss-count change is an **accuracy**
      regression (the model is exact — there is no tolerance on counts);
    * total symbolic work units beyond ``baseline * (1 + tolerance)`` is a
      deterministic **performance** regression;
    * calibration-normalized wall time beyond the same factor is a wall-clock
      regression (skipped with ``check_wall=False`` or when either report
      lacks a calibration measurement);
    * the ``trace`` simulator workload regresses when the two backends
      disagree on miss counts (accuracy), when its miss counts drift from the
      baseline, or when the numpy-vs-python speedup drops below the suite
      floor (``min_speedup``, the paper-claim gate) or collapses to under a
      quarter of the baseline ratio.  The speedup gate is skipped when NumPy
      is not installed (the backend is an optional extra);
    * the ``curve`` sweep workload regresses when the miss-curve counts
      disagree with the exact trace reference or drift from the baseline
      (accuracy), or when the many-point sweep costs more than ``max_ratio``
      times a single fixed-capacity analysis (wall clock; skipped with
      ``check_wall=False``);
    * the ``symbolic`` chamber-evaluation workload regresses when the two
      evaluation backends disagree on the per-capacity totals (accuracy),
      when the totals digest drifts from the baseline, or when the
      numpy-vs-python evaluation speedup drops below the suite floor
      (``min_speedup``) or collapses to under a quarter of the baseline
      ratio.  Like ``trace``, the speedup gate is skipped when NumPy is not
      installed;
    * the ``serve`` live-server workload regresses on any failed request,
      on per-kernel miss counts drifting from the baseline or duplicate
      responses not being byte-identical (accuracy), on a broken service
      guarantee — batch duplicates not coalescing, unlimited budgets not
      shed, more engine jobs than unique specs, duplicates unaccounted by
      ``coalesced + cached`` — and on calibration-normalized p95 request
      latency collapsing past 4x the baseline (wall clock; skipped with
      ``check_wall=False``);
    * the ``explore`` design-space workload regresses when the ranked table
      is not byte-identical across backends or worker counts, or when its
      digest drifts from the baseline (accuracy — the grid is deterministic),
      or when the grid costs more than ``max_cost_ratio`` times the
      equivalent independent analyses (wall clock; skipped with
      ``check_wall=False``).
    """
    regressions: List[str] = []
    if current.get("suite") != baseline.get("suite"):
        regressions.append(
            f"suite mismatch: current={current.get('suite')!r} baseline={baseline.get('suite')!r}"
        )
        return regressions

    current_jobs = {_job_key(entry): entry for entry in current.get("jobs", [])}
    baseline_keys = {_job_key(entry) for entry in baseline.get("jobs", [])}
    # Jobs the baseline does not know about (e.g. a kernel added to the suite
    # before the baseline was refreshed) still must not error.
    for key, entry in current_jobs.items():
        if key not in baseline_keys and entry.get("status") != "ok":
            regressions.append(
                f"accuracy: job {key[0]}/{key[1]} (not in baseline) fails ({entry.get('status')})"
            )
    for entry in baseline.get("jobs", []):
        key = _job_key(entry)
        label = f"{key[0]}/{key[1]}"
        now = current_jobs.get(key)
        if now is None:
            regressions.append(f"accuracy: job {label} missing from current report")
            continue
        if entry.get("status") == "ok" and now.get("status") != "ok":
            regressions.append(f"accuracy: job {label} now fails ({now.get('status')})")
            continue
        if entry.get("status") != "ok":
            continue
        if entry.get("misses") != now.get("misses") or entry.get("accesses") != now.get("accesses"):
            regressions.append(
                f"accuracy: job {label} miss counts changed "
                f"(baseline {entry.get('misses')} @ {entry.get('accesses')} accesses, "
                f"current {now.get('misses')} @ {now.get('accesses')})"
            )

    baseline_work = baseline.get("totals", {}).get("work_units", 0)
    current_work = current.get("totals", {}).get("work_units", 0)
    if baseline_work and current_work > baseline_work * (1.0 + tolerance):
        regressions.append(
            f"performance: symbolic work units rose {baseline_work} -> {current_work} "
            f"(> {tolerance:.0%} over baseline)"
        )

    regressions.extend(_compare_trace_workload(current, baseline, tolerance=tolerance))
    regressions.extend(_compare_curve_workload(current, baseline, check_wall=check_wall))
    regressions.extend(_compare_symbolic_workload(current, baseline))
    regressions.extend(_compare_serve_workload(current, baseline, check_wall=check_wall))
    regressions.extend(_compare_explore_workload(current, baseline, check_wall=check_wall))

    if check_wall:
        baseline_norm = _normalized_wall(baseline)
        current_norm = _normalized_wall(current)
        if baseline_norm and current_norm and current_norm > baseline_norm * (1.0 + tolerance):
            regressions.append(
                "performance: calibration-normalized wall time rose "
                f"{baseline_norm:.2f}x -> {current_norm:.2f}x calibration "
                f"(> {tolerance:.0%} over baseline; raw {baseline.get('wall_seconds', 0):.2f}s -> "
                f"{current.get('wall_seconds', 0):.2f}s)"
            )
    return regressions


def _compare_trace_workload(current: Dict, baseline: Dict, *, tolerance: float) -> List[str]:
    """Trace-workload regressions (see :func:`compare_reports`)."""
    regressions: List[str] = []
    now = current.get("trace")
    base = baseline.get("trace")
    if now is None:
        if base is not None:
            regressions.append("accuracy: trace workload missing from current report")
        return regressions
    if now.get("results_match") is False:
        regressions.append(
            "accuracy: trace workload backends disagree "
            f"(python {now.get('misses')}, numpy {now.get('numpy_misses')})"
        )
    if base and base.get("misses") is not None and now.get("misses") != base.get("misses"):
        regressions.append(
            f"accuracy: trace workload miss counts changed "
            f"(baseline {base.get('misses')}, current {now.get('misses')})"
        )
    speedup = now.get("speedup")
    if speedup is None:
        # No NumPy in this environment: the vectorized backend is an optional
        # extra, so the speedup gate cannot apply.
        return regressions
    floor = now.get("min_speedup") or (base or {}).get("min_speedup") or 0.0
    if floor and speedup < floor:
        regressions.append(
            f"performance: trace simulator speedup {speedup:.1f}x is below the "
            f"suite floor of {floor:.0f}x (python {now.get('python_seconds', 0):.3f}s, "
            f"numpy {now.get('numpy_seconds', 0):.4f}s)"
        )
    baseline_speedup = (base or {}).get("speedup")
    if baseline_speedup and speedup < baseline_speedup * 0.25:
        regressions.append(
            f"performance: trace simulator speedup collapsed "
            f"{baseline_speedup:.1f}x -> {speedup:.1f}x (under a quarter of baseline)"
        )
    return regressions


def _compare_curve_workload(current: Dict, baseline: Dict, *, check_wall: bool) -> List[str]:
    """Curve-sweep workload regressions (see :func:`compare_reports`)."""
    regressions: List[str] = []
    now = current.get("curve")
    base = baseline.get("curve")
    if now is None:
        if base is not None:
            regressions.append("accuracy: curve workload missing from current report")
        return regressions
    if now.get("counts_match") is False:
        regressions.append(
            "accuracy: curve workload sweep counts disagree with the exact trace reference"
        )
    if (
        base
        and base.get("sweep_misses") is not None
        and now.get("sweep_misses") != base.get("sweep_misses")
    ):
        regressions.append(
            "accuracy: curve workload sweep counts changed against the baseline"
        )
    if now.get("used_fallback"):
        regressions.append(
            "accuracy: curve workload fell back to the trace (the sweep must "
            "exercise the symbolic curve)"
        )
    ratio = now.get("sweep_ratio")
    ceiling = now.get("max_ratio") or (base or {}).get("max_ratio") or 0.0
    if check_wall and ratio is not None and ceiling and ratio > ceiling:
        regressions.append(
            f"performance: {now.get('points', 0)}-point curve sweep costs "
            f"{ratio:.2f}x a single fixed-capacity analysis (ceiling {ceiling:.1f}x; "
            f"single {now.get('single_seconds', 0):.2f}s, sweep {now.get('sweep_seconds', 0):.2f}s)"
        )
    return regressions


def _compare_symbolic_workload(current: Dict, baseline: Dict) -> List[str]:
    """Symbolic chamber-evaluation regressions (see :func:`compare_reports`)."""
    regressions: List[str] = []
    now = current.get("symbolic")
    base = baseline.get("symbolic")
    if now is None:
        if base is not None:
            regressions.append("accuracy: symbolic workload missing from current report")
        return regressions
    if now.get("results_match") is False:
        regressions.append(
            "accuracy: symbolic workload evaluation backends disagree on the "
            "per-capacity totals"
        )
    if (
        base
        and base.get("totals_sha256")
        and now.get("totals_sha256") != base.get("totals_sha256")
    ):
        regressions.append(
            "accuracy: symbolic workload per-capacity totals changed against the baseline"
        )
    speedup = now.get("speedup")
    if speedup is None:
        # No NumPy in this environment: the bulk evaluator is an optional
        # extra, so the speedup gate cannot apply.
        return regressions
    floor = now.get("min_speedup") or (base or {}).get("min_speedup") or 0.0
    if floor and speedup < floor:
        regressions.append(
            f"performance: symbolic chamber evaluation speedup {speedup:.1f}x is "
            f"below the suite floor of {floor:.0f}x "
            f"(python {now.get('python_seconds', 0):.3f}s, "
            f"numpy {now.get('numpy_seconds', 0):.4f}s)"
        )
    baseline_speedup = (base or {}).get("speedup")
    if baseline_speedup and speedup < baseline_speedup * 0.25:
        regressions.append(
            f"performance: symbolic chamber evaluation speedup collapsed "
            f"{baseline_speedup:.1f}x -> {speedup:.1f}x (under a quarter of baseline)"
        )
    return regressions


def _serve_normalized_p95(report: Dict) -> Optional[float]:
    """The serve workload's p95 latency in calibration units (or ``None``)."""
    serve = report.get("serve") or {}
    calibration = report.get("calibration_seconds") or 0.0
    p95 = serve.get("p95_seconds")
    if not calibration or p95 is None:
        return None
    return p95 / calibration


def _compare_serve_workload(current: Dict, baseline: Dict, *, check_wall: bool) -> List[str]:
    """Live-server workload regressions (see :func:`compare_reports`)."""
    regressions: List[str] = []
    now = current.get("serve")
    base = baseline.get("serve")
    if now is None:
        if base is not None:
            regressions.append("accuracy: serve workload missing from current report")
        return regressions
    if now.get("errors"):
        regressions.append(
            f"accuracy: serve workload saw {now['errors']} failed request(s) "
            f"out of {now.get('requests', 0)}"
        )
    if not now.get("probe_ok", True) or now.get("probe_coalesced", 0) < 2:
        regressions.append(
            "performance: serve workload batch duplicates failed to coalesce "
            f"({now.get('probe_coalesced', 0)}/2 duplicate responses coalesced)"
        )
    if not now.get("shed_ok", True):
        regressions.append(
            "accuracy: serve workload unlimited-budget request was not shed "
            "with 429/budget"
        )
    engine_jobs = now.get("engine_jobs")
    unique = now.get("unique_specs")
    if engine_jobs is not None and unique is not None and engine_jobs != unique:
        regressions.append(
            f"performance: serve workload ran {engine_jobs} engine jobs for "
            f"{unique} unique specs (every duplicate must coalesce or hit the store)"
        )
    dedup = now.get("dedup")
    accounted = (now.get("coalesced") or 0) + (now.get("cached") or 0)
    if dedup is not None and accounted != dedup:
        regressions.append(
            f"performance: serve workload dedup accounting broke "
            f"({now.get('coalesced')} coalesced + {now.get('cached')} store-cached "
            f"!= {dedup} duplicates)"
        )
    if now.get("cached", 0) < 1:
        regressions.append(
            "performance: serve workload store served no duplicate "
            "(store hit rate is zero)"
        )
    if now.get("payloads_identical") is False:
        regressions.append(
            "accuracy: serve workload responses for one spec are not byte-identical"
        )
    if base and base.get("misses") and now.get("misses") != base.get("misses"):
        regressions.append(
            "accuracy: serve workload per-kernel miss counts changed "
            f"(baseline {base.get('misses')}, current {now.get('misses')})"
        )
    if check_wall:
        # Loopback request latencies are far noisier than whole-suite wall
        # time, so the gate is collapse-style: 4x the baseline's
        # calibration-normalized p95, not the regular tolerance.
        baseline_norm = _serve_normalized_p95(baseline)
        current_norm = _serve_normalized_p95(current)
        if baseline_norm and current_norm and current_norm > baseline_norm * 4.0:
            regressions.append(
                "performance: serve workload p95 request latency rose "
                f"{baseline_norm:.2f}x -> {current_norm:.2f}x calibration "
                f"(> 4x baseline; raw {((baseline.get('serve') or {}).get('p95_seconds') or 0) * 1000:.1f}ms -> "
                f"{(now.get('p95_seconds') or 0) * 1000:.1f}ms)"
            )
    return regressions


def _compare_explore_workload(current: Dict, baseline: Dict, *, check_wall: bool) -> List[str]:
    """Design-space explorer regressions (see :func:`compare_reports`)."""
    regressions: List[str] = []
    now = current.get("explore")
    base = baseline.get("explore")
    if now is None:
        if base is not None:
            regressions.append("accuracy: explore workload missing from current report")
        return regressions
    if now.get("backends_match") is False:
        regressions.append(
            "accuracy: explore workload table is not byte-identical across backends"
        )
    if now.get("workers_match") is False:
        regressions.append(
            "accuracy: explore workload table is not byte-identical across worker counts"
        )
    if (
        base
        and base.get("table_digest")
        and now.get("table_digest") != base.get("table_digest")
    ):
        regressions.append(
            "accuracy: explore workload ranked table changed against the baseline"
        )
    ratio = now.get("cost_ratio")
    ceiling = now.get("max_cost_ratio") or (base or {}).get("max_cost_ratio") or 0.0
    if check_wall and ratio is not None and ceiling and ratio > ceiling:
        regressions.append(
            f"performance: {now.get('grid_size', 0)}-configuration explore grid costs "
            f"{ratio:.2f}x the {now.get('independent_analyses', 0)} independent analyses "
            f"(ceiling {ceiling:.2f}x; grid {now.get('grid_seconds', 0):.2f}s, "
            f"independent {now.get('independent_seconds', 0):.2f}s)"
        )
    return regressions


def format_bench_summary(report: Dict, regressions: Optional[Sequence[str]] = None) -> str:
    """Human-readable one-screen summary of a bench report."""
    totals = report.get("totals", {})
    lines = [
        f"bench suite {report.get('suite')!r}: {totals.get('jobs', 0)} jobs, "
        f"{totals.get('errors', 0)} errors, {totals.get('cached', 0)} served from store, "
        f"{totals.get('fallbacks', 0)} fallbacks",
        f"wall {report.get('wall_seconds', 0.0):.2f}s "
        f"(calibration {report.get('calibration_seconds', 0.0):.3f}s), "
        f"work units {totals.get('work_units', 0)}, "
        f"cardinality cache {totals.get('cache_hits', 0)}/{totals.get('cache_hits', 0) + totals.get('cache_misses', 0)} hits, "
        f"store {totals.get('store_hits', 0)} hits / {totals.get('store_misses', 0)} misses",
    ]
    trace = report.get("trace")
    if trace:
        if trace.get("speedup") is not None:
            lines.append(
                f"trace workload: {trace.get('accesses', 0)} accesses, "
                f"python {trace.get('python_seconds', 0.0):.3f}s, "
                f"numpy {trace.get('numpy_seconds', 0.0):.4f}s "
                f"({trace['speedup']:.1f}x speedup, floor {trace.get('min_speedup', 0):.0f}x)"
            )
        else:
            lines.append(
                f"trace workload: {trace.get('accesses', 0)} accesses, "
                f"python {trace.get('python_seconds', 0.0):.3f}s (NumPy not installed; no speedup measured)"
            )
    curve = report.get("curve")
    if curve:
        ratio = curve.get("sweep_ratio")
        ratio_text = f"{ratio:.2f}x" if ratio is not None else "n/a"
        lines.append(
            f"curve workload: {curve.get('points', 0)}-point sweep in "
            f"{curve.get('sweep_seconds', 0.0):.2f}s vs single analysis "
            f"{curve.get('single_seconds', 0.0):.2f}s ({ratio_text}, ceiling "
            f"{curve.get('max_ratio', 0):.1f}x), counts "
            f"{'match' if curve.get('counts_match') else 'DIFFER'}"
        )
    symbolic = report.get("symbolic")
    if symbolic:
        if symbolic.get("speedup") is not None:
            lines.append(
                f"symbolic workload: {symbolic.get('chamber_sets', 0)} chamber sets x "
                f"{symbolic.get('points', 0)} capacities, "
                f"python {symbolic.get('python_seconds', 0.0):.3f}s, "
                f"numpy {symbolic.get('numpy_seconds', 0.0):.4f}s "
                f"({symbolic['speedup']:.1f}x speedup, floor {symbolic.get('min_speedup', 0):.0f}x), "
                f"totals {'match' if symbolic.get('results_match') else 'DIFFER'}"
            )
        else:
            lines.append(
                f"symbolic workload: {symbolic.get('chamber_sets', 0)} chamber sets x "
                f"{symbolic.get('points', 0)} capacities, "
                f"python {symbolic.get('python_seconds', 0.0):.3f}s "
                f"(NumPy not installed; no speedup measured)"
            )
    serve = report.get("serve")
    if serve:
        p50 = serve.get("p50_seconds")
        p95 = serve.get("p95_seconds")
        latency = (
            f"p50 {p50 * 1000:.1f}ms / p95 {p95 * 1000:.1f}ms"
            if p50 is not None and p95 is not None
            else "no latency samples"
        )
        lines.append(
            f"serve workload: {serve.get('requests', 0)} requests over "
            f"{serve.get('unique_specs', 0)} unique specs on {serve.get('workers', 0)} worker(s): "
            f"{serve.get('engine_jobs', 0)} engine jobs, {serve.get('coalesced', 0)} coalesced, "
            f"{serve.get('cached', 0)} store hits, {serve.get('errors', 0)} errors, {latency}"
        )
    explore = report.get("explore")
    if explore:
        ratio = explore.get("cost_ratio")
        ratio_text = f"{ratio:.2f}x" if ratio is not None else "n/a"
        tables = (
            "identical"
            if explore.get("backends_match") and explore.get("workers_match")
            else "DIFFER"
        )
        lines.append(
            f"explore workload: {explore.get('grid_size', 0)}-config grid "
            f"({explore.get('analyses', 0)} analyses) in {explore.get('grid_seconds', 0.0):.2f}s "
            f"vs {explore.get('independent_analyses', 0)} independent analyses "
            f"{explore.get('independent_seconds', 0.0):.2f}s ({ratio_text}, ceiling "
            f"{explore.get('max_cost_ratio', 0):.2f}x), tables {tables}"
        )
    if regressions is not None:
        if regressions:
            lines.append(f"{len(regressions)} regression(s) against baseline:")
            lines.extend(f"  - {message}" for message in regressions)
        else:
            lines.append("no regressions against baseline")
    return "\n".join(lines)
