"""Experiment drivers and table rendering for the paper's evaluation."""

from .batch import format_batch_summary
from .tables import format_series, format_table, geometric_mean

__all__ = ["format_batch_summary", "format_series", "format_table", "geometric_mean"]
