"""Experiment drivers and table rendering for the paper's evaluation."""

from .batch import format_batch_summary
from .bench import compare_reports, format_bench_summary, run_suite, suite_names
from .tables import (
    format_diagnostics,
    format_miss_curve,
    format_series,
    format_table,
    geometric_mean,
)


def __getattr__(name):
    # Lazy re-export: the equivalence module doubles as a ``python -m``
    # entry point, and importing it eagerly here would make runpy warn about
    # the double import.
    if name in ("diff_payloads", "normalize", "payloads_equal"):
        from . import equivalence

        return getattr(equivalence, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "compare_reports",
    "diff_payloads",
    "format_batch_summary",
    "format_bench_summary",
    "format_diagnostics",
    "format_miss_curve",
    "format_series",
    "format_table",
    "geometric_mean",
    "normalize",
    "payloads_equal",
    "run_suite",
    "suite_names",
]
