"""Experiment drivers and table rendering for the paper's evaluation."""

from .tables import format_series, format_table, geometric_mean

__all__ = ["format_series", "format_table", "geometric_mean"]
