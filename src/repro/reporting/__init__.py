"""Experiment drivers and table rendering for the paper's evaluation."""

from .batch import format_batch_summary
from .bench import compare_reports, format_bench_summary, run_suite, suite_names
from .tables import format_series, format_table, geometric_mean

__all__ = [
    "compare_reports",
    "format_batch_summary",
    "format_bench_summary",
    "format_series",
    "format_table",
    "geometric_mean",
    "run_suite",
    "suite_names",
]
