"""Plain-text rendering of the evaluation tables and figure series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "format_diagnostics",
    "format_miss_curve",
    "format_table",
    "format_series",
    "geometric_mean",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if the sequence is empty)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))


def format_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def format_diagnostics(diagnostics: Sequence, *, title: str = "") -> str:
    """Render verifier findings as an aligned code/severity/location table.

    Shared by the CLI ``lint`` command and the server's lint/error payload
    formatting.  ``diagnostics`` are :class:`repro.verify.Diagnostic`
    objects (duck-typed: anything with ``code``, ``severity``,
    ``location_str`` and ``message`` renders).
    """
    rows = [
        (diag.code, diag.severity, diag.location_str or "-", diag.message)
        for diag in diagnostics
    ]
    return format_table(["code", "severity", "location", "message"], rows, title=title)


def format_miss_curve(curve, capacities_bytes: Sequence[int], *, title: str = "") -> str:
    """Render a :class:`~repro.core.MissCurve` sampled at byte capacities.

    One row per requested capacity: size, capacity in lines, the capacity
    misses read off the curve, total misses (with compulsory), and the miss
    ratio.  Rows where the curve is exact by construction (a breakpoint) are
    marked; on trace-derived curves every capacity is exact.
    """
    rows = []
    for size in capacities_bytes:
        lines = max(1, int(size) // curve.line_size)
        exact = "yes" if curve.exact or curve.is_breakpoint(lines) else "snap"
        rows.append(
            (
                size,
                lines,
                curve.misses_at(lines),
                curve.total_misses_at(lines),
                curve.miss_ratio_at(lines),
                exact,
            )
        )
    return format_table(
        ["size [B]", "lines", "capacity", "misses", "miss ratio", "exact"],
        rows,
        title=title,
    )


def format_series(name: str, points: Dict, *, unit: str = "") -> str:
    """Render an (x -> y) series, one line per point."""
    lines = [f"# {name}"]
    for key, value in points.items():
        suffix = f" {unit}" if unit else ""
        lines.append(f"{key}: {_cell(value)}{suffix}")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
