"""Backend-equivalence comparison of analysis payloads.

The ``numpy`` and ``python`` backends must produce byte-identical results:
every deterministic field of a serialized :class:`~repro.core.results.ModelResult`
or batch payload — miss counts, per-access breakdowns, piece statistics,
work units, cache counters — has to match exactly.  The only fields allowed
to differ are wall-clock measurements (``*_seconds``) and the ratio fields
derived from them (``speedup``, ``sweep_ratio``, ``normalized_wall``),
which depend on the machine, not on the computation.

:func:`normalize` strips exactly those volatile fields; :func:`diff_payloads`
reports every remaining difference with its JSON path.  The module doubles
as a command-line tool for the CI ``backend-equivalence`` job::

    repro-haystack batch --kernels ... --backend python --no-store --output py.json
    repro-haystack batch --kernels ... --backend numpy  --no-store --output np.json
    python -m repro.reporting.equivalence py.json np.json

which exits non-zero (and prints the differing paths) on any divergence.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Sequence

__all__ = ["diff_payloads", "main", "normalize"]

#: Keys whose values are wall-clock measurements and therefore differ run to
#: run; everything else must be byte-identical across backends.
_VOLATILE_SUFFIX = "_seconds"

#: Machine-dependent ratios *derived from* wall-clock fields (the bench
#: report's numpy-vs-python ``speedup``, the curve workload's
#: ``sweep_ratio``, calibration-normalized ``normalized_wall``): stripping
#: only the raw ``*_seconds`` inputs would leave these to spuriously fail
#: cross-run diffs of bench/trace payloads.
_VOLATILE_KEYS = frozenset({"speedup", "sweep_ratio", "normalized_wall"})


def _is_volatile_key(key) -> bool:
    return isinstance(key, str) and (key.endswith(_VOLATILE_SUFFIX) or key in _VOLATILE_KEYS)


def normalize(value):
    """Recursively drop wall-clock-dependent fields from a JSON payload.

    Every dictionary key ending in ``_seconds`` (``elapsed_seconds``,
    ``stack_distance_seconds``, ``wall_seconds``, ...) is removed, as are
    the ratio fields derived from them (see ``_VOLATILE_KEYS``); all other
    structure and values are preserved untouched.
    """
    if isinstance(value, dict):
        return {
            key: normalize(entry)
            for key, entry in value.items()
            if not _is_volatile_key(key)
        }
    if isinstance(value, list):
        return [normalize(entry) for entry in value]
    return value


def diff_payloads(left, right, path: str = "$") -> List[str]:
    """All differences between two normalized payloads, as JSON-path strings."""
    if isinstance(left, dict) and isinstance(right, dict):
        differences: List[str] = []
        for key in sorted(set(left) | set(right)):
            if key not in left:
                differences.append(f"{path}.{key}: only in right")
            elif key not in right:
                differences.append(f"{path}.{key}: only in left")
            else:
                differences.extend(diff_payloads(left[key], right[key], f"{path}.{key}"))
        return differences
    if isinstance(left, list) and isinstance(right, list):
        if len(left) != len(right):
            return [f"{path}: list length {len(left)} != {len(right)}"]
        differences = []
        for index, (a, b) in enumerate(zip(left, right)):
            differences.extend(diff_payloads(a, b, f"{path}[{index}]"))
        return differences
    if left != right:
        return [f"{path}: {left!r} != {right!r}"]
    return []


def payloads_equal(left, right) -> bool:
    """True when the payloads agree on every deterministic field."""
    return not diff_payloads(normalize(left), normalize(right))


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print("usage: python -m repro.reporting.equivalence LEFT.json RIGHT.json", file=sys.stderr)
        return 2
    payloads: List[Dict] = []
    for path in argv:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payloads.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2
    differences = diff_payloads(normalize(payloads[0]), normalize(payloads[1]))
    if differences:
        print(f"{len(differences)} deterministic field(s) differ between {argv[0]} and {argv[1]}:")
        for line in differences[:50]:
            print(f"  {line}")
        if len(differences) > 50:
            print(f"  ... and {len(differences) - 50} more")
        return 1
    print(f"{argv[0]} and {argv[1]} are equivalent on all deterministic fields")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
