"""Summary tables for batch-engine runs."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .tables import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> core -> reporting is absent,
    # but keep reporting import-light regardless)
    from ..engine.batch import BatchResult

__all__ = ["format_batch_summary"]


def format_batch_summary(batch: "BatchResult") -> str:
    """One row per job plus a footer with totals and cache statistics."""
    rows = []
    for record in batch.records:
        if record.ok and record.result is not None:
            result = record.result
            misses = "/".join(str(level.misses) for level in result.level_results)
            rows.append(
                (
                    record.kernel,
                    record.dataset,
                    result.accesses,
                    misses,
                    f"{result.miss_ratio():.4f}",
                    "yes" if result.used_fallback else "no",
                    "store" if record.cached else "-",
                    f"{result.timing.cardinality_cache_hit_rate:.0%}",
                    f"{record.elapsed_seconds:.2f}",
                )
            )
        else:
            rows.append(
                (record.kernel, record.dataset, "-", "-", "-", "-", "-", "-", f"{record.elapsed_seconds:.2f}")
            )
    lines = [
        format_table(
            ["kernel", "dataset", "accesses", "misses (L1/..)", "L1 ratio", "fallback", "source", "cache hits", "time [s]"],
            rows,
            title=f"batch: {len(batch)} jobs on {batch.worker_count} worker(s)",
        )
    ]
    failures = [record for record in batch.records if not record.ok]
    for record in failures:
        lines.append(f"FAILED {record.kernel} ({record.dataset}): {record.error}")
    lines.append(
        f"{batch.ok_count}/{len(batch)} jobs ok, {batch.fallback_count} fallback(s), "
        f"cardinality cache {batch.cache_hits} hits / {batch.cache_misses} misses "
        f"({batch.cache_hit_rate:.0%}), wall time {batch.elapsed_seconds:.2f}s"
    )
    if batch.store_stats is not None:
        stats = batch.store_stats
        lines.append(
            f"store: {batch.cached_count}/{len(batch)} results served from store, "
            f"cardinality tier {batch.cardinality_store_hits} hits / "
            f"{batch.cardinality_store_misses} misses, "
            f"{stats.get('invalidations', 0)} invalidation(s), {stats.get('writes', 0)} write(s)"
        )
        # The result tier's own counters (AnalysisStore.stats()): the same
        # struct the server's /stats endpoint reports.
        lines.append(
            f"store result tier: {stats.get('hits', 0)} hits / {stats.get('misses', 0)} misses "
            f"({stats.get('hit_rate', 0.0):.0%} hit rate), {stats.get('evictions', 0)} eviction(s)"
        )
    return "\n".join(lines)
