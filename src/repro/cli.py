"""Command-line interface: analyse or simulate PolyBench kernels.

Examples::

    repro-haystack list
    repro-haystack kernels --json
    repro-haystack model gemm --dataset mini --l1 32768 --l2 1048576
    repro-haystack model gemm --dataset mini --machine paper-xeon
    repro-haystack analyze examples/kernels/gemm.knl --machine paper-xeon
    repro-haystack analyze my-kernel.knl --curve --sweep 1K:8M
    repro-haystack simulate jacobi-1d --dataset mini --l1 32768
    repro-haystack compare trisolv --dataset mini --l1 4096
    repro-haystack batch --kernels gemm,atax,mvt --jobs 4 --output results.json
    repro-haystack bench --suite smoke --compare

Every analysis command is a thin wrapper over :class:`repro.api.Session`;
kernel and machine names resolve through :mod:`repro.api.registry`, so
plugin-contributed kernels are first-class citizens here too.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from typing import List, Optional, Tuple

from . import sweep as sweepmod
from .sweep import DEFAULT_SWEEP_POINTS, Sweep, SweepError

from .api import Session
from .api import registry
from .api.registry import RegistryError
from .api.session import SessionConfigError
from .core import CacheLevelSpec, MachineModel
from .core.budget import BudgetExhausted
from .core.prevmap import ModelFallbackRequired
from .core.results import ModelResult
from .engine.store import (
    BACKEND_NAMES,
    default_store_path,
    job_digest,
    make_store_spec,
    validate_store_env,
    validate_store_path,
)
from .frontend import KernelParseError, parse_kernel_path
from .reporting import (
    format_batch_summary,
    format_diagnostics,
    format_miss_curve,
    format_table,
)
from .reporting.bench import (
    compare_reports,
    default_baseline_path,
    format_bench_summary,
    load_report,
    run_suite,
    suite_names,
    write_report,
)
from .simulator import (
    BACKENDS,
    BackendUnavailableError,
    CacheLevelConfig,
    DineroSimulator,
    validate_backend_env,
)

__all__ = ["main"]

#: Default deterministic symbolic work budget for CLI runs.  Heavy kernels
#: trip it within seconds and degrade to the exact trace-based fallback
#: (flagged in the output); ``--budget 0`` removes the bound.
DEFAULT_WORK_BUDGET = 10_000

#: Cache-geometry defaults applied when neither ``--machine`` nor explicit
#: flags are given (kept as ``None`` argparse defaults so a preset and an
#: explicit override can be told apart).
DEFAULT_LINE_SIZE = 64
DEFAULT_L1_BYTES = 32 * 1024


class _ArgsError(Exception):
    """Invalid flag combination; the message goes to stderr, exit code 2."""


def _budget_value(args) -> Optional[int]:
    return args.budget if args.budget > 0 else None


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_size(text: str) -> int:
    """Parse a byte size like ``4096``, ``32K``, or ``1MiB``.

    Thin CLI adapter over :func:`repro.sweep.parse_size` — the single parser
    shared with the API, the server, and the explorer — converting
    :class:`~repro.sweep.SweepError` into the exit-code-2 path.
    """
    try:
        return sweepmod.parse_size(text)
    except SweepError as exc:
        raise _ArgsError(str(exc)) from None


def _sweep_sizes(spec: str, *, label: str = "--sweep") -> List[int]:
    """Expand ``MIN:MAX[:POINTS]`` via the shared :mod:`repro.sweep` parser."""
    try:
        return sweepmod.expand_range(spec, label=label)
    except SweepError as exc:
        raise _ArgsError(str(exc)) from None


def _axis_values(spec: str, *, label: str) -> List[int]:
    """Parse a CSV-of-sizes-and-ranges axis spec (``explore`` flags)."""
    try:
        return list(Sweep.parse(spec, label=label).values)
    except SweepError as exc:
        raise _ArgsError(str(exc)) from None


def _curve_capacities(args, machine: MachineModel) -> List[int]:
    """Capacity sweep of the ``curve`` command, in bytes.

    Explicit ``--capacities`` entries and the ``--sweep`` range combine; with
    neither given, the default sweep runs log-spaced from one cache line to
    twice the largest hierarchy level.
    """
    sizes = set()
    if args.capacities:
        sizes.update(_axis_values(args.capacities, label="--capacities"))
    if args.sweep:
        sizes.update(_sweep_sizes(args.sweep))
    if not sizes:
        largest = max(level.size for level in machine.levels)
        sizes.update(_sweep_sizes(f"{machine.line_size}:{2 * largest}:{DEFAULT_SWEEP_POINTS}"))
        sizes.update(level.size for level in machine.levels)
    return sorted(sizes)


def _warn_fallback(args, exc: Exception) -> None:
    """Announce the fallback *before* the trace enumeration starts."""
    if isinstance(exc, BudgetExhausted):
        cause = (
            f"exceeded the work budget ({args.budget} units); raise --budget "
            "(0 = unlimited) to keep the symbolic pipeline going"
        )
    else:
        cause = f"cannot handle this program exactly ({exc})"
    print(
        f"note: the symbolic analysis {cause}. Computing exact miss counts from "
        "the trace instead — this enumerates every access and can be slow for "
        "large datasets.",
        file=sys.stderr,
    )
    sys.stderr.flush()


def _machine_from_args(args) -> MachineModel:
    """Resolve ``--machine NAME`` or the raw ``--line-size/--l1/--l2/--l3`` flags."""
    explicit = [
        flag
        for flag, attr in (("--line-size", "line_size"), ("--l1", "l1"), ("--l2", "l2"), ("--l3", "l3"))
        if getattr(args, attr, None) is not None
    ]
    if getattr(args, "machine", None):
        if explicit:
            raise _ArgsError(
                f"--machine {args.machine} cannot be combined with {', '.join(explicit)}; "
                "name a preset or shape the hierarchy by hand, not both"
            )
        try:
            return registry.get_machine(args.machine).build()
        except RegistryError as exc:
            raise _ArgsError(str(exc)) from None
        except Exception as exc:  # noqa: BLE001 - a broken factory is a user-facing error
            raise _ArgsError(f"machine {args.machine!r} failed to build: {exc}") from None
    line_size = args.line_size if args.line_size is not None else DEFAULT_LINE_SIZE
    l1 = args.l1 if args.l1 is not None else DEFAULT_L1_BYTES
    levels = [CacheLevelSpec(l1, "L1")]
    if getattr(args, "l2", None):
        levels.append(CacheLevelSpec(args.l2, "L2"))
    if getattr(args, "l3", None):
        levels.append(CacheLevelSpec(args.l3, "L3"))
    return MachineModel(line_size=line_size, levels=tuple(levels))


def _store_path(args) -> Optional[str]:
    """Resolved store spec: ``--no-store`` disables, ``--store-path`` overrides.

    The returned string carries the backend choice (``--store-backend`` /
    ``$REPRO_STORE_BACKEND``) as a ``backend:path`` spec, so it flows through
    sessions, pool workers, and the server unchanged.
    """
    if args.no_store:
        return None
    path = args.store_path or default_store_path()
    return make_store_spec(path, getattr(args, "store_backend", None))


def _session_from_args(args, machine: MachineModel) -> Session:
    """The configured façade every analysis command runs through."""
    session = Session().machine(machine).budget(_budget_value(args))
    if getattr(args, "no_fallback", False):
        session.options(fallback=False)
    if getattr(args, "backend", None):
        session.backend(args.backend)
    if getattr(args, "workers", None):
        session.piece_workers(args.workers)
    path = _store_path(args)
    if path:
        session.store(path)
    return session


def _analyze_for_cli(args, session: Session, scop):
    """Symbolic analysis first; on failure warn, then run the exact fallback.

    Returns ``(result, exit_code)`` with ``result=None`` when ``--no-fallback``
    turned the failure into an error.
    """
    # Fallback is disabled on the model so the CLI can warn the user before
    # the (potentially long) trace enumeration starts.
    model = session.cache_model(fallback=False)
    try:
        return model.analyze(scop), 0
    except (ModelFallbackRequired, BudgetExhausted) as exc:
        if args.no_fallback:
            print(f"symbolic analysis failed and fallback is disabled: {exc}", file=sys.stderr)
            return None, 3
        _warn_fallback(args, exc)
        result = model.analyze_by_trace(scop)
        result.timing.work_units_charged = getattr(exc, "work_units_charged", 0)
        return result, 0


def _model_result_with_store(
    args, session: Session, scop, *, structural: bool = False
) -> Tuple[Optional[ModelResult], bool, int]:
    """Analytical result via the persistent store: ``(result, cached, exit_code)``.

    With ``structural=True`` the store digest fingerprints the scop's full
    structure instead of the (kernel, dataset) name pair — used by ``analyze``,
    where the same kernel name may mean different file contents over time.
    """
    store = session.open_store()
    digest = None
    if store is not None:
        # The spec mirrors the session machine exactly (L1 always present,
        # L2/L3 optional), so distinct hierarchies never alias one digest.
        kernel_name = getattr(args, "kernel", None) or scop.name
        spec = session.job_spec(
            kernel_name, args.dataset, scop=scop if structural else None
        )
        digest = job_digest(spec)
        payload = store.get_result(digest)
        if payload is not None:
            try:
                return ModelResult.from_dict(payload), True, 0
            except (KeyError, TypeError, ValueError):
                pass
    result, exit_code = _analyze_for_cli(args, session, scop)
    if result is not None and store is not None:
        store.put_result(digest, result.to_dict())
    return result, False, exit_code


def _model_stats_line(result: ModelResult, cached: bool, store_enabled: bool) -> str:
    """Cache/store statistics footer shared by ``model`` and ``compare``.

    Printed unconditionally — in particular the fallback path, whose timing
    carries zero cache lookups but a real work-unit charge, must not drop it.
    """
    timing = result.timing
    parts = [
        f"model time: {timing.total_seconds:.2f}s",
        f"work units: {timing.work_units_charged}",
        f"cardinality cache {timing.cardinality_cache_hits}/{timing.cardinality_cache_lookups} hits",
    ]
    if store_enabled:
        store_part = f"store {timing.store_hits} hits / {timing.store_misses} misses"
        if cached:
            store_part = "result served from store"
        parts.append(store_part)
    else:
        parts.append("store disabled")
    if result.used_fallback:
        parts.append("fallback used")
    return ", ".join(parts)


def _simulator(
    machine: MachineModel,
    associativity: Optional[int],
    backend: str = "auto",
    *,
    policy: str = "lru",
    prefetch_degree: int = 0,
) -> DineroSimulator:
    return DineroSimulator(
        [
            CacheLevelConfig(
                cache_size=level.size,
                line_size=machine.line_size,
                associativity=associativity,
                policy=policy,
                prefetch_degree=prefetch_degree,
            )
            for level in machine.levels
        ],
        backend=backend,
    )


def _add_budget_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget",
        type=_nonnegative_int,
        default=DEFAULT_WORK_BUDGET,
        metavar="UNITS",
        help="deterministic symbolic work budget; exceeding it falls back to the "
        f"exact trace computation (default {DEFAULT_WORK_BUDGET}, 0 = unlimited)",
    )


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="auto",
        help="concrete-pipeline implementation: 'numpy' (vectorized), 'python' "
        "(reference), 'auto' = NumPy when installed (default; both backends "
        "produce identical results)",
    )


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        metavar="NAME",
        default=None,
        help="named machine preset from the registry (see `kernels`); "
        "mutually exclusive with the raw cache-geometry flags",
    )
    parser.add_argument("--line-size", type=int, default=None, help=f"line size in bytes (default {DEFAULT_LINE_SIZE})")
    parser.add_argument("--l1", type=int, default=None, help=f"L1 size in bytes (default {DEFAULT_L1_BYTES})")
    parser.add_argument("--l2", type=int, default=None, help="L2 size in bytes (0 = disabled)")
    parser.add_argument("--l3", type=int, default=None, help="L3 size in bytes (0 = disabled)")


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("kernel", help="kernel name (see `list`)")
    parser.add_argument(
        "--dataset", default="mini", help="problem size class (default: mini)"
    )
    _add_machine_arguments(parser)


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="split the per-access capacity counts of this analysis across N "
        "worker processes; results are byte-identical for every N (default: "
        "sequential)",
    )


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-path",
        metavar="DIR",
        default=None,
        help="persistent analysis store root (default: $REPRO_STORE_PATH or "
        "~/.cache/repro-haystack/store)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent analysis store for this run",
    )
    parser.add_argument(
        "--store-backend",
        choices=BACKEND_NAMES,
        default=None,
        help="store backend: 'dir' (one file per entry, the default) or "
        "'sqlite' (one WAL-mode database; safe for many server workers); "
        "default: $REPRO_STORE_BACKEND or dir",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-haystack",
        description=__doc__,
        epilog="Environment variables (REPRO_BACKEND, REPRO_STORE_PATH, "
        "REPRO_STORE_MAX_BYTES, REPRO_BENCH_JOBS, REPRO_EXAMPLE_FAST) are "
        "documented in the README's 'Environment variables' table; see also "
        "docs/ARCHITECTURE.md and docs/PERFORMANCE.md.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available kernel names")

    kernels_parser = subparsers.add_parser(
        "kernels", help="list registered kernels, datasets and machine presets"
    )
    kernels_parser.add_argument(
        "--json", action="store_true", help="machine-readable output instead of tables"
    )

    model_parser = subparsers.add_parser("model", help="run the analytical cache model")
    _add_cache_arguments(model_parser)
    model_parser.add_argument("--no-fallback", action="store_true", help="fail instead of falling back to the trace")
    _add_budget_argument(model_parser)
    _add_workers_argument(model_parser)
    _add_store_arguments(model_parser)
    _add_backend_argument(model_parser)

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="parse a kernel DSL (.knl) file and run the analytical model on it",
    )
    analyze_parser.add_argument(
        "file", help="kernel DSL file (language reference: docs/KERNEL_DSL.md)"
    )
    analyze_parser.add_argument(
        "--dataset",
        default=None,
        help="dataset block of the file to instantiate (default: its first block)",
    )
    _add_machine_arguments(analyze_parser)
    analyze_parser.add_argument(
        "--no-fallback", action="store_true", help="fail instead of falling back to the trace"
    )
    analyze_parser.add_argument(
        "--curve",
        action="store_true",
        help="report a miss curve over a capacity sweep instead of the level table",
    )
    analyze_parser.add_argument(
        "--sweep",
        metavar="MIN:MAX[:POINTS]",
        default=None,
        help="capacity sweep for --curve (same syntax as the curve command)",
    )
    analyze_parser.add_argument(
        "--capacities",
        metavar="LIST",
        default=None,
        help="explicit cache sizes for --curve (comma-separated, K/M/G suffixes ok)",
    )
    analyze_parser.add_argument(
        "--json", action="store_true", help="machine-readable --curve output"
    )
    analyze_parser.add_argument(
        "--compare",
        action="store_true",
        help="also run the trace simulator and compare the miss counts",
    )
    analyze_parser.add_argument(
        "--associativity",
        type=int,
        default=None,
        help="simulator ways for --compare (default: fully associative)",
    )
    _add_budget_argument(analyze_parser)
    _add_workers_argument(analyze_parser)
    _add_store_arguments(analyze_parser)
    _add_backend_argument(analyze_parser)

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically verify a kernel and predict its symbolic cost "
        "without running the model (diagnostic codes: docs/LINT.md)",
    )
    lint_parser.add_argument(
        "file",
        nargs="?",
        default=None,
        help="kernel DSL (.knl) file to lint; alternatively use --kernel",
    )
    lint_parser.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="registered kernel to lint instead of a file (see `list`)",
    )
    lint_parser.add_argument(
        "--dataset",
        default=None,
        help="dataset to instantiate (default: the file's first block, or "
        "'mini' for registered kernels)",
    )
    lint_parser.add_argument(
        "--json",
        action="store_true",
        help="schema-versioned machine-readable findings instead of the table",
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the lint (exit 3), not just errors",
    )
    lint_parser.add_argument(
        "--no-cost",
        action="store_true",
        help="skip the symbolic-cost probe (COST findings); static checks only",
    )
    _add_machine_arguments(lint_parser)
    _add_budget_argument(lint_parser)

    sim_parser = subparsers.add_parser("simulate", help="run the trace-driven simulator")
    _add_cache_arguments(sim_parser)
    sim_parser.add_argument("--associativity", type=int, default=None, help="ways (default: fully associative)")
    sim_parser.add_argument(
        "--policy",
        choices=["lru", "fifo", "tree-plru"],
        default="lru",
        help="replacement policy for set-associative levels (default lru)",
    )
    sim_parser.add_argument(
        "--prefetch-degree",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="next-line prefetcher: install N sequential lines on every miss "
        "(default 0 = disabled; forces the reference simulator)",
    )
    _add_backend_argument(sim_parser)

    curve_parser = subparsers.add_parser(
        "curve", help="miss curve: sweep many cache sizes from one analysis"
    )
    _add_cache_arguments(curve_parser)
    curve_parser.add_argument(
        "--sweep",
        metavar="MIN:MAX[:POINTS]",
        default=None,
        help="log-spaced capacity sweep in bytes (sizes accept K/M/G suffixes; "
        f"default {DEFAULT_SWEEP_POINTS} points); combines with --capacities",
    )
    curve_parser.add_argument(
        "--capacities",
        metavar="LIST",
        default=None,
        help="comma-separated explicit cache sizes in bytes (K/M/G suffixes ok)",
    )
    curve_parser.add_argument(
        "--json", action="store_true", help="machine-readable output instead of a table"
    )
    curve_parser.add_argument(
        "--no-fallback", action="store_true", help="fail instead of falling back to the trace"
    )
    _add_budget_argument(curve_parser)
    _add_workers_argument(curve_parser)
    _add_store_arguments(curve_parser)
    _add_backend_argument(curve_parser)

    explore_parser = subparsers.add_parser(
        "explore",
        help="design-space explorer: rank a tile x capacity x line-size x "
        "associativity grid and report its Pareto front (docs/EXPLORE.md)",
    )
    _add_cache_arguments(explore_parser)
    explore_parser.add_argument(
        "--tiles",
        metavar="LIST",
        default=None,
        help="tile sizes to explore (comma-separated values and MIN:MAX[:POINTS] "
        "ranges; 1 = untiled; default: 1 only)",
    )
    explore_parser.add_argument(
        "--capacities",
        metavar="LIST",
        default=None,
        help="cache capacities to explore (comma-separated sizes and "
        "MIN:MAX[:POINTS] ranges, K/M/G suffixes ok; combines with --sweep; "
        "default: the machine's hierarchy levels)",
    )
    explore_parser.add_argument(
        "--sweep",
        metavar="MIN:MAX[:POINTS]",
        default=None,
        help="log-spaced capacity sweep (same syntax as the curve command); "
        "combines with --capacities",
    )
    explore_parser.add_argument(
        "--line-sizes",
        metavar="LIST",
        default=None,
        help="cache line sizes to explore (default: the machine's line size)",
    )
    explore_parser.add_argument(
        "--associativities",
        metavar="LIST",
        default=None,
        help="way counts for the hardware-cost axis (the miss prediction is "
        "associativity-blind; default: fully associative)",
    )
    explore_parser.add_argument(
        "--pareto", action="store_true", help="print only the Pareto-optimal rows"
    )
    explore_parser.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        metavar="N",
        help="print at most N ranked rows (default: all)",
    )
    explore_parser.add_argument(
        "--json", action="store_true", help="machine-readable output instead of a table"
    )
    explore_parser.add_argument(
        "--no-fallback", action="store_true", help="fail instead of falling back to the trace"
    )
    _add_budget_argument(explore_parser)
    _add_workers_argument(explore_parser)
    _add_store_arguments(explore_parser)
    _add_backend_argument(explore_parser)

    cmp_parser = subparsers.add_parser("compare", help="run both and compare the miss counts")
    _add_cache_arguments(cmp_parser)
    cmp_parser.add_argument("--associativity", type=int, default=None)
    cmp_parser.add_argument("--no-fallback", action="store_true", help="fail instead of falling back to the trace")
    _add_budget_argument(cmp_parser)
    _add_store_arguments(cmp_parser)
    _add_backend_argument(cmp_parser)

    batch_parser = subparsers.add_parser(
        "batch", help="analyse a kernel x dataset matrix across a worker pool"
    )
    batch_parser.add_argument(
        "--kernels",
        required=True,
        help="comma-separated kernel names, or 'all' for every registered kernel",
    )
    batch_parser.add_argument(
        "--datasets", default="mini", help="comma-separated dataset classes (default: mini)"
    )
    batch_parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N", help="worker processes")
    batch_parser.add_argument("--output", metavar="FILE", help="write the batch results as JSON")
    _add_machine_arguments(batch_parser)
    batch_parser.add_argument("--no-fallback", action="store_true", help="record an error instead of falling back")
    batch_parser.add_argument(
        "--progress",
        action="store_true",
        help="stream one line per job to stderr as the pool completes them",
    )
    _add_budget_argument(batch_parser)
    _add_store_arguments(batch_parser)
    _add_backend_argument(batch_parser)

    bench_parser = subparsers.add_parser(
        "bench", help="run a named benchmark suite and compare against a baseline"
    )
    bench_parser.add_argument(
        "--suite", default="smoke", choices=suite_names(), help="workload suite (default: smoke)"
    )
    bench_parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="report path (default: BENCH_<suite>.json in the current directory)",
    )
    bench_parser.add_argument(
        "--compare",
        action="store_true",
        help="compare the report against the baseline and exit 4 on regression",
    )
    bench_parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline report (default: benchmarks/baselines/BENCH_<suite>.json)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        metavar="FRAC",
        help="allowed relative rise of wall time and work units (default: 0.2)",
    )
    bench_parser.add_argument(
        "--no-wall",
        action="store_true",
        help="skip the wall-clock comparison (deterministic metrics only)",
    )
    bench_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the report to the baseline path instead of comparing",
    )
    bench_parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N", help="worker processes")
    _add_store_arguments(bench_parser)
    _add_backend_argument(bench_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the analysis HTTP service (endpoints: /healthz, /stats, "
        "/v1/analyze, /v1/batch; see docs/SERVER.md)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8157,
        help="TCP port; 0 picks an ephemeral port (default: 8157)",
    )
    serve_parser.add_argument(
        "--port-file",
        metavar="FILE",
        default=None,
        help="write the bound port to FILE once listening (ephemeral-port discovery)",
    )
    serve_parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=2,
        metavar="N",
        help="engine worker processes (0 = run jobs on server threads; default: 2)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=8,
        metavar="N",
        help="admission cap on concurrently executing jobs; beyond it requests "
        "are shed with 429 (default: 8)",
    )
    serve_parser.add_argument(
        "--max-budget",
        type=_positive_int,
        default=None,
        metavar="UNITS",
        help="admission ceiling on per-request symbolic work budgets; requests "
        "above it (or asking for unlimited) are shed with 429 (default: no ceiling)",
    )
    _add_budget_argument(serve_parser)
    _add_store_arguments(serve_parser)

    args = parser.parse_args(argv)

    # A bad $REPRO_BACKEND would otherwise ride through backend="auto" into a
    # deep ValueError mid-run, and a bad $REPRO_STORE_PATH/--store-path into
    # a failure (or a silently disabled store) mid-analysis; reject both
    # before doing anything.
    try:
        validate_backend_env()
        validate_store_env()
        if getattr(args, "store_path", None) and not getattr(args, "no_store", False):
            validate_store_path(args.store_path, getattr(args, "store_backend", None))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "list":
        for name in registry.kernel_names():
            print(name)
        return 0

    if args.command == "kernels":
        return _run_kernels(args)

    if args.command == "batch":
        return _run_batch(args)

    if args.command == "analyze":
        return _run_analyze(args)

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "bench":
        return _run_bench(args)

    try:
        machine = _machine_from_args(args)
    except (_ArgsError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        entry = registry.get_kernel(args.kernel)
    except RegistryError as exc:
        # The registry message is a one-liner with a did-you-mean hint and
        # the full kernel listing.
        print(str(exc), file=sys.stderr)
        return 2
    try:
        scop = entry.build(args.dataset)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.command == "model":
        return _run_model(args, machine, scop)

    if args.command == "curve":
        return _run_curve(args, machine, scop)

    if args.command == "explore":
        return _run_explore(args, machine)

    if args.command == "simulate":
        if args.associativity is None and args.policy != "lru":
            print("--policy requires --associativity (fully associative caches are LRU)", file=sys.stderr)
            return 2
        try:
            result = _simulator(
                machine,
                args.associativity,
                args.backend,
                policy=args.policy,
                prefetch_degree=args.prefetch_degree,
            ).run(scop)
        except BackendUnavailableError as exc:
            # $REPRO_BACKEND itself was validated at entry; this is the
            # explicit-numpy-without-NumPy case.
            print(str(exc), file=sys.stderr)
            return 2
        rows = [
            (f"L{i+1}", stats.accesses, stats.compulsory_misses, stats.capacity_misses + stats.conflict_misses, stats.misses, stats.hits, stats.writebacks)
            for i, stats in enumerate(result.levels)
        ]
        print(format_table(["level", "accesses", "compulsory", "other misses", "misses", "hits", "writebacks"], rows,
                           title=f"{scop.name} ({args.dataset}) — trace simulation"))
        print(f"simulation time: {result.elapsed_seconds:.3f}s for {result.accesses} accesses")
        return 0

    if args.command == "compare":
        return _run_compare(args, machine, scop)

    return 1


def _run_model(args, machine: MachineModel, scop, *, structural: bool = False) -> int:
    """``model`` subcommand body (also the default mode of ``analyze``)."""
    try:
        session = _session_from_args(args, machine)
    except SessionConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result, cached, exit_code = _model_result_with_store(
        args, session, scop, structural=structural
    )
    if result is None:
        return exit_code
    rows = [
        (level.name, level.cache_size, level.accesses, level.compulsory, level.capacity, level.misses, level.hits)
        for level in result.level_results
    ]
    print(format_table(["level", "size [B]", "accesses", "compulsory", "capacity", "misses", "hits"], rows,
                       title=f"{scop.name} ({args.dataset}) — analytical model"))
    print(f"pieces: {result.piece_count}, " + _model_stats_line(result, cached, not args.no_store))
    return 0


def _run_compare(args, machine: MachineModel, scop, *, structural: bool = False) -> int:
    """``compare`` subcommand body (also ``analyze --compare``)."""
    try:
        session = _session_from_args(args, machine)
    except SessionConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    model_result, cached, exit_code = _model_result_with_store(
        args, session, scop, structural=structural
    )
    if model_result is None:
        return exit_code
    sim_result = _simulator(machine, args.associativity, args.backend).run(scop)
    rows = []
    disagreement = 0
    for index, level in enumerate(model_result.level_results):
        sim = sim_result.levels[index]
        difference = level.misses - sim.misses
        disagreement += abs(difference)
        rows.append((level.name, level.misses, sim.misses, difference))
    # A fallback "model" result is itself trace-derived, so agreement with
    # the simulator does not validate the symbolic pipeline; say so.
    title = f"{scop.name} ({args.dataset}) — model vs. simulation"
    if model_result.used_fallback:
        title += " (model used trace fallback)"
    print(format_table(["level", "model misses", "simulated misses", "difference"], rows, title=title))
    # The statistics footer is printed on every path — the fallback run
    # in particular must not silently drop its cache/store counters.
    print(_model_stats_line(model_result, cached, not args.no_store))
    return 1 if disagreement else 0


def _run_curve(args, machine: MachineModel, scop, *, structural: bool = False) -> int:
    """``curve`` subcommand: one analysis, a whole capacity sweep."""
    try:
        sweep = _curve_capacities(args, machine)
    except _ArgsError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        session = _session_from_args(args, machine).capacities(*sweep)
    except SessionConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result, cached, exit_code = _model_result_with_store(
        args, session, scop, structural=structural
    )
    if result is None:
        return exit_code
    curve = result.miss_curve
    if curve is None:
        print("analysis result carries no miss curve (stale store payload?)", file=sys.stderr)
        return 3
    if args.json:
        points = []
        for size in sweep:
            lines = max(1, size // machine.line_size)
            points.append(
                {
                    "capacity_bytes": size,
                    "capacity_lines": lines,
                    "capacity_misses": curve.misses_at(lines),
                    "misses": curve.total_misses_at(lines),
                    "miss_ratio": curve.miss_ratio_at(lines),
                }
            )
        payload = {
            "kernel": scop.name,
            "dataset": args.dataset,
            "line_size": machine.line_size,
            "levels": [level.size for level in machine.levels],
            "used_fallback": result.used_fallback,
            "elapsed_seconds": result.timing.total_seconds,
            "curve": curve.to_dict(),
            "sweep": points,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    title = f"{scop.name} ({args.dataset}) — miss curve over {len(sweep)} capacities"
    if result.used_fallback:
        title += " (exact, from trace fallback)"
    print(format_miss_curve(curve, sweep, title=title))
    print(_model_stats_line(result, cached, not args.no_store))
    return 0


def _run_explore(args, machine: MachineModel) -> int:
    """``explore`` subcommand: rank a design grid, print its Pareto front.

    One symbolic analysis per (tile, line size); the capacity and
    associativity axes ride the parametric miss curve for free (see
    :mod:`repro.explore`).  Axis flags all parse through :mod:`repro.sweep`.
    """
    try:
        capacities = set()
        if args.capacities:
            capacities.update(_axis_values(args.capacities, label="--capacities"))
        if args.sweep:
            capacities.update(_sweep_sizes(args.sweep))
        tiles = _axis_values(args.tiles, label="--tiles") if args.tiles else None
        line_sizes = (
            _axis_values(args.line_sizes, label="--line-sizes") if args.line_sizes else None
        )
        ways = (
            _axis_values(args.associativities, label="--associativities")
            if args.associativities
            else None
        )
    except _ArgsError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        session = _session_from_args(args, machine)
        result = session.explore(
            args.kernel,
            args.dataset,
            tiles=tiles,
            capacities=sorted(capacities) or None,
            line_sizes=line_sizes,
            associativities=ways,
        )
    except SessionConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        payload = result.to_dict()
        payload["table_digest"] = result.table_digest()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    configs = result.front() if args.pareto else result.configs
    shown = configs[: args.limit] if args.limit else configs
    rows = [
        (
            rank + 1,
            config.tile,
            config.line_size,
            config.associativity if config.associativity is not None else "full",
            config.capacity_bytes,
            config.misses,
            f"{100 * config.miss_ratio:.2f}%",
            config.cost,
            "*" if config.pareto else "",
        )
        for rank, config in enumerate(shown)
    ]
    mode = "Pareto front" if args.pareto else "ranked configurations"
    title = (
        f"{result.kernel} ({args.dataset}) — {mode}: "
        f"{len(result.configs)} configs from {result.analyses} analyses"
    )
    print(
        format_table(
            ["rank", "tile", "line", "ways", "capacity [B]", "misses", "miss %", "cost", "pareto"],
            rows,
            title=title,
        )
    )
    if args.limit and len(configs) > args.limit:
        print(f"... {len(configs) - args.limit} more rows (raise --limit or use --json)")
    print(
        f"explore time: {result.elapsed_seconds:.2f}s, "
        f"{result.analyses} analyses for {len(result.configs)} configurations, "
        f"table digest {result.table_digest()[:12]}"
    )
    return 0


def _run_analyze(args) -> int:
    """``analyze`` subcommand: model/curve/compare straight from a .knl file.

    Parse and validation failures print the located error with a caret
    snippet (see :meth:`repro.frontend.KernelParseError.render`) and exit
    with status 2 — never a traceback.  The file is *not* registered: the
    scop feeds the session directly and the store digest fingerprints its
    structure, so editing the file never serves a stale cached result.
    """
    if args.curve and args.compare:
        print("--curve and --compare are mutually exclusive", file=sys.stderr)
        return 2
    if args.json and not args.curve:
        print("--json requires --curve", file=sys.stderr)
        return 2
    if args.associativity is not None and not args.compare:
        print("--associativity only applies with --compare", file=sys.stderr)
        return 2
    if (args.sweep or args.capacities) and not args.curve:
        print("--sweep/--capacities only apply with --curve", file=sys.stderr)
        return 2
    try:
        machine = _machine_from_args(args)
    except (_ArgsError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        program = parse_kernel_path(args.file)
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except KernelParseError as exc:
        print(exc.render(), file=sys.stderr)
        return 2
    dataset = args.dataset or next(iter(program.datasets))
    try:
        scop = program.instantiate(program.dataset_sizes(dataset))
    except KernelParseError as exc:
        print(exc.render(), file=sys.stderr)
        return 2
    # Downstream helpers label output and key the store off these fields.
    args.dataset = dataset
    args.kernel = program.name
    if args.curve:
        return _run_curve(args, machine, scop, structural=True)
    if args.compare:
        return _run_compare(args, machine, scop, structural=True)
    return _run_model(args, machine, scop, structural=True)


def _run_lint(args) -> int:
    """``lint`` subcommand: static diagnostics + symbolic-cost prediction.

    Exit status: 0 = clean (infos and, without ``--strict``, warnings are
    allowed), 2 = bad arguments / unreadable or unparsable input, 3 = at
    least one error-severity finding (with ``--strict``: or warning).
    """
    from .verify import verify_scop

    if (args.file is None) == (args.kernel is None):
        print("lint needs exactly one input: a .knl file or --kernel NAME", file=sys.stderr)
        return 2
    try:
        machine = _machine_from_args(args)
    except (_ArgsError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.file is not None:
        try:
            program = parse_kernel_path(args.file)
        except OSError as exc:
            print(f"cannot read {args.file}: {exc}", file=sys.stderr)
            return 2
        except KernelParseError as exc:
            print(exc.render(), file=sys.stderr)
            return 2
        dataset = args.dataset or next(iter(program.datasets))
        kernel = program.name
        try:
            scop = program.instantiate(program.dataset_sizes(dataset))
        except KernelParseError as exc:
            print(exc.render(), file=sys.stderr)
            return 2
    else:
        dataset = args.dataset or "mini"
        kernel = args.kernel
        try:
            scop = registry.get_kernel(kernel).build(dataset)
        except RegistryError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    report = verify_scop(
        scop,
        machine,
        dataset=dataset,
        budget=_budget_value(args),
        cost=not args.no_cost,
    )
    failed = report.has_errors(strict=args.strict)
    if args.json:
        print(json.dumps(report.to_payload(), indent=2, sort_keys=True))
        return 3 if failed else 0

    counts = report.counts()
    source = args.file if args.file is not None else kernel
    if report.diagnostics:
        print(
            format_diagnostics(
                report.diagnostics, title=f"{kernel} ({dataset}) — lint of {source}"
            )
        )
    summary = ", ".join(f"{counts[name]} {name}(s)" for name in ("error", "warning", "info"))
    print(f"lint: {summary}")
    if report.cost is not None and report.cost.outcome == "fits":
        print(
            f"cost: fits the budget ({report.cost.work_units} of "
            f"{report.cost.budget if report.cost.budget is not None else 'unlimited'} work units)"
        )
    return 3 if failed else 0


def _run_kernels(args) -> int:
    """``kernels`` subcommand: everything the registries know about."""
    kernels = [
        {"name": entry.name, "datasets": list(entry.datasets), "source": entry.source}
        for entry in registry.kernel_entries()
    ]
    machines = []
    for entry in registry.machine_entries():
        # A broken factory (e.g. a buggy plugin) must not take down the one
        # command users run to see what registered; warn and keep listing.
        try:
            model = entry.build()
        except Exception as exc:  # noqa: BLE001 - plugin isolation
            print(f"warning: machine {entry.name!r} failed to build: {exc}", file=sys.stderr)
            continue
        machines.append(
            {
                "name": entry.name,
                "levels": [level.size for level in model.levels],
                "line_size": model.line_size,
                "description": entry.description,
                "source": entry.source,
            }
        )
    if args.json:
        print(json.dumps({"kernels": kernels, "machines": machines}, indent=2, sort_keys=True))
        return 0
    kernel_rows = [(k["name"], ", ".join(k["datasets"]), k["source"]) for k in kernels]
    machine_rows = [
        (
            m["name"],
            "+".join(str(size) for size in m["levels"]),
            m["line_size"],
            m["description"] or "-",
            m["source"],
        )
        for m in machines
    ]
    print(format_table(["kernel", "datasets", "source"], kernel_rows,
                       title=f"{len(kernel_rows)} registered kernels"))
    print()
    print(format_table(["machine", "levels [B]", "line [B]", "description", "source"], machine_rows,
                       title=f"{len(machine_rows)} registered machine presets"))
    return 0


def _run_batch(args) -> int:
    if args.kernels.strip().lower() == "all":
        kernels = registry.kernel_names()
    else:
        kernels = [name.strip() for name in args.kernels.split(",") if name.strip()]
    datasets = [name.strip() for name in args.datasets.split(",") if name.strip()]
    if not kernels:
        print("no kernels given (use --kernels name[,name...] or --kernels all)", file=sys.stderr)
        return 2
    if not datasets:
        print("no datasets given (use --datasets name[,name...])", file=sys.stderr)
        return 2
    known = set(registry.kernel_names())
    unknown = [name for name in kernels if name not in known]
    if unknown:
        print(f"unknown kernels: {', '.join(unknown)}", file=sys.stderr)
        return 2
    known_datasets = set(registry.dataset_names())
    invalid = [name for name in datasets if name not in known_datasets]
    if invalid:
        print(f"unknown datasets: {', '.join(invalid)}", file=sys.stderr)
        return 2
    if args.l1 is not None and args.l1 <= 0:
        print("--l1 must be a positive size in bytes (only L2/L3 can be disabled with 0)", file=sys.stderr)
        return 2
    try:
        machine = _machine_from_args(args)
    except (_ArgsError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        session = _session_from_args(args, machine).workers(args.jobs)
    except SessionConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    progress = None
    if args.progress:
        def progress(record, done, total):
            status = record.status if not record.cached else "cached"
            print(f"[{done}/{total}] {record.kernel}/{record.dataset}: {status} "
                  f"({record.elapsed_seconds:.2f}s)", file=sys.stderr)
            sys.stderr.flush()
    try:
        batch = session.kernels(*kernels).datasets(*datasets).run(progress=progress)
    except (SessionConfigError, RegistryError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_batch_summary(batch))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(batch.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {len(batch)} job records to {args.output}")
    return 0 if batch.error_count == 0 else 1


def _run_serve(args) -> int:
    """Run the analysis HTTP service until interrupted."""
    import asyncio

    from .server import AnalysisService, HttpServer

    try:
        service = AnalysisService(
            store_path=None if args.no_store else (args.store_path or default_store_path()),
            store_backend=getattr(args, "store_backend", None),
            workers=args.workers,
            max_inflight=args.max_inflight,
            max_budget=args.max_budget,
            default_budget=_budget_value(args),
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    server = HttpServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
        store = service.store_path or "off"
        print(
            f"repro-haystack serve: listening on http://{args.host}:{server.port} "
            f"(workers={args.workers}, max-inflight={args.max_inflight}, store={store})",
            file=sys.stderr,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


def _run_bench(args) -> int:
    output = args.output or f"BENCH_{args.suite}.json"
    baseline_path = args.baseline or str(default_baseline_path(args.suite))
    # Default to a fresh throwaway store so the measurement is a defined
    # cold run; --store-path measures against existing warmth (that is how
    # CI exercises the warm-rerun speedup) and --no-store drops the store
    # entirely.
    tmp_store = None
    if args.no_store:
        store_path = None
    elif args.store_path:
        store_path = make_store_spec(args.store_path, getattr(args, "store_backend", None))
    else:
        tmp_store = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        store_path = make_store_spec(tmp_store.name, getattr(args, "store_backend", None))
    try:
        report = run_suite(args.suite, jobs=args.jobs, store_path=store_path, backend=args.backend)
    except SessionConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        if tmp_store is not None:
            tmp_store.cleanup()
    write_report(report, output)

    if args.update_baseline:
        write_report(report, baseline_path)
        print(format_bench_summary(report))
        print(f"wrote report to {output} and refreshed baseline {baseline_path}")
        return 0

    regressions = None
    if args.compare:
        try:
            baseline = load_report(baseline_path)
        except (OSError, ValueError) as exc:
            print(
                f"cannot load baseline {baseline_path}: {exc} "
                "(generate one with `repro-haystack bench --update-baseline`)",
                file=sys.stderr,
            )
            return 2
        regressions = compare_reports(
            report, baseline, tolerance=args.tolerance, check_wall=not args.no_wall
        )
    print(format_bench_summary(report, regressions))
    print(f"wrote report to {output}")
    if args.compare:
        return 4 if regressions else 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
