"""Command-line interface: analyse or simulate PolyBench kernels.

Examples::

    repro-haystack list
    repro-haystack model gemm --dataset mini --l1 32768 --l2 1048576
    repro-haystack simulate jacobi-1d --dataset mini --l1 32768
    repro-haystack compare trisolv --dataset mini --l1 4096
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from .reporting import format_table
from .scop.polybench import build_kernel, dataset_names, kernel_names
from .simulator import CacheLevelConfig, DineroSimulator

__all__ = ["main"]


def _machine(args) -> MachineModel:
    levels = [CacheLevelSpec(args.l1, "L1")]
    if args.l2:
        levels.append(CacheLevelSpec(args.l2, "L2"))
    if args.l3:
        levels.append(CacheLevelSpec(args.l3, "L3"))
    return MachineModel(line_size=args.line_size, levels=tuple(levels))


def _simulator(args) -> DineroSimulator:
    sizes = [args.l1] + ([args.l2] if args.l2 else []) + ([args.l3] if args.l3 else [])
    return DineroSimulator(
        [CacheLevelConfig(cache_size=size, line_size=args.line_size, associativity=args.associativity) for size in sizes]
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("kernel", help="PolyBench kernel name (see `list`)")
    parser.add_argument("--dataset", default="mini", choices=dataset_names(), help="problem size class")
    parser.add_argument("--line-size", type=int, default=64)
    parser.add_argument("--l1", type=int, default=32 * 1024, help="L1 size in bytes")
    parser.add_argument("--l2", type=int, default=0, help="L2 size in bytes (0 = disabled)")
    parser.add_argument("--l3", type=int, default=0, help="L3 size in bytes (0 = disabled)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-haystack", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available PolyBench kernels")

    model_parser = subparsers.add_parser("model", help="run the analytical cache model")
    _add_cache_arguments(model_parser)
    model_parser.add_argument("--no-fallback", action="store_true", help="fail instead of falling back to the trace")

    sim_parser = subparsers.add_parser("simulate", help="run the trace-driven simulator")
    _add_cache_arguments(sim_parser)
    sim_parser.add_argument("--associativity", type=int, default=None, help="ways (default: fully associative)")

    cmp_parser = subparsers.add_parser("compare", help="run both and compare the miss counts")
    _add_cache_arguments(cmp_parser)
    cmp_parser.add_argument("--associativity", type=int, default=None)

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in kernel_names():
            print(name)
        return 0

    scop = build_kernel(args.kernel, args.dataset)
    if args.command == "model":
        options = ModelOptions(fallback_to_simulation=not args.no_fallback)
        result = CacheModel(_machine(args), options).analyze(scop)
        rows = [
            (level.name, level.cache_size, level.accesses, level.compulsory, level.capacity, level.misses, level.hits)
            for level in result.level_results
        ]
        print(format_table(["level", "size [B]", "accesses", "compulsory", "capacity", "misses", "hits"], rows,
                           title=f"{scop.name} ({args.dataset}) — analytical model"))
        print(f"pieces: {result.piece_count}, model time: {result.timing.total_seconds:.2f}s"
              + (", fallback used" if result.used_fallback else ""))
        return 0

    if args.command == "simulate":
        result = _simulator(args).run(scop)
        rows = [
            (f"L{i+1}", stats.accesses, stats.compulsory_misses, stats.capacity_misses + stats.conflict_misses, stats.misses, stats.hits)
            for i, stats in enumerate(result.levels)
        ]
        print(format_table(["level", "accesses", "compulsory", "other misses", "misses", "hits"], rows,
                           title=f"{scop.name} ({args.dataset}) — trace simulation"))
        print(f"simulation time: {result.elapsed_seconds:.3f}s for {result.accesses} accesses")
        return 0

    if args.command == "compare":
        model_result = CacheModel(_machine(args)).analyze(scop)
        sim_result = _simulator(args).run(scop)
        rows = []
        for index, level in enumerate(model_result.level_results):
            sim = sim_result.levels[index]
            rows.append((level.name, level.misses, sim.misses, level.misses - sim.misses))
        print(format_table(["level", "model misses", "simulated misses", "difference"], rows,
                           title=f"{scop.name} ({args.dataset}) — model vs. simulation"))
        return 0

    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
