"""Pareto-front selection over minimize-everything objective vectors.

The explorer ranks design points on two objectives — predicted misses and a
hardware cost proxy — but the helpers here are dimension-agnostic: an
objective vector is any tuple of comparable numbers where *smaller is
better* on every axis.  Property tests in ``tests/test_explore.py`` hold the
two defining invariants under hypothesis-generated inputs: no front member
dominates another, and every excluded point is dominated by some front
member.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

__all__ = ["dominates", "pareto_front"]

T = TypeVar("T")

Objective = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good everywhere and better somewhere.

    Equal vectors do not dominate each other, so duplicated designs survive
    side by side instead of arbitrarily evicting one another.
    """
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(
    points: Sequence[T], key: Callable[[T], Sequence[float]] = lambda p: p
) -> List[T]:
    """The non-dominated subset of ``points``, in their original order.

    ``key`` maps an item to its objective vector (identity by default, for
    plain tuples).  The scan is O(n²), which is exact and plenty for design
    grids of a few thousand configurations; the stable order keeps the
    output deterministic for the bench digest.
    """
    objectives = [tuple(key(point)) for point in points]
    front: List[T] = []
    for index, point in enumerate(points):
        mine = objectives[index]
        if not any(
            dominates(other, mine) for j, other in enumerate(objectives) if j != index
        ):
            front.append(point)
    return front
