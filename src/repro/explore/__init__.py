"""Design-space exploration: parametric tile × capacity × hierarchy grids.

Public surface::

    from repro.explore import DesignSpace, run_explore, pareto_front

    space = DesignSpace.from_specs(tiles="1,4,8,16", capacities="1K:1M:16")
    result = run_explore(session, scop, space)
    for config in result.front():
        ...

Most callers reach this through :meth:`repro.api.Session.explore`, the
``repro-haystack explore`` command, or the server's ``/v1/explore`` endpoint
— all three delegate here, and all parse their axis specs through
:mod:`repro.sweep`.  The anatomy of the output is documented in
``docs/EXPLORE.md``.
"""

from .engine import (
    EXPLORE_SCHEMA_VERSION,
    ExploreConfig,
    ExploreResult,
    build_result,
    config_cost,
    run_explore,
)
from .pareto import dominates, pareto_front
from .space import DesignSpace, DesignSpaceError

__all__ = [
    "EXPLORE_SCHEMA_VERSION",
    "DesignSpace",
    "DesignSpaceError",
    "ExploreConfig",
    "ExploreResult",
    "build_result",
    "config_cost",
    "dominates",
    "pareto_front",
    "run_explore",
]
