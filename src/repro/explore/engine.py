"""Design-space exploration: walk a grid, rank it, take its Pareto front.

The walk does only :meth:`DesignSpace.analysis_count` symbolic analyses —
one per (tile, line size) — and serves the full
tile × capacity × line-size × associativity grid from their
:class:`~repro.core.MissCurve` results:

* each analysis runs through :meth:`repro.api.Session.analyze` against a
  single-level machine sized to the largest explored capacity, with the
  whole capacity axis as parametric curve breakpoints, so the session's
  store makes repeat grids (and overlapping grids) nearly free;
* every capacity is answered by ``MissCurve.misses_at`` — no re-analysis;
* associativity never changes the predicted misses (the model is fully
  associative; the paper attributes its residual error to associativity
  and replacement policy), so the axis only moves the cost proxy.

Every configuration gets a **cost** — ``capacity_bytes + line_size * ways``,
with fully associative caches charged ``ways = capacity_lines`` — a crude
monotone proxy for the tag/comparator hardware a design spends: bigger
caches cost more, and at a fixed capacity, higher associativity and the
fully associative extreme cost more.  The Pareto front minimizes
(total misses, cost); ranking and serialization are deterministic so the
bench gate can hold the table byte-identical across backends and worker
counts.

The server's ``/v1/explore`` endpoint reuses :func:`build_result` over
curves it obtained through the coalescing analyze path, so online and
offline tables cannot diverge.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core import CacheLevelSpec, MachineModel
from ..core.curve import MissCurve
from ..scop import Scop
from ..scop.schedule import tile_scop
from .pareto import pareto_front
from .space import DesignSpace, DesignSpaceError

__all__ = [
    "EXPLORE_SCHEMA_VERSION",
    "ExploreConfig",
    "ExploreResult",
    "build_result",
    "config_cost",
    "run_explore",
]

#: Bump when the explore payload layout changes (see docs/EXPLORE.md).
EXPLORE_SCHEMA_VERSION = 1


def config_cost(capacity_bytes: int, capacity_lines: int, line_size: int, ways: Optional[int]) -> int:
    """Hardware-cost proxy of one configuration (smaller is cheaper).

    ``capacity_bytes`` dominates; the ``line_size * ways`` term charges the
    per-set comparator/tag width, with fully associative (``ways=None``)
    charged as ``ways = capacity_lines`` — every line needs a comparator.
    """
    effective_ways = capacity_lines if ways is None else min(ways, capacity_lines)
    return capacity_bytes + line_size * effective_ways


@dataclass(frozen=True)
class ExploreConfig:
    """One explored configuration with its predicted behaviour."""

    tile: int
    capacity_bytes: int
    capacity_lines: int
    line_size: int
    associativity: Optional[int]  #: ``None`` = fully associative
    cost: int
    misses: int  #: total misses (compulsory + capacity) at this capacity
    compulsory: int
    capacity_misses: int
    accesses: int
    miss_ratio: float
    pareto: bool = False

    def objectives(self) -> Tuple[int, int]:
        """The minimized objective vector: (total misses, hardware cost)."""
        return (self.misses, self.cost)

    def to_dict(self) -> Dict:
        return {
            "tile": self.tile,
            "capacity_bytes": self.capacity_bytes,
            "capacity_lines": self.capacity_lines,
            "line_size": self.line_size,
            "associativity": self.associativity,
            "cost": self.cost,
            "misses": self.misses,
            "compulsory": self.compulsory,
            "capacity_misses": self.capacity_misses,
            "accesses": self.accesses,
            "miss_ratio": self.miss_ratio,
            "pareto": self.pareto,
        }


@dataclass
class ExploreResult:
    """A ranked design grid and its Pareto front.

    ``configs`` is sorted best-first by ``(misses, cost, tile, line_size,
    ways)`` — a total order, so the ranking is reproducible; ``pareto``
    flags survive on each row and :meth:`front` extracts them.
    """

    kernel: str
    dataset: Optional[str]
    space: DesignSpace
    configs: List[ExploreConfig]
    analyses: int
    elapsed_seconds: float = 0.0

    def front(self) -> List[ExploreConfig]:
        return [config for config in self.configs if config.pareto]

    def best(self) -> Optional[ExploreConfig]:
        return self.configs[0] if self.configs else None

    def to_dict(self) -> Dict:
        """Deterministic payload: everything except wall time is exact."""
        return {
            "schema_version": EXPLORE_SCHEMA_VERSION,
            "kernel": self.kernel,
            "dataset": self.dataset,
            "space": self.space.to_dict(),
            "grid_size": len(self.configs),
            "analyses": self.analyses,
            "configs": [config.to_dict() for config in self.configs],
            "pareto": [config.to_dict() for config in self.front()],
            "elapsed_seconds": self.elapsed_seconds,
        }

    def table_digest(self) -> str:
        """SHA-256 over the deterministic table; the bench byte-identity gate."""
        payload = self.to_dict()
        payload.pop("elapsed_seconds", None)
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("ascii")
        ).hexdigest()


#: Produces the miss curve (and nothing else) for one (tile, line_size).
CurveSource = Callable[[int, int], MissCurve]


def build_result(
    space: DesignSpace,
    curve_for: CurveSource,
    *,
    kernel: str,
    dataset: Optional[str] = None,
) -> ExploreResult:
    """Assemble the ranked grid from per-(tile, line size) miss curves.

    Shared by the offline walk (:func:`run_explore`) and the server's
    ``/v1/explore`` assembly, so both produce the identical table for the
    same curves.
    """
    space.validate()
    if not space.capacities:
        raise DesignSpaceError("the capacity axis is empty; resolve the space first")
    line_sizes = space.line_sizes or (64,)
    configs: List[ExploreConfig] = []
    analyses = 0
    for line_size in line_sizes:
        for tile in space.tiles:
            curve = curve_for(tile, line_size)
            analyses += 1
            for capacity in space.capacities:
                lines = max(1, capacity // line_size)
                capacity_misses = curve.misses_at(lines)
                misses = curve.total_misses_at(lines)
                for ways in space.associativities:
                    configs.append(
                        ExploreConfig(
                            tile=tile,
                            capacity_bytes=capacity,
                            capacity_lines=lines,
                            line_size=line_size,
                            associativity=ways,
                            cost=config_cost(capacity, lines, line_size, ways),
                            misses=misses,
                            compulsory=curve.compulsory,
                            capacity_misses=capacity_misses,
                            accesses=curve.accesses,
                            miss_ratio=curve.miss_ratio_at(lines),
                            pareto=False,
                        )
                    )
    front = {id(config) for config in pareto_front(configs, key=ExploreConfig.objectives)}
    flagged = [replace(config, pareto=id(config) in front) for config in configs]
    flagged.sort(key=_rank_key)
    return ExploreResult(
        kernel=kernel,
        dataset=dataset,
        space=space,
        configs=flagged,
        analyses=analyses,
    )


def _rank_key(config: ExploreConfig) -> Tuple:
    ways = config.capacity_lines if config.associativity is None else config.associativity
    return (config.misses, config.cost, config.tile, config.line_size, ways)


def run_explore(
    session,
    scop: Scop,
    space: DesignSpace,
    *,
    kernel: Optional[str] = None,
    dataset: Optional[str] = None,
) -> ExploreResult:
    """Walk a design space for one scop through a configured session.

    One :meth:`~repro.api.Session.analyze` per (tile, line size): the tiled
    schedule comes from :func:`repro.scop.schedule.tile_scop`, the machine is
    a single level sized to the largest explored capacity, and the whole
    capacity axis rides along as parametric curve breakpoints.  The session's
    store, budget, backend, and worker knobs all apply, and every analysis is
    content-addressed by the tiled scop's structural fingerprint — a repeat
    grid is served entirely from the store.
    """
    import time

    space = space.resolved(session.machine_model)
    started = time.perf_counter()
    variants: Dict[int, Scop] = {}

    def curve_for(tile: int, line_size: int) -> MissCurve:
        if tile not in variants:
            variants[tile] = tile_scop(scop, tile) if tile > 1 else scop
        machine = MachineModel(
            line_size=line_size,
            levels=(CacheLevelSpec(max(space.capacities), "L1"),),
        )
        sub = session.derive(machine=machine, capacities=space.capacities)
        result = sub.analyze(variants[tile])
        if result.miss_curve is None:
            raise DesignSpaceError(
                f"analysis of tile={tile} line_size={line_size} returned no miss curve"
            )
        return result.miss_curve

    result = build_result(
        space,
        curve_for,
        kernel=kernel or scop.name,
        dataset=dataset,
    )
    result.elapsed_seconds = time.perf_counter() - started
    return result
