"""Declarative design spaces: the grid the explorer walks.

A :class:`DesignSpace` names four axes — tile sizes, cache capacities, line
sizes, associativities — and the explorer exploits the model's structure so
the grid costs far less than one analysis per configuration:

* **tiles × line sizes** each need their own symbolic analysis (tiling
  rewrites the schedule via ``repro.scop.schedule.tile_scop``; the line size
  changes which accesses share a cache line);
* **capacities** are free: one parametric counting pass per analysis yields
  a :class:`~repro.core.MissCurve` that answers every capacity;
* **associativities** are free too: the analytical model is fully
  associative by design (the paper attributes its residual error to
  associativity and replacement policy), so every associativity shares the
  same predicted miss count and differs only in the hardware-cost proxy.

Axis specs accept everything :class:`repro.sweep.Sweep` parses — ints,
``"MIN:MAX[:POINTS]"`` ranges, K/M/G sizes, CSV strings, iterables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core import MachineModel
from ..sweep import Sweep, SweepError, SweepSpec

__all__ = ["DesignSpace", "DesignSpaceError"]


class DesignSpaceError(ValueError):
    """An axis spec that cannot form a valid design space."""


def _axis(spec: SweepSpec, label: str) -> Tuple[int, ...]:
    try:
        return Sweep.parse(spec, label=label).values
    except SweepError as exc:
        raise DesignSpaceError(str(exc)) from None


@dataclass(frozen=True)
class DesignSpace:
    """The cartesian grid of explored configurations.

    ``tiles`` always contains at least ``1`` (the untiled schedule);
    ``capacities`` must be non-empty by the time the explorer runs (the
    explorer defaults it from the session machine when omitted);
    ``line_sizes`` empty means "the machine's line size";
    ``associativities`` holds positive way counts, with ``None`` meaning
    fully associative.
    """

    tiles: Tuple[int, ...] = (1,)
    capacities: Tuple[int, ...] = ()
    line_sizes: Tuple[int, ...] = ()
    associativities: Tuple[Optional[int], ...] = (None,)

    @classmethod
    def from_specs(
        cls,
        *,
        tiles: SweepSpec = None,
        capacities: SweepSpec = None,
        line_sizes: SweepSpec = None,
        associativities: SweepSpec = None,
    ) -> "DesignSpace":
        """Build a space from sweep specs, one per axis (all optional)."""
        ways: Tuple[Optional[int], ...] = (None,)
        if associativities is not None:
            ways = _axis(associativities, "associativities") or (None,)
        space = cls(
            tiles=_axis(tiles, "tiles") or (1,),
            capacities=_axis(capacities, "capacities"),
            line_sizes=_axis(line_sizes, "line_sizes"),
            associativities=ways,
        )
        space.validate()
        return space

    @classmethod
    def hierarchy(cls, machine: MachineModel, *, tiles: SweepSpec = None) -> "DesignSpace":
        """Preset: sweep the capacities and line size of a concrete machine.

        The capacity axis is the machine's hierarchy levels, the line-size
        axis its line size — so the grid reads as "this machine, at every
        level, under these tilings".
        """
        return cls.from_specs(
            tiles=tiles,
            capacities=sorted({level.size for level in machine.levels}),
            line_sizes=(machine.line_size,),
        )

    def validate(self) -> None:
        if not self.tiles or any(tile < 1 for tile in self.tiles):
            raise DesignSpaceError(f"tiles must be >= 1, got {self.tiles}")
        if any(size <= 0 for size in self.capacities):
            raise DesignSpaceError(f"capacities must be positive, got {self.capacities}")
        if any(size <= 0 for size in self.line_sizes):
            raise DesignSpaceError(f"line sizes must be positive, got {self.line_sizes}")
        for ways in self.associativities:
            if ways is not None and ways < 1:
                raise DesignSpaceError(f"associativities must be >= 1 or None, got {ways}")

    def resolved(self, machine: MachineModel) -> "DesignSpace":
        """Fill empty axes from a machine: capacities from its hierarchy
        levels, line sizes from its line size."""
        capacities = self.capacities or tuple(sorted({lvl.size for lvl in machine.levels}))
        line_sizes = self.line_sizes or (machine.line_size,)
        space = DesignSpace(self.tiles, capacities, line_sizes, self.associativities)
        space.validate()
        return space

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    def config_count(self) -> int:
        """Configurations in the grid (requires resolved axes)."""
        return (
            len(self.tiles)
            * len(self.capacities)
            * len(self.line_sizes or (1,))
            * len(self.associativities)
        )

    def analysis_count(self) -> int:
        """Symbolic analyses the grid costs: one per (tile, line size).

        The capacity and associativity axes ride along for free — this ratio
        against :meth:`config_count` is what the bench ``explore`` workload
        gates.
        """
        return len(self.tiles) * len(self.line_sizes or (1,))

    def to_dict(self) -> dict:
        return {
            "tiles": list(self.tiles),
            "capacities": list(self.capacities),
            "line_sizes": list(self.line_sizes),
            "associativities": [w for w in self.associativities],
        }
