"""The analysis service: coalescing, admission control, and job execution.

:class:`AnalysisService` is the transport-independent core behind the HTTP
layer (:mod:`repro.server.http`): it turns one request payload into one
response ``(status, body)`` pair, and owns the three mechanisms that make
the service safe to share:

* **Request coalescing** — in-flight jobs are keyed by the same
  :func:`~repro.engine.store.job_digest` the store uses, in one
  ``Dict[digest, Future]``.  The first request for a digest becomes the
  *leader* (it runs the engine job); any request arriving for the same
  digest while the leader is in flight becomes a *waiter* and awaits the
  leader's future.  N identical concurrent requests cost exactly one engine
  job, and every response carries the identical payload object.  The
  in-flight map is only touched from the event loop, so no locks are
  needed; the future is registered *before* the leader's first ``await``,
  closing the window in which a duplicate could slip past.

* **Admission control** — two shed conditions, both answered with a 429
  body instead of queueing unbounded work: a *global concurrency cap*
  (``max_inflight`` leaders; waiters are free, they consume no engine
  slot), and an optional *budget ceiling* (``max_budget``) that rejects
  requests demanding more symbolic work than the operator allows —
  including requests asking for an unlimited budget.  Requests that name no
  budget get ``default_budget``.

* **Write-through store** — leaders look up the shared
  :class:`~repro.engine.store.AnalysisStore` before computing and publish
  their result to it after, so a restarted server (or an offline
  ``repro-haystack analyze`` against the same store) serves and reuses the
  same entries.  Store I/O runs in worker threads, never on the loop.

Engine jobs execute in a ``ProcessPoolExecutor`` running the exact batch
worker entry point (:func:`repro.engine.batch._execute_job`), so a server
job is the same computation as a batch job — same budget accounting, same
error isolation, same store interaction.  ``workers=0`` degrades to inline
threads (tests monkeypatch the worker there).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Tuple

from ..engine.batch import _execute_job
from ..engine.jobs import JobSpec
from ..engine.store import AnalysisStore, job_digest, validate_store_env, validate_store_path
from .protocol import (
    RequestError,
    build_explore_plan,
    build_lint_request,
    build_spec,
    error_body,
    result_envelope,
)

__all__ = ["AnalysisService"]

#: Default cap on concurrently *executing* jobs (leaders, not waiters).
DEFAULT_MAX_INFLIGHT = 8


class AnalysisService:
    """One long-lived analysis backend shared by every connection.

    Construct, then drive from an event loop via :meth:`analyze`; call
    :meth:`shutdown` when done (the background helpers and the CLI do both).
    """

    def __init__(
        self,
        *,
        store_path: Optional[str] = None,
        store_backend: Optional[str] = None,
        workers: int = 1,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_budget: Optional[int] = None,
        default_budget: Optional[int] = None,
    ) -> None:
        validate_store_env()
        if store_path:
            store_path = validate_store_path(store_path, store_backend)
        if workers < 0:
            raise ValueError(f"worker count must be >= 0, got {workers}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.store_path = store_path
        self.store = AnalysisStore(store_path) if store_path else None
        self.workers = workers
        self.max_inflight = max_inflight
        self.max_budget = max_budget
        self.default_budget = default_budget
        self._inflight: Dict[str, asyncio.Future] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._started = time.monotonic()
        self._counters = {
            "requests": 0,
            "coalesced": 0,
            "shed_capacity": 0,
            "shed_budget": 0,
            "engine_jobs": 0,
            "explores": 0,
            "lints": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def analyze(self, payload: Dict) -> Tuple[int, Dict]:
        """One request JSON in, ``(http_status, response_body)`` out."""
        self._counters["requests"] += 1
        try:
            spec, kernel = build_spec(payload, default_budget=self.default_budget)
        except RequestError as exc:
            return exc.status, error_body(exc)
        shed = self._budget_shed(spec)
        if shed is not None:
            self._counters["shed_budget"] += 1
            return 429, shed

        digest = job_digest(spec)
        existing = self._inflight.get(digest)
        if existing is not None:
            # Waiter: share the leader's computation (and its failure).
            self._counters["coalesced"] += 1
            try:
                result = await asyncio.shield(existing)
            except Exception as exc:  # noqa: BLE001 - leader failures propagate
                return 500, error_body(exc)
            return 200, result_envelope(
                result, digest=digest, kernel=kernel, cached=False, coalesced=True
            )

        if len(self._inflight) >= self.max_inflight:
            self._counters["shed_capacity"] += 1
            return 429, error_body(
                f"server is at capacity ({self.max_inflight} jobs in flight); retry later",
                shed="capacity",
            )

        # Leader: register the future before the first await, so duplicates
        # arriving during the store lookup coalesce instead of recomputing.
        future = asyncio.get_running_loop().create_future()
        self._inflight[digest] = future
        try:
            cached = False
            result = None
            if self.store is not None:
                result = await asyncio.to_thread(self.store.get_result, digest)
                cached = result is not None
            if result is None:
                self._counters["engine_jobs"] += 1
                record = await self._run_job(spec)
                if record.status != "ok" or record.result is None:
                    raise RuntimeError(record.error or f"job {record.kernel!r} failed")
                result = record.result.to_dict()
                if self.store is not None:
                    await asyncio.to_thread(self.store.put_result, digest, result)
            future.set_result(result)
        except Exception as exc:  # noqa: BLE001 - per-request error isolation
            self._counters["errors"] += 1
            future.set_exception(exc)
            future.exception()  # consumed: waiters re-raise their own copy
            return 500, error_body(exc)
        finally:
            self._inflight.pop(digest, None)
        return 200, result_envelope(
            result, digest=digest, kernel=kernel, cached=cached, coalesced=False
        )

    async def explore(self, payload: Dict) -> Tuple[int, Dict]:
        """One ``/v1/explore`` request in, ``(status, body)`` out.

        The plan expands to one ordinary analyze payload per (tile, line
        size); each runs through :meth:`analyze`, so every sub-analysis gets
        the full coalescing + write-through-store + admission treatment (a
        shed sub-analysis sheds the whole explore).  Sub-analyses run
        sequentially — the grid's cheapness comes from the parametric
        capacity axis, not fan-out — and the assembled table is built by the
        same :func:`repro.explore.build_result` the offline paths use, so
        online and offline tables are identical for identical curves.
        """
        from ..core.curve import MissCurve
        from ..explore import build_result

        self._counters["explores"] += 1
        try:
            plan = build_explore_plan(payload, default_budget=self.default_budget)
        except RequestError as exc:
            return exc.status, error_body(exc)

        curves: Dict[Tuple[int, int], MissCurve] = {}
        kernel = None
        cached = 0
        for tile, line_size, job in plan.jobs:
            status, body = await self.analyze(job)
            if status != 200:
                body = dict(body)
                body["explore_config"] = {"tile": tile, "line_size": line_size}
                return status, body
            kernel = body["meta"]["kernel"]
            cached += bool(body["meta"]["cached"])
            curve_payload = body["result"].get("miss_curve")
            if curve_payload is None:
                self._counters["errors"] += 1
                return 500, error_body(
                    f"analysis for tile={tile} line_size={line_size} returned no miss curve"
                )
            curves[(tile, line_size)] = MissCurve.from_dict(curve_payload)

        result = build_result(
            plan.space,
            lambda tile, line_size: curves[(tile, line_size)],
            kernel=kernel or "",
            dataset=plan.dataset,
        )
        table = result.to_dict()
        table.pop("elapsed_seconds", None)
        return 200, {
            "meta": {
                "kernel": kernel,
                "analyses": result.analyses,
                "cached": cached,
                "table_digest": result.table_digest(),
            },
            "explore": table,
        }

    async def lint(self, payload: Dict) -> Tuple[int, Dict]:
        """One ``/v1/lint`` request in, ``(status, verify payload)`` out.

        Lint never runs the cache model, so it bypasses coalescing, the
        store, and the engine pool entirely: the static checks plus the
        (budget-bounded) cost probe run in a worker thread and the
        :meth:`~repro.verify.VerifyReport.to_payload` JSON comes straight
        back.  Findings are data, not failures — a kernel full of errors
        still answers 200; only malformed requests (400) and internal
        faults (500) are non-OK.
        """
        from ..verify import verify_scop

        self._counters["lints"] += 1
        try:
            request = build_lint_request(payload)
        except RequestError as exc:
            return exc.status, error_body(exc)
        try:
            report = await asyncio.to_thread(
                verify_scop,
                request.scop,
                request.machine,
                dataset=request.dataset,
                budget=request.budget,
                cost=request.cost,
            )
        except Exception as exc:  # noqa: BLE001 - per-request error isolation
            self._counters["errors"] += 1
            return 500, error_body(exc)
        return 200, report.to_payload()

    def _budget_shed(self, spec: JobSpec) -> Optional[Dict]:
        """A 429 body when the request demands more work than allowed."""
        if self.max_budget is None:
            return None
        budget = spec.symbolic_work_budget
        if budget is None:
            return error_body(
                f"unlimited work budgets are not admitted; "
                f'request "budget" <= {self.max_budget}',
                shed="budget",
            )
        if budget > self.max_budget:
            return error_body(
                f"requested budget {budget} exceeds the admission ceiling "
                f"{self.max_budget}",
                shed="budget",
            )
        return None

    async def _run_job(self, spec: JobSpec):
        """Execute one engine job off the event loop (pool or inline thread)."""
        payload = (0, spec, self.store_path)
        if self.workers == 0:
            return await asyncio.to_thread(_execute_job, payload)
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, _execute_job, payload
        )

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """The ``/stats`` body: service counters plus the shared store's."""
        body = dict(self._counters)
        body["in_flight"] = len(self._inflight)
        body["uptime_seconds"] = round(time.monotonic() - self._started, 3)
        body["workers"] = self.workers
        body["max_inflight"] = self.max_inflight
        body["max_budget"] = self.max_budget
        body["store"] = self.store.stats().as_dict() if self.store is not None else None
        return body

    def healthz(self) -> Dict:
        return {"status": "ok", "in_flight": len(self._inflight)}

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
