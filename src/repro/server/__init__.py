"""Analysis-as-a-service: the cache model behind a long-running HTTP API.

The batch engine answers "analyze these N jobs once"; this package answers
"keep answering analysis requests forever, for many clients at once" — the
ROADMAP's production-service north star.  The layering keeps every analysis
semantic out of the transport:

* :mod:`repro.server.protocol` — JSON request → the same
  :class:`~repro.engine.jobs.JobSpec` offline paths build (registered
  kernels and inline ``.knl`` source), and the response envelopes;
* :mod:`repro.server.service` — :class:`AnalysisService`: request
  coalescing keyed by store digest, admission control (budget ceiling +
  concurrency cap), write-through :class:`~repro.engine.store.AnalysisStore`
  sharing, process-pool execution of the batch worker;
* :mod:`repro.server.http` — a hand-rolled asyncio HTTP/1.1 front end
  (stdlib only): ``/healthz``, ``/stats``, ``/v1/analyze``, streaming
  ``/v1/batch``;
* :mod:`repro.server.client` — blocking stdlib client used by tests, CI,
  and the bench load generator;
* :mod:`repro.server.background` — in-process server-on-a-thread harness.

Start one from the CLI with ``repro-haystack serve``; see ``docs/SERVER.md``
for the protocol reference and deployment notes (multi-process servers
share hits through the sqlite store backend).
"""

from .background import BackgroundServer
from .client import ServerClient, ServerError
from .http import HttpServer
from .protocol import RequestError, build_spec
from .service import AnalysisService

__all__ = [
    "AnalysisService",
    "BackgroundServer",
    "HttpServer",
    "RequestError",
    "ServerClient",
    "ServerError",
    "build_spec",
]
