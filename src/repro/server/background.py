"""In-process server harness: run the service on a background thread.

Tests, the bench ``serve`` workload, and scripted load tests need a live
server inside the current process — no subprocess, no fixed port, prompt
teardown.  :class:`BackgroundServer` runs the asyncio loop on a daemon
thread, exposes the bound ephemeral port once the socket is listening, and
shuts the loop down cleanly from the foreground::

    with BackgroundServer(workers=2, store_path=spec) as server:
        client = server.client()
        envelope = client.analyze({"kernel": "gemm", "budget": 2000})
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .client import ServerClient
from .http import HttpServer
from .service import AnalysisService

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """Owns a thread running ``asyncio`` with one :class:`HttpServer`.

    Keyword arguments are forwarded to
    :class:`~repro.server.service.AnalysisService`; the server always binds
    ``host`` on an ephemeral port (read :attr:`port` after :meth:`start`).
    """

    def __init__(self, *, host: str = "127.0.0.1", **service_kwargs) -> None:
        self.host = host
        self.port: Optional[int] = None
        self.service = AnalysisService(**service_kwargs)
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), name="repro-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if self.port is None:
            raise TimeoutError("server did not come up within 30s")
        return self

    async def _main(self) -> None:
        http_server = HttpServer(self.service, host=self.host, port=0)
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        try:
            await http_server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to the foreground
            self._startup_error = exc
            self._ready.set()
            return
        self.port = http_server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await http_server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def client(self, *, timeout: float = 120.0) -> ServerClient:
        if self.port is None:
            raise RuntimeError("server is not running; call start() first")
        return ServerClient(self.host, self.port, timeout=timeout)
