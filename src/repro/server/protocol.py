"""Wire format of the analysis service: JSON jobs in, JSON envelopes out.

One request describes one analysis job, mirroring what the CLI accepts:

.. code-block:: json

    {
      "kernel": "gemm",              // registered name ...
      "source": "kernel k\\n...",    // ... XOR inline .knl text
      "dataset": "mini",             // optional (kernel's first dataset)
      "machine": "paper-xeon",       // preset ...
      "levels": [32768, 262144],     // ... XOR explicit hierarchy
      "line_size": 64,               // only with "levels"
      "capacities": [64, 1024],      // optional miss-curve sweep: list or
                                     // "MIN:MAX[:POINTS]" string (repro.sweep)
      "tile": 8,                     // optional schedule tiling (>= 1; tiled
                                     // scops ship structurally, like explore)
      "budget": 2000,                // optional symbolic work budget
      "options": {"cross_check": false}
    }

``/v1/explore`` requests share the program and machine fields but carry
design-space axes instead of a single configuration — see
:func:`build_explore_plan` and ``docs/EXPLORE.md``.

:func:`build_spec` turns that into the same :class:`~repro.engine.jobs.JobSpec`
the offline paths produce — an inline ``source`` parses through the real
kernel frontend and ships its scop (structural store digest, like
``repro-haystack analyze``), a ``kernel`` name resolves through the registry.
Identical requests therefore reuse store entries written by CLI runs and
vice versa, and the server's responses are byte-identical to offline
:meth:`~repro.api.Session.analyze` payloads.

Responses wrap the :meth:`~repro.core.results.ModelResult.to_dict` payload in
an envelope whose ``meta`` block carries provenance (digest, cache/coalesce
flags); errors are ``{"error": "..."}`` with an HTTP-style status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..api.session import Session, SessionConfigError
from ..engine.jobs import JobSpec

__all__ = [
    "ExplorePlan",
    "LintRequest",
    "RequestError",
    "build_explore_plan",
    "build_lint_request",
    "build_spec",
    "error_body",
    "result_envelope",
]

#: Upper bound on accepted request bodies (1 MiB of JSON / inline source).
MAX_BODY_BYTES = 1 * 1024 * 1024

_KNOWN_FIELDS = frozenset(
    {
        "kernel",
        "source",
        "dataset",
        "machine",
        "levels",
        "line_size",
        "capacities",
        "tile",
        "budget",
        "options",
    }
)

#: ``/v1/explore`` requests: program + machine fields as above, plus the
#: design-space axes.  Every axis accepts a list of ints/size strings or one
#: ``"MIN:MAX[:POINTS]"`` sweep string — parsed by :mod:`repro.sweep`, the
#: same helper behind ``Session.sweep`` and the CLI flags.
_EXPLORE_FIELDS = frozenset(
    {
        "kernel",
        "source",
        "dataset",
        "machine",
        "levels",
        "tiles",
        "capacities",
        "line_sizes",
        "associativities",
        "budget",
        "options",
    }
)


#: ``/v1/lint`` requests: the program + machine fields of ``/v1/analyze``
#: plus the verifier's own knobs — no store, tiling, or sweep axes, because
#: lint never runs the cache model (see ``docs/LINT.md``).
_LINT_FIELDS = frozenset(
    {
        "kernel",
        "source",
        "dataset",
        "machine",
        "levels",
        "line_size",
        "budget",
        "cost",
    }
)


class RequestError(ValueError):
    """A malformed or unsatisfiable request (HTTP ``status``, default 400)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def build_spec(payload: Dict, *, default_budget: Optional[int] = None) -> Tuple[JobSpec, str]:
    """The :class:`JobSpec` one request JSON describes, plus the kernel name.

    ``default_budget`` applies when the request names none (requests may
    also pass ``"budget": 0`` for explicitly unlimited — admission control
    decides whether to accept that).  All validation errors raise
    :class:`RequestError` with a one-line message naming the offending
    field.
    """
    if not isinstance(payload, dict):
        raise RequestError(f"request body must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - _KNOWN_FIELDS
    if unknown:
        raise RequestError(
            f"unknown request field(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(_KNOWN_FIELDS))}"
        )
    kernel = payload.get("kernel")
    source = payload.get("source")
    if (kernel is None) == (source is None):
        raise RequestError('exactly one of "kernel" (registered name) or "source" (inline .knl text) is required')
    if payload.get("machine") is not None and payload.get("levels") is not None:
        raise RequestError('"machine" (preset) and "levels" (explicit hierarchy) are mutually exclusive')
    if payload.get("line_size") is not None and payload.get("levels") is None:
        raise RequestError('"line_size" only applies together with "levels"')

    session = Session()
    try:
        if payload.get("machine") is not None:
            session.machine(str(payload["machine"]))
        elif payload.get("levels") is not None:
            from ..core import CacheLevelSpec, MachineModel

            levels = payload["levels"]
            if not isinstance(levels, list) or not levels:
                raise RequestError('"levels" must be a non-empty list of cache sizes in bytes')
            line_size = payload.get("line_size", 64)
            session.machine(
                MachineModel(
                    line_size=int(line_size),
                    levels=tuple(
                        CacheLevelSpec(int(size), f"L{index + 1}")
                        for index, size in enumerate(levels)
                    ),
                )
            )
        budget = payload.get("budget", default_budget)
        if budget is not None and not isinstance(budget, int):
            raise RequestError(f'"budget" must be an integer work-unit count, got {budget!r}')
        session.budget(budget)
        capacities = payload.get("capacities")
        if capacities is not None:
            if not isinstance(capacities, (list, str)):
                raise RequestError(
                    '"capacities" must be a list of cache sizes in bytes or a '
                    '"MIN:MAX[:POINTS]" sweep string'
                )
            session.sweep(capacities=capacities)
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise RequestError('"options" must be an object of model toggles')
        if options:
            session.options(**options)
    except (SessionConfigError, ValueError, TypeError) as exc:
        raise RequestError(str(exc)) from None

    tile = payload.get("tile", 1)
    if not isinstance(tile, int) or isinstance(tile, bool) or tile < 1:
        raise RequestError(f'"tile" must be an integer >= 1, got {tile!r}')

    if source is not None:
        return _spec_from_source(session, str(source), payload.get("dataset"), tile)
    return _spec_from_kernel(session, str(kernel), payload.get("dataset"), tile)


def _spec_from_kernel(session: Session, kernel: str, dataset, tile: int = 1) -> Tuple[JobSpec, str]:
    from ..api import registry

    try:
        entry = registry.get_kernel(kernel)
    except registry.RegistryError as exc:
        raise RequestError(str(exc)) from None
    dataset = str(dataset) if dataset is not None else entry.datasets[0]
    if dataset not in entry.datasets:
        raise RequestError(
            f"kernel {kernel!r} has no dataset {dataset!r}; available: {', '.join(entry.datasets)}"
        )
    if tile > 1:
        # A tiled schedule is a different program: build it and ship the
        # scop so the structural fingerprint keys the store (exactly what
        # Session.explore does offline, so the entries are shared).
        from ..scop.schedule import tile_scop

        scop = tile_scop(entry.build(dataset), tile)
        return session.job_spec(kernel, dataset, scop=scop), kernel
    return session.job_spec(kernel, dataset), kernel


def _spec_from_source(
    session: Session, source: str, dataset, tile: int = 1
) -> Tuple[JobSpec, str]:
    """Parse inline ``.knl`` text and ship the built scop in the spec.

    The scop carries the structural fingerprint into the store digest, so
    two submissions of the same program text coalesce and share store
    entries regardless of the kernel's declared name — and an edited kernel
    under the same name can never be served a stale result.
    """
    from ..frontend import KernelParseError, parse_kernel

    try:
        program = parse_kernel(source, "<request>")
        dataset = str(dataset) if dataset is not None else next(iter(program.datasets))
        scop = program.instantiate(program.dataset_sizes(dataset))
    except KernelParseError as exc:
        raise RequestError(exc.render()) from None
    if tile > 1:
        from ..scop.schedule import tile_scop

        scop = tile_scop(scop, tile)
    return session.job_spec(program.name, dataset, scop=scop), program.name


@dataclass
class LintRequest:
    """A validated ``/v1/lint`` request, resolved to a concrete program.

    ``budget`` is the work budget the cost probe predicts against
    (``None`` = unlimited, i.e. the probe reports whether the symbolic
    pipeline completes at all); ``cost=False`` skips the probe and runs
    only the static checks.
    """

    scop: "Scop"  # noqa: F821 - imported lazily in build_lint_request
    kernel: str
    dataset: Optional[str]
    machine: "MachineModel"  # noqa: F821
    budget: Optional[int]
    cost: bool


def build_lint_request(payload: Dict) -> LintRequest:
    """Validate one ``/v1/lint`` request and resolve its program + machine.

    Mirrors :func:`build_spec`'s program fields (``kernel`` XOR ``source``,
    optional ``dataset``, ``machine`` XOR ``levels``/``line_size``) plus the
    verifier's knobs: ``budget`` (work units the cost probe predicts
    against; ``0`` = unlimited) and ``cost`` (``false`` skips the probe).
    """
    from ..verify import DEFAULT_VERIFY_BUDGET

    if not isinstance(payload, dict):
        raise RequestError(f"request body must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - _LINT_FIELDS
    if unknown:
        raise RequestError(
            f"unknown lint field(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(_LINT_FIELDS))}"
        )
    kernel = payload.get("kernel")
    source = payload.get("source")
    if (kernel is None) == (source is None):
        raise RequestError('exactly one of "kernel" (registered name) or "source" (inline .knl text) is required')
    if payload.get("machine") is not None and payload.get("levels") is not None:
        raise RequestError('"machine" (preset) and "levels" (explicit hierarchy) are mutually exclusive')
    if payload.get("line_size") is not None and payload.get("levels") is None:
        raise RequestError('"line_size" only applies together with "levels"')

    session = Session()
    try:
        if payload.get("machine") is not None:
            session.machine(str(payload["machine"]))
        elif payload.get("levels") is not None:
            levels = payload["levels"]
            if not isinstance(levels, list) or not levels:
                raise RequestError('"levels" must be a non-empty list of cache sizes in bytes')
            from ..core import CacheLevelSpec, MachineModel

            session.machine(
                MachineModel(
                    line_size=int(payload.get("line_size", 64)),
                    levels=tuple(
                        CacheLevelSpec(int(size), f"L{index + 1}")
                        for index, size in enumerate(levels)
                    ),
                )
            )
    except (SessionConfigError, ValueError, TypeError) as exc:
        raise RequestError(str(exc)) from None

    budget = payload.get("budget", DEFAULT_VERIFY_BUDGET)
    if budget is not None and (not isinstance(budget, int) or isinstance(budget, bool)):
        raise RequestError(f'"budget" must be an integer work-unit count, got {budget!r}')
    budget = budget or None  # 0 = explicitly unlimited, like the CLI's --budget 0
    cost = payload.get("cost", True)
    if not isinstance(cost, bool):
        raise RequestError(f'"cost" must be a boolean, got {cost!r}')

    dataset = payload.get("dataset")
    dataset = str(dataset) if dataset is not None else None
    if source is not None:
        from ..frontend import KernelParseError, parse_kernel

        try:
            program = parse_kernel(str(source), "<request>")
            if dataset is None:
                dataset = next(iter(program.datasets))
            scop = program.instantiate(program.dataset_sizes(dataset))
        except KernelParseError as exc:
            raise RequestError(exc.render()) from None
        name = program.name
    else:
        from ..api import registry

        try:
            entry = registry.get_kernel(str(kernel))
            if dataset is None:
                dataset = entry.datasets[0]
            scop = entry.build(dataset)
        except registry.RegistryError as exc:
            raise RequestError(str(exc)) from None
        name = entry.name
    return LintRequest(
        scop=scop,
        kernel=name,
        dataset=dataset,
        machine=session.machine_model,
        budget=budget,
        cost=cost,
    )


@dataclass
class ExplorePlan:
    """A validated ``/v1/explore`` request, expanded into analyze payloads.

    ``jobs`` holds one ordinary ``/v1/analyze`` payload per (tile, line
    size) — each with the whole capacity axis as curve breakpoints — so the
    service can drive them through its coalescing/store/admission path
    unchanged and assemble the table from the returned curves.
    """

    space: "DesignSpace"  # noqa: F821 - imported lazily below
    dataset: Optional[str]
    jobs: List[Tuple[int, int, Dict]]  #: (tile, line_size, analyze payload)


def build_explore_plan(payload: Dict, *, default_budget: Optional[int] = None) -> ExplorePlan:
    """Validate an explore request and expand its analysis jobs.

    The design-space axes parse through :mod:`repro.sweep` (lists of
    ints/size strings, or one sweep string per axis); the machine — a
    ``machine`` preset or explicit ``levels``, like ``/v1/analyze`` —
    resolves the default capacity axis (its hierarchy levels) and line size.
    """
    from ..explore import DesignSpace, DesignSpaceError

    if not isinstance(payload, dict):
        raise RequestError(f"request body must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - _EXPLORE_FIELDS
    if unknown:
        raise RequestError(
            f"unknown explore field(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(_EXPLORE_FIELDS))}"
        )
    if (payload.get("kernel") is None) == (payload.get("source") is None):
        raise RequestError('exactly one of "kernel" (registered name) or "source" (inline .knl text) is required')
    if payload.get("machine") is not None and payload.get("levels") is not None:
        raise RequestError('"machine" (preset) and "levels" (explicit hierarchy) are mutually exclusive')

    session = Session()
    try:
        if payload.get("machine") is not None:
            session.machine(str(payload["machine"]))
        elif payload.get("levels") is not None:
            levels = payload["levels"]
            if not isinstance(levels, list) or not levels:
                raise RequestError('"levels" must be a non-empty list of cache sizes in bytes')
            session.machine([int(size) for size in levels])
    except (SessionConfigError, ValueError, TypeError) as exc:
        raise RequestError(str(exc)) from None

    try:
        space = DesignSpace.from_specs(
            tiles=payload.get("tiles"),
            capacities=payload.get("capacities"),
            line_sizes=payload.get("line_sizes"),
            associativities=payload.get("associativities"),
        ).resolved(session.machine_model)
    except DesignSpaceError as exc:
        raise RequestError(str(exc)) from None

    budget = payload.get("budget", default_budget)
    if budget is not None and not isinstance(budget, int):
        raise RequestError(f'"budget" must be an integer work-unit count, got {budget!r}')

    # Resolve the effective dataset eagerly for kernel requests, exactly like
    # :meth:`repro.api.Session.explore` — the dataset is part of the table
    # payload, so leaving it implicit would fork the online/offline digests.
    dataset = payload.get("dataset")
    if payload.get("kernel") is not None and dataset is None:
        from ..api import registry

        try:
            dataset = registry.get_kernel(str(payload["kernel"])).datasets[0]
        except registry.RegistryError as exc:
            raise RequestError(str(exc)) from None

    program = {key: payload[key] for key in ("kernel", "source", "dataset") if key in payload}
    jobs: List[Tuple[int, int, Dict]] = []
    for line_size in space.line_sizes:
        for tile in space.tiles:
            job = dict(program)
            job["levels"] = [max(space.capacities)]
            job["line_size"] = line_size
            job["capacities"] = list(space.capacities)
            job["tile"] = tile
            if budget is not None:
                job["budget"] = budget
            if payload.get("options"):
                job["options"] = payload["options"]
            jobs.append((tile, line_size, job))
    return ExplorePlan(space=space, dataset=dataset, jobs=jobs)


def result_envelope(
    payload: Dict,
    *,
    digest: str,
    kernel: str,
    cached: bool,
    coalesced: bool,
) -> Dict:
    """Success response: provenance ``meta`` plus the untouched result payload.

    ``result`` is exactly :meth:`~repro.core.results.ModelResult.to_dict` —
    byte-identical across the coalesced waiters of one computation and to
    the offline analyze path reading the same store entry.
    """
    return {
        "meta": {
            "digest": digest,
            "kernel": kernel,
            "cached": cached,
            "coalesced": coalesced,
        },
        "result": payload,
    }


def error_body(message: str, **extra) -> Dict:
    body = {"error": str(message)}
    body.update(extra)
    return body
