"""Minimal asyncio HTTP/1.1 front end for :class:`AnalysisService`.

Hand-rolled on ``asyncio.start_server`` — the package has no hard runtime
dependencies, and the protocol surface is four routes of JSON over
``Content-Length`` bodies, which needs no framework:

* ``GET /healthz`` — liveness probe.
* ``GET /stats`` — service + store counters (see
  :meth:`~repro.server.service.AnalysisService.stats`).
* ``POST /v1/analyze`` — one job JSON in, one result envelope out.
* ``POST /v1/explore`` — one design-space request in, one ranked
  configuration table out (see
  :meth:`~repro.server.service.AnalysisService.explore`).
* ``POST /v1/lint`` — one kernel in, the static diagnostics + cost
  prediction of :mod:`repro.verify` out, without running the cache model
  (see :meth:`~repro.server.service.AnalysisService.lint`).
* ``POST /v1/batch`` — ``{"jobs": [...]}`` in, NDJSON out (chunked
  transfer encoding): one ``{"index": i, "status": s, "body": ...}`` line
  per job, streamed in completion order as the service finishes them.
  Duplicate jobs inside one batch coalesce exactly like duplicate
  concurrent requests do.

Every response closes the connection (``Connection: close``) — clients are
script-shaped (curl, the bundled :mod:`repro.server.client`, the bench
load generator), so connection reuse buys nothing and keeping the reader
loop trivial buys robustness.  Bodies over
:data:`~repro.server.protocol.MAX_BODY_BYTES` are refused with 413 before
they are read.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from .protocol import MAX_BODY_BYTES, error_body
from .service import AnalysisService

__all__ = ["HttpServer"]

_MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _encode(body: Dict) -> bytes:
    # sort_keys makes responses byte-deterministic: two waiters of one
    # coalesced computation serialize the same payload to the same bytes.
    return (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")


class HttpServer:
    """Bind, accept, route; all analysis semantics live in the service."""

    def __init__(self, service: AnalysisService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; rewritten to the bound port on start()
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body, status = request
            if status is not None:
                await self._respond(writer, status, error_body(_REASONS[status]))
            elif path == "/v1/batch" and method == "POST":
                await self._handle_batch(writer, body)
            else:
                response = await self._route(method, path, body)
                await self._respond(writer, *response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Optional[Dict], Optional[int]]]:
        """``(method, path, json_body, early_status)`` of one request.

        ``early_status`` short-circuits routing (oversized or malformed
        input); ``None`` as the whole return value means the client closed
        without sending a request.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            return "", "", None, 413
        except asyncio.IncompleteReadError:
            return None
        if len(head) > _MAX_HEADER_BYTES:
            return "", "", None, 413
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return "", "", None, 400
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return method, path, None, 400
        if length > MAX_BODY_BYTES:
            return method, path, None, 413
        body = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError:
                return method, path, None, 400
        return method, path, body, None

    async def _route(self, method: str, path: str, body: Optional[Dict]) -> Tuple[int, Dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, error_body("use GET /healthz")
            return 200, self.service.healthz()
        if path == "/stats":
            if method != "GET":
                return 405, error_body("use GET /stats")
            return 200, self.service.stats()
        if path == "/v1/analyze":
            if method != "POST":
                return 405, error_body("use POST /v1/analyze")
            if body is None:
                return 400, error_body("POST /v1/analyze needs a JSON job body")
            return await self.service.analyze(body)
        if path == "/v1/explore":
            if method != "POST":
                return 405, error_body("use POST /v1/explore")
            if body is None:
                return 400, error_body("POST /v1/explore needs a JSON design-space body")
            return await self.service.explore(body)
        if path == "/v1/lint":
            if method != "POST":
                return 405, error_body("use POST /v1/lint")
            if body is None:
                return 400, error_body("POST /v1/lint needs a JSON kernel body")
            return await self.service.lint(body)
        return 404, error_body(f"unknown path {path!r}")

    async def _handle_batch(self, writer: asyncio.StreamWriter, body: Optional[Dict]) -> None:
        """Stream one NDJSON line per job, in completion order."""
        jobs = (body or {}).get("jobs")
        if not isinstance(jobs, list) or not jobs:
            await self._respond(
                writer, 400, error_body('POST /v1/batch needs {"jobs": [job, ...]}')
            )
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def run_one(index: int, job) -> bytes:
            if isinstance(job, dict):
                status, response = await self.service.analyze(job)
            else:
                status, response = 400, error_body(
                    f"job {index} must be a JSON object, got {type(job).__name__}"
                )
            return _encode({"index": index, "status": status, "body": response})

        tasks = [asyncio.ensure_future(run_one(i, job)) for i, job in enumerate(jobs)]
        try:
            for next_done in asyncio.as_completed(tasks):
                line = await next_done
                writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, OSError):
            for task in tasks:
                task.cancel()

    async def _respond(self, writer: asyncio.StreamWriter, status: int, body: Dict) -> None:
        payload = _encode(body)
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
