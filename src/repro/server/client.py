"""Thin blocking client for the analysis service (stdlib ``http.client``).

Used by the test suite, the CI smoke script, and the bench ``serve``
workload's load generator — and small enough to copy into any script that
wants to talk to a running ``repro-haystack serve``.  One connection per
request (the server closes after each response anyway).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ServerClient", "ServerError"]


class ServerError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, body: Dict) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServerClient:
    def __init__(self, host: str, port: int, *, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw requests
    # ------------------------------------------------------------------
    def request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        """``(status, parsed_json_body)`` of one request; never raises on 4xx/5xx."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def _checked(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        status, parsed = self.request(method, path, body)
        if status != 200:
            raise ServerError(status, parsed)
        return parsed

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> Dict:
        return self._checked("GET", "/stats")

    def analyze(self, job: Dict) -> Dict:
        """One job through ``/v1/analyze``; raises :class:`ServerError` on shed
        or failure.  Returns the full envelope (``meta`` + ``result``)."""
        return self._checked("POST", "/v1/analyze", job)

    def explore(self, job: Dict) -> Dict:
        """One design-space request through ``/v1/explore``; raises
        :class:`ServerError` on shed or failure.  Returns the envelope
        (``meta`` with ``table_digest`` + the ``explore`` table)."""
        return self._checked("POST", "/v1/explore", job)

    def batch_iter(self, jobs: List[Dict]) -> Iterator[Dict]:
        """Stream ``/v1/batch`` NDJSON records as the server emits them.

        Yields ``{"index", "status", "body"}`` dicts in completion order;
        per-job failures arrive as records, they do not raise.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps({"jobs": jobs}).encode("utf-8")
            connection.request(
                "POST", "/v1/batch", body=payload, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            if response.status != 200:
                raise ServerError(response.status, json.loads(response.read()))
            # http.client undoes the chunked framing; lines are records.
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait_ready(self, *, timeout: float = 30.0, interval: float = 0.05) -> Dict:
        """Poll ``/healthz`` until the server answers (startup helper)."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, ValueError, ServerError) as exc:
                last = exc
                time.sleep(interval)
        raise TimeoutError(
            f"server at {self.host}:{self.port} not ready after {timeout:.0f}s: {last}"
        )
