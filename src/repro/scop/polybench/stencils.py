"""PolyBench 4.2.1 stencil kernels.

adi, fdtd-2d, heat-3d, jacobi-1d, jacobi-2d and seidel-2d.  Stencils access
neighbouring elements (``i-1``, ``i+1``) which exercises the offset handling
of the cache-line mapping (equalization in the paper's Section 3.3).
"""

from __future__ import annotations

from typing import Dict

from ..builder import ScopBuilder
from ..scop import Scop

__all__ = ["adi", "fdtd_2d", "heat_3d", "jacobi_1d", "jacobi_2d", "seidel_2d"]


def jacobi_1d(sizes: Dict[str, int]) -> Scop:
    n, tsteps = sizes["N"], sizes["TSTEPS"]
    b = ScopBuilder("jacobi-1d", context={"N": n, "TSTEPS": tsteps})
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    with b.loop("t", 0, tsteps):
        with b.loop("i", 1, n - 1):
            b.stmt(reads=[A[b.v("i") - 1], A[b.v("i")], A[b.v("i") + 1]], writes=[B[b.v("i")]])
        with b.loop("i2", 1, n - 1):
            b.stmt(reads=[B[b.v("i2") - 1], B[b.v("i2")], B[b.v("i2") + 1]], writes=[A[b.v("i2")]])
    return b.build()


def jacobi_2d(sizes: Dict[str, int]) -> Scop:
    n, tsteps = sizes["N"], sizes["TSTEPS"]
    b = ScopBuilder("jacobi-2d", context={"N": n, "TSTEPS": tsteps})
    A = b.array("A", (n, n))
    B = b.array("B", (n, n))
    with b.loop("t", 0, tsteps):
        with b.loop("i", 1, n - 1):
            with b.loop("j", 1, n - 1):
                b.stmt(
                    reads=[
                        A[b.v("i"), b.v("j")],
                        A[b.v("i"), b.v("j") - 1],
                        A[b.v("i"), b.v("j") + 1],
                        A[b.v("i") + 1, b.v("j")],
                        A[b.v("i") - 1, b.v("j")],
                    ],
                    writes=[B[b.v("i"), b.v("j")]],
                )
        with b.loop("i2", 1, n - 1):
            with b.loop("j2", 1, n - 1):
                b.stmt(
                    reads=[
                        B[b.v("i2"), b.v("j2")],
                        B[b.v("i2"), b.v("j2") - 1],
                        B[b.v("i2"), b.v("j2") + 1],
                        B[b.v("i2") + 1, b.v("j2")],
                        B[b.v("i2") - 1, b.v("j2")],
                    ],
                    writes=[A[b.v("i2"), b.v("j2")]],
                )
    return b.build()


def heat_3d(sizes: Dict[str, int]) -> Scop:
    n, tsteps = max(sizes["N"] // 4, 6), sizes["TSTEPS"]
    b = ScopBuilder("heat-3d", context={"N": n, "TSTEPS": tsteps})
    A = b.array("A", (n, n, n))
    B = b.array("B", (n, n, n))
    def stencil(src, dst, t_suffix):
        with b.loop("i" + t_suffix, 1, n - 1):
            with b.loop("j" + t_suffix, 1, n - 1):
                with b.loop("k" + t_suffix, 1, n - 1):
                    i, j, k = b.v("i" + t_suffix), b.v("j" + t_suffix), b.v("k" + t_suffix)
                    b.stmt(
                        reads=[
                            src[i + 1, j, k],
                            src[i, j, k],
                            src[i - 1, j, k],
                            src[i, j + 1, k],
                            src[i, j - 1, k],
                            src[i, j, k + 1],
                            src[i, j, k - 1],
                        ],
                        writes=[dst[i, j, k]],
                    )

    with b.loop("t", 0, tsteps):
        stencil(A, B, "")
        stencil(B, A, "2")
    return b.build()


def fdtd_2d(sizes: Dict[str, int]) -> Scop:
    nx, ny, tmax = sizes["NX"], sizes["NY"], sizes["TMAX"]
    b = ScopBuilder("fdtd-2d", context={"NX": nx, "NY": ny, "TMAX": tmax})
    ex = b.array("ex", (nx, ny))
    ey = b.array("ey", (nx, ny))
    hz = b.array("hz", (nx, ny))
    fict = b.array("_fict_", (tmax,))
    with b.loop("t", 0, tmax):
        with b.loop("j", 0, ny):
            b.stmt(reads=[fict[b.v("t")]], writes=[ey[0, b.v("j")]])
        with b.loop("i", 1, nx):
            with b.loop("j2", 0, ny):
                b.stmt(
                    reads=[ey[b.v("i"), b.v("j2")], hz[b.v("i"), b.v("j2")], hz[b.v("i") - 1, b.v("j2")]],
                    writes=[ey[b.v("i"), b.v("j2")]],
                )
        with b.loop("i2", 0, nx):
            with b.loop("j3", 1, ny):
                b.stmt(
                    reads=[ex[b.v("i2"), b.v("j3")], hz[b.v("i2"), b.v("j3")], hz[b.v("i2"), b.v("j3") - 1]],
                    writes=[ex[b.v("i2"), b.v("j3")]],
                )
        with b.loop("i3", 0, nx - 1):
            with b.loop("j4", 0, ny - 1):
                b.stmt(
                    reads=[
                        hz[b.v("i3"), b.v("j4")],
                        ex[b.v("i3"), b.v("j4") + 1],
                        ex[b.v("i3"), b.v("j4")],
                        ey[b.v("i3") + 1, b.v("j4")],
                        ey[b.v("i3"), b.v("j4")],
                    ],
                    writes=[hz[b.v("i3"), b.v("j4")]],
                )
    return b.build()


def seidel_2d(sizes: Dict[str, int]) -> Scop:
    n, tsteps = sizes["N"], sizes["TSTEPS"]
    b = ScopBuilder("seidel-2d", context={"N": n, "TSTEPS": tsteps})
    A = b.array("A", (n, n))
    with b.loop("t", 0, tsteps):
        with b.loop("i", 1, n - 1):
            with b.loop("j", 1, n - 1):
                b.stmt(
                    reads=[
                        A[b.v("i") - 1, b.v("j") - 1],
                        A[b.v("i") - 1, b.v("j")],
                        A[b.v("i") - 1, b.v("j") + 1],
                        A[b.v("i"), b.v("j") - 1],
                        A[b.v("i"), b.v("j")],
                        A[b.v("i"), b.v("j") + 1],
                        A[b.v("i") + 1, b.v("j") - 1],
                        A[b.v("i") + 1, b.v("j")],
                        A[b.v("i") + 1, b.v("j") + 1],
                    ],
                    writes=[A[b.v("i"), b.v("j")]],
                )
    return b.build()


def adi(sizes: Dict[str, int]) -> Scop:
    """Alternating direction implicit solver (column and row sweeps)."""
    n, tsteps = sizes["N"], sizes["TSTEPS"]
    b = ScopBuilder("adi", context={"N": n, "TSTEPS": tsteps})
    u = b.array("u", (n, n))
    v = b.array("v", (n, n))
    p = b.array("p", (n, n))
    q = b.array("q", (n, n))
    with b.loop("t", 0, tsteps):
        # Column sweep.
        with b.loop("i", 1, n - 1):
            b.stmt(writes=[v[0, b.v("i")], p[b.v("i"), 0], q[b.v("i"), 0]])
            with b.loop("j", 1, n - 1):
                b.stmt(
                    reads=[
                        p[b.v("i"), b.v("j") - 1],
                        q[b.v("i"), b.v("j") - 1],
                        u[b.v("j"), b.v("i") - 1],
                        u[b.v("j"), b.v("i")],
                        u[b.v("j"), b.v("i") + 1],
                    ],
                    writes=[p[b.v("i"), b.v("j")], q[b.v("i"), b.v("j")]],
                )
            b.stmt(writes=[v[n - 1, b.v("i")]])
            with b.loop("j2", 1, n - 1):
                b.stmt(
                    reads=[p[b.v("i"), n - 1 - b.v("j2")], v[n - b.v("j2"), b.v("i")], q[b.v("i"), n - 1 - b.v("j2")]],
                    writes=[v[n - 1 - b.v("j2"), b.v("i")]],
                )
        # Row sweep.
        with b.loop("i2", 1, n - 1):
            b.stmt(writes=[u[b.v("i2"), 0], p[b.v("i2"), 0], q[b.v("i2"), 0]])
            with b.loop("j3", 1, n - 1):
                b.stmt(
                    reads=[
                        p[b.v("i2"), b.v("j3") - 1],
                        q[b.v("i2"), b.v("j3") - 1],
                        v[b.v("i2") - 1, b.v("j3")],
                        v[b.v("i2"), b.v("j3")],
                        v[b.v("i2") + 1, b.v("j3")],
                    ],
                    writes=[p[b.v("i2"), b.v("j3")], q[b.v("i2"), b.v("j3")]],
                )
            b.stmt(writes=[u[b.v("i2"), n - 1]])
            with b.loop("j4", 1, n - 1):
                b.stmt(
                    reads=[p[b.v("i2"), n - 1 - b.v("j4")], u[b.v("i2"), n - b.v("j4")], q[b.v("i2"), n - 1 - b.v("j4")]],
                    writes=[u[b.v("i2"), n - 1 - b.v("j4")]],
                )
    return b.build()
