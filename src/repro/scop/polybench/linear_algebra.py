"""PolyBench 4.2.1 linear-algebra kernels (BLAS routines and kernels).

Each function builds the static control program of the corresponding
PolyBench kernel: the loop structure, statement schedules and array accesses
mirror the reference C sources.  Scalar temporaries (``alpha``, ``beta``,
``temp2``...) are assumed to live in registers and therefore produce no memory
accesses, exactly like the paper's model (Section 2.2).
"""

from __future__ import annotations

from typing import Dict

from ..builder import ScopBuilder
from ..scop import Scop

__all__ = [
    "gemm",
    "gemver",
    "gesummv",
    "symm",
    "syr2k",
    "syrk",
    "trmm",
    "two_mm",
    "three_mm",
    "atax",
    "bicg",
    "doitgen",
    "mvt",
]


def gemm(sizes: Dict[str, int]) -> Scop:
    """C = alpha*A*B + beta*C."""
    ni, nj, nk = sizes["NI"], sizes["NJ"], sizes["NK"]
    b = ScopBuilder("gemm", context={"NI": ni, "NJ": nj, "NK": nk})
    C = b.array("C", (ni, nj))
    A = b.array("A", (ni, nk))
    B = b.array("B", (nk, nj))
    with b.loop("i", 0, ni):
        with b.loop("j", 0, nj):
            b.stmt(reads=[C[b.v("i"), b.v("j")]], writes=[C[b.v("i"), b.v("j")]])
        with b.loop("k", 0, nk):
            with b.loop("j", 0, nj):
                b.stmt(
                    reads=[A[b.v("i"), b.v("k")], B[b.v("k"), b.v("j")], C[b.v("i"), b.v("j")]],
                    writes=[C[b.v("i"), b.v("j")]],
                )
    return b.build()


def gemver(sizes: Dict[str, int]) -> Scop:
    """Multiple matrix-vector products and rank-1 updates."""
    n = sizes["N"]
    b = ScopBuilder("gemver", context={"N": n})
    A = b.array("A", (n, n))
    u1 = b.array("u1", (n,))
    v1 = b.array("v1", (n,))
    u2 = b.array("u2", (n,))
    v2 = b.array("v2", (n,))
    x = b.array("x", (n,))
    y = b.array("y", (n,))
    z = b.array("z", (n,))
    w = b.array("w", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, n):
            b.stmt(
                reads=[A[b.v("i"), b.v("j")], u1[b.v("i")], v1[b.v("j")], u2[b.v("i")], v2[b.v("j")]],
                writes=[A[b.v("i"), b.v("j")]],
            )
    with b.loop("i2", 0, n):
        with b.loop("j2", 0, n):
            b.stmt(
                reads=[x[b.v("i2")], A[b.v("j2"), b.v("i2")], y[b.v("j2")]],
                writes=[x[b.v("i2")]],
            )
    with b.loop("i3", 0, n):
        b.stmt(reads=[x[b.v("i3")], z[b.v("i3")]], writes=[x[b.v("i3")]])
    with b.loop("i4", 0, n):
        with b.loop("j4", 0, n):
            b.stmt(
                reads=[w[b.v("i4")], A[b.v("i4"), b.v("j4")], x[b.v("j4")]],
                writes=[w[b.v("i4")]],
            )
    return b.build()


def gesummv(sizes: Dict[str, int]) -> Scop:
    """y = alpha*A*x + beta*B*x."""
    n = sizes["N"]
    b = ScopBuilder("gesummv", context={"N": n})
    A = b.array("A", (n, n))
    B = b.array("B", (n, n))
    tmp = b.array("tmp", (n,))
    x = b.array("x", (n,))
    y = b.array("y", (n,))
    with b.loop("i", 0, n):
        b.stmt(writes=[tmp[b.v("i")], y[b.v("i")]])
        with b.loop("j", 0, n):
            b.stmt(
                reads=[A[b.v("i"), b.v("j")], x[b.v("j")], tmp[b.v("i")], B[b.v("i"), b.v("j")], y[b.v("i")]],
                writes=[tmp[b.v("i")], y[b.v("i")]],
            )
        b.stmt(reads=[tmp[b.v("i")], y[b.v("i")]], writes=[y[b.v("i")]])
    return b.build()


def symm(sizes: Dict[str, int]) -> Scop:
    """Symmetric matrix multiply C = alpha*A*B + beta*C (A symmetric)."""
    m, n = sizes["M"], sizes["N"]
    b = ScopBuilder("symm", context={"M": m, "N": n})
    C = b.array("C", (m, n))
    A = b.array("A", (m, m))
    B = b.array("B", (m, n))
    with b.loop("i", 0, m):
        with b.loop("j", 0, n):
            with b.loop("k", 0, b.v("i")):
                b.stmt(
                    reads=[C[b.v("k"), b.v("j")], B[b.v("i"), b.v("j")], A[b.v("i"), b.v("k")], B[b.v("k"), b.v("j")]],
                    writes=[C[b.v("k"), b.v("j")]],
                )
            b.stmt(
                reads=[C[b.v("i"), b.v("j")], B[b.v("i"), b.v("j")], A[b.v("i"), b.v("i")]],
                writes=[C[b.v("i"), b.v("j")]],
            )
    return b.build()


def syrk(sizes: Dict[str, int]) -> Scop:
    """Symmetric rank-k update C = alpha*A*A^T + beta*C (lower triangle)."""
    n, m = sizes["N"], sizes["M"]
    b = ScopBuilder("syrk", context={"N": n, "M": m})
    C = b.array("C", (n, n))
    A = b.array("A", (n, m))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i"), upper_inclusive=True):
            b.stmt(reads=[C[b.v("i"), b.v("j")]], writes=[C[b.v("i"), b.v("j")]])
        with b.loop("k", 0, m):
            with b.loop("j2", 0, b.v("i"), upper_inclusive=True):
                b.stmt(
                    reads=[A[b.v("i"), b.v("k")], A[b.v("j2"), b.v("k")], C[b.v("i"), b.v("j2")]],
                    writes=[C[b.v("i"), b.v("j2")]],
                )
    return b.build()


def syr2k(sizes: Dict[str, int]) -> Scop:
    """Symmetric rank-2k update C = alpha*(A*B^T + B*A^T) + beta*C."""
    n, m = sizes["N"], sizes["M"]
    b = ScopBuilder("syr2k", context={"N": n, "M": m})
    C = b.array("C", (n, n))
    A = b.array("A", (n, m))
    B = b.array("B", (n, m))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i"), upper_inclusive=True):
            b.stmt(reads=[C[b.v("i"), b.v("j")]], writes=[C[b.v("i"), b.v("j")]])
        with b.loop("k", 0, m):
            with b.loop("j2", 0, b.v("i"), upper_inclusive=True):
                b.stmt(
                    reads=[
                        A[b.v("j2"), b.v("k")],
                        B[b.v("i"), b.v("k")],
                        B[b.v("j2"), b.v("k")],
                        A[b.v("i"), b.v("k")],
                        C[b.v("i"), b.v("j2")],
                    ],
                    writes=[C[b.v("i"), b.v("j2")]],
                )
    return b.build()


def trmm(sizes: Dict[str, int]) -> Scop:
    """Triangular matrix multiply B = alpha*A^T*B."""
    m, n = sizes["M"], sizes["N"]
    b = ScopBuilder("trmm", context={"M": m, "N": n})
    A = b.array("A", (m, m))
    B = b.array("B", (m, n))
    with b.loop("i", 0, m):
        with b.loop("j", 0, n):
            with b.loop("k", b.v("i") + 1, m):
                b.stmt(
                    reads=[A[b.v("k"), b.v("i")], B[b.v("k"), b.v("j")], B[b.v("i"), b.v("j")]],
                    writes=[B[b.v("i"), b.v("j")]],
                )
            b.stmt(reads=[B[b.v("i"), b.v("j")]], writes=[B[b.v("i"), b.v("j")]])
    return b.build()


def two_mm(sizes: Dict[str, int]) -> Scop:
    """2mm: D = alpha*A*B*C + beta*D."""
    ni, nj, nk, nl = sizes["NI"], sizes["NJ"], sizes["NK"], sizes["NL"]
    b = ScopBuilder("2mm", context={"NI": ni, "NJ": nj, "NK": nk, "NL": nl})
    tmp = b.array("tmp", (ni, nj))
    A = b.array("A", (ni, nk))
    B = b.array("B", (nk, nj))
    C = b.array("C", (nj, nl))
    D = b.array("D", (ni, nl))
    with b.loop("i", 0, ni):
        with b.loop("j", 0, nj):
            b.stmt(writes=[tmp[b.v("i"), b.v("j")]])
            with b.loop("k", 0, nk):
                b.stmt(
                    reads=[A[b.v("i"), b.v("k")], B[b.v("k"), b.v("j")], tmp[b.v("i"), b.v("j")]],
                    writes=[tmp[b.v("i"), b.v("j")]],
                )
    with b.loop("i2", 0, ni):
        with b.loop("j2", 0, nl):
            b.stmt(reads=[D[b.v("i2"), b.v("j2")]], writes=[D[b.v("i2"), b.v("j2")]])
            with b.loop("k2", 0, nj):
                b.stmt(
                    reads=[tmp[b.v("i2"), b.v("k2")], C[b.v("k2"), b.v("j2")], D[b.v("i2"), b.v("j2")]],
                    writes=[D[b.v("i2"), b.v("j2")]],
                )
    return b.build()


def three_mm(sizes: Dict[str, int]) -> Scop:
    """3mm: G = (A*B) * (C*D)."""
    ni, nj, nk = sizes["NI"], sizes["NJ"], sizes["NK"]
    nl, nm = sizes["NL"], sizes["NM"]
    b = ScopBuilder("3mm", context={"NI": ni, "NJ": nj, "NK": nk, "NL": nl, "NM": nm})
    E = b.array("E", (ni, nj))
    A = b.array("A", (ni, nk))
    B = b.array("B", (nk, nj))
    F = b.array("F", (nj, nl))
    C = b.array("C", (nj, nm))
    D = b.array("D", (nm, nl))
    G = b.array("G", (ni, nl))
    with b.loop("i", 0, ni):
        with b.loop("j", 0, nj):
            b.stmt(writes=[E[b.v("i"), b.v("j")]])
            with b.loop("k", 0, nk):
                b.stmt(
                    reads=[A[b.v("i"), b.v("k")], B[b.v("k"), b.v("j")], E[b.v("i"), b.v("j")]],
                    writes=[E[b.v("i"), b.v("j")]],
                )
    with b.loop("i2", 0, nj):
        with b.loop("j2", 0, nl):
            b.stmt(writes=[F[b.v("i2"), b.v("j2")]])
            with b.loop("k2", 0, nm):
                b.stmt(
                    reads=[C[b.v("i2"), b.v("k2")], D[b.v("k2"), b.v("j2")], F[b.v("i2"), b.v("j2")]],
                    writes=[F[b.v("i2"), b.v("j2")]],
                )
    with b.loop("i3", 0, ni):
        with b.loop("j3", 0, nl):
            b.stmt(writes=[G[b.v("i3"), b.v("j3")]])
            with b.loop("k3", 0, nj):
                b.stmt(
                    reads=[E[b.v("i3"), b.v("k3")], F[b.v("k3"), b.v("j3")], G[b.v("i3"), b.v("j3")]],
                    writes=[G[b.v("i3"), b.v("j3")]],
                )
    return b.build()


def atax(sizes: Dict[str, int]) -> Scop:
    """y = A^T * (A*x)."""
    m, n = sizes["M"], sizes["N"]
    b = ScopBuilder("atax", context={"M": m, "N": n})
    A = b.array("A", (m, n))
    x = b.array("x", (n,))
    y = b.array("y", (n,))
    tmp = b.array("tmp", (m,))
    with b.loop("i0", 0, n):
        b.stmt(writes=[y[b.v("i0")]])
    with b.loop("i", 0, m):
        b.stmt(writes=[tmp[b.v("i")]])
        with b.loop("j", 0, n):
            b.stmt(
                reads=[A[b.v("i"), b.v("j")], x[b.v("j")], tmp[b.v("i")]],
                writes=[tmp[b.v("i")]],
            )
        with b.loop("j2", 0, n):
            b.stmt(
                reads=[y[b.v("j2")], A[b.v("i"), b.v("j2")], tmp[b.v("i")]],
                writes=[y[b.v("j2")]],
            )
    return b.build()


def bicg(sizes: Dict[str, int]) -> Scop:
    """BiCG sub-kernel: s = A^T*r, q = A*p."""
    m, n = sizes["M"], sizes["N"]
    b = ScopBuilder("bicg", context={"M": m, "N": n})
    A = b.array("A", (n, m))
    s = b.array("s", (m,))
    q = b.array("q", (n,))
    p = b.array("p", (m,))
    r = b.array("r", (n,))
    with b.loop("i0", 0, m):
        b.stmt(writes=[s[b.v("i0")]])
    with b.loop("i", 0, n):
        b.stmt(writes=[q[b.v("i")]])
        with b.loop("j", 0, m):
            b.stmt(
                reads=[s[b.v("j")], r[b.v("i")], A[b.v("i"), b.v("j")]],
                writes=[s[b.v("j")]],
            )
            b.stmt(
                reads=[q[b.v("i")], A[b.v("i"), b.v("j")], p[b.v("j")]],
                writes=[q[b.v("i")]],
            )
    return b.build()


def doitgen(sizes: Dict[str, int]) -> Scop:
    """Multi-resolution analysis kernel."""
    nr, nq, np_ = sizes["NR"], sizes["NQ"], sizes["NP"]
    b = ScopBuilder("doitgen", context={"NR": nr, "NQ": nq, "NP": np_})
    A = b.array("A", (nr, nq, np_))
    C4 = b.array("C4", (np_, np_))
    sum_ = b.array("sum", (np_,))
    with b.loop("r", 0, nr):
        with b.loop("q", 0, nq):
            with b.loop("p", 0, np_):
                b.stmt(writes=[sum_[b.v("p")]])
                with b.loop("s", 0, np_):
                    b.stmt(
                        reads=[A[b.v("r"), b.v("q"), b.v("s")], C4[b.v("s"), b.v("p")], sum_[b.v("p")]],
                        writes=[sum_[b.v("p")]],
                    )
            with b.loop("p2", 0, np_):
                b.stmt(reads=[sum_[b.v("p2")]], writes=[A[b.v("r"), b.v("q"), b.v("p2")]])
    return b.build()


def mvt(sizes: Dict[str, int]) -> Scop:
    """x1 = x1 + A*y1; x2 = x2 + A^T*y2."""
    n = sizes["N"]
    b = ScopBuilder("mvt", context={"N": n})
    A = b.array("A", (n, n))
    x1 = b.array("x1", (n,))
    x2 = b.array("x2", (n,))
    y1 = b.array("y1", (n,))
    y2 = b.array("y2", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, n):
            b.stmt(
                reads=[x1[b.v("i")], A[b.v("i"), b.v("j")], y1[b.v("j")]],
                writes=[x1[b.v("i")]],
            )
    with b.loop("i2", 0, n):
        with b.loop("j2", 0, n):
            b.stmt(
                reads=[x2[b.v("i2")], A[b.v("j2"), b.v("i2")], y2[b.v("j2")]],
                writes=[x2[b.v("i2")]],
            )
    return b.build()
