"""Problem-size presets for the PolyBench kernel suite.

PolyBench defines MINI/SMALL/MEDIUM/LARGE/EXTRALARGE datasets; the paper's
evaluation uses LARGE (Figures 9-11, 13-16) and MEDIUM/LARGE/EXTRALARGE for
the problem-size scaling study (Figure 12).  A pure-Python trace simulator
cannot enumerate the ~10^9 accesses of the original LARGE configuration, so
the presets below are scaled down while preserving the ratios between the
classes (roughly one order of magnitude more work per step), which keeps the
shape of the scaling experiments intact (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["DATASETS", "kernel_sizes", "dataset_names"]

#: Scaled problem sizes per dataset class.  Keys follow the PolyBench
#: parameter names of each kernel.
DATASETS: Dict[str, Dict[str, Dict[str, int]]] = {
    "mini": {
        "default": {"N": 12, "M": 14, "NI": 10, "NJ": 12, "NK": 14, "NL": 16, "NM": 18,
                    "NQ": 6, "NR": 6, "NP": 8, "TSTEPS": 4, "TMAX": 4, "NX": 12, "NY": 14, "W": 12, "H": 14},
    },
    "small": {
        "default": {"N": 28, "M": 32, "NI": 24, "NJ": 26, "NK": 28, "NL": 30, "NM": 32,
                    "NQ": 10, "NR": 10, "NP": 12, "TSTEPS": 8, "TMAX": 8, "NX": 28, "NY": 32, "W": 28, "H": 32},
    },
    "medium": {
        "default": {"N": 72, "M": 80, "NI": 60, "NJ": 64, "NK": 68, "NL": 72, "NM": 76,
                    "NQ": 20, "NR": 20, "NP": 24, "TSTEPS": 16, "TMAX": 16, "NX": 72, "NY": 80, "W": 72, "H": 80},
    },
    "large": {
        "default": {"N": 200, "M": 220, "NI": 180, "NJ": 190, "NK": 200, "NL": 210, "NM": 220,
                    "NQ": 40, "NR": 40, "NP": 50, "TSTEPS": 40, "TMAX": 40, "NX": 200, "NY": 220, "W": 200, "H": 220},
    },
    "extralarge": {
        "default": {"N": 600, "M": 640, "NI": 560, "NJ": 580, "NK": 600, "NL": 620, "NM": 640,
                    "NQ": 80, "NR": 80, "NP": 100, "TSTEPS": 100, "TMAX": 100, "NX": 600, "NY": 640, "W": 600, "H": 640},
    },
}


def dataset_names() -> list:
    return list(DATASETS.keys())


def kernel_sizes(dataset: str, kernel: str = "default") -> Dict[str, int]:
    """Return the size parameters of ``kernel`` for the given dataset class."""
    if dataset not in DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; choose from {sorted(DATASETS)}")
    table = DATASETS[dataset]
    return dict(table.get(kernel, table["default"]))
