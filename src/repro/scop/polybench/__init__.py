"""The PolyBench 4.2.1 kernel suite expressed as static control programs.

The registry maps kernel names (as used in the paper's figures) to builder
functions; :func:`build_kernel` instantiates a kernel for one of the scaled
dataset classes defined in :mod:`repro.scop.polybench.sizes`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..scop import Scop
from . import datamining, linear_algebra, medley, solvers, stencils
from .sizes import DATASETS, dataset_names, kernel_sizes

__all__ = [
    "KERNELS",
    "EXPENSIVE_KERNELS",
    "FAST_KERNELS",
    "build_kernel",
    "kernel_names",
    "dataset_names",
    "kernel_sizes",
]

#: Kernel registry: paper name -> builder(sizes) -> Scop.
KERNELS: Dict[str, Callable[[Dict[str, int]], Scop]] = {
    "2mm": linear_algebra.two_mm,
    "3mm": linear_algebra.three_mm,
    "adi": stencils.adi,
    "atax": linear_algebra.atax,
    "bicg": linear_algebra.bicg,
    "cholesky": solvers.cholesky,
    "correlation": datamining.correlation,
    "covariance": datamining.covariance,
    "deriche": medley.deriche,
    "doitgen": linear_algebra.doitgen,
    "durbin": solvers.durbin,
    "fdtd-2d": stencils.fdtd_2d,
    "floyd-warshall": medley.floyd_warshall,
    "gemm": linear_algebra.gemm,
    "gemver": linear_algebra.gemver,
    "gesummv": linear_algebra.gesummv,
    "gramschmidt": solvers.gramschmidt,
    "heat-3d": stencils.heat_3d,
    "jacobi-1d": stencils.jacobi_1d,
    "jacobi-2d": stencils.jacobi_2d,
    "lu": solvers.lu,
    "ludcmp": solvers.ludcmp,
    "mvt": linear_algebra.mvt,
    "nussinov": medley.nussinov,
    "seidel-2d": stencils.seidel_2d,
    "symm": linear_algebra.symm,
    "syr2k": linear_algebra.syr2k,
    "syrk": linear_algebra.syrk,
    "trisolv": solvers.trisolv,
    "trmm": linear_algebra.trmm,
}

#: Kernels the paper identifies as cheap to analyse (Figure 11, left part).
FAST_KERNELS: List[str] = [
    "jacobi-1d",
    "gemm",
    "gesummv",
    "bicg",
    "atax",
    "trmm",
    "trisolv",
    "syrk",
    "2mm",
    "mvt",
]

#: Kernels with non-affine stack distances / higher analysis cost
#: (Figure 11, right part; Table 1).
EXPENSIVE_KERNELS: List[str] = [
    "cholesky",
    "lu",
    "ludcmp",
    "nussinov",
    "adi",
    "heat-3d",
    "floyd-warshall",
    "correlation",
    "covariance",
    "deriche",
]


def _register_suite() -> None:
    """Publish the PolyBench suite in the :mod:`repro.api` registry.

    The registry (not this dict) is the public lookup surface; ``KERNELS``
    stays as the authoritative builder table the registration draws from.
    """
    from functools import partial

    from ...api.registry import KernelEntry, add_kernel

    for name, builder in KERNELS.items():
        add_kernel(
            KernelEntry(
                name=name,
                builder=builder,
                datasets=tuple(dataset_names()),
                sizes_for=partial(kernel_sizes, kernel=name),
                source="builtin",
            ),
            replace=True,
        )


_register_suite()


def kernel_names() -> List[str]:
    return sorted(KERNELS)


def build_kernel(name: str, dataset: str = "small", *, overrides: Optional[Dict[str, int]] = None) -> Scop:
    """Build the named kernel for a dataset class (mini/small/medium/...).

    ``overrides`` replaces individual size parameters, which the benchmarks
    use for fine-grained problem-size sweeps (Figure 1).
    """
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; available: {', '.join(kernel_names())}")
    sizes = kernel_sizes(dataset, name)
    if overrides:
        sizes.update(overrides)
    return KERNELS[name](sizes)
