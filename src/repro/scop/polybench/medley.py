"""PolyBench 4.2.1 "medley" kernels: deriche, floyd-warshall, nussinov.

Reversed loops of the original sources (``for (i = N-1; i >= 0; i--)``) are
normalised to increasing loops by substituting the loop variable, which keeps
the iteration domains affine without changing the access order semantics.
"""

from __future__ import annotations

from typing import Dict

from ..builder import ScopBuilder
from ..scop import Scop

__all__ = ["deriche", "floyd_warshall", "nussinov"]


def floyd_warshall(sizes: Dict[str, int]) -> Scop:
    n = sizes["N"]
    b = ScopBuilder("floyd-warshall", context={"N": n})
    path = b.array("path", (n, n))
    with b.loop("k", 0, n):
        with b.loop("i", 0, n):
            with b.loop("j", 0, n):
                b.stmt(
                    reads=[path[b.v("i"), b.v("j")], path[b.v("i"), b.v("k")], path[b.v("k"), b.v("j")]],
                    writes=[path[b.v("i"), b.v("j")]],
                )
    return b.build()


def nussinov(sizes: Dict[str, int]) -> Scop:
    """RNA secondary-structure prediction (dynamic programming).

    The original iterates ``i`` from ``N-1`` down to ``0``; the builder loop
    uses ``ii = N-1-i`` so all loops increase.
    """
    n = sizes["N"]
    b = ScopBuilder("nussinov", context={"N": n})
    table = b.array("table", (n, n))
    seq = b.array("seq", (n,))
    with b.loop("ii", 0, n):
        # i = n - 1 - ii
        with b.loop("j", n - b.v("ii"), n):
            i = n - 1 - b.v("ii")
            j = b.v("j")
            b.stmt(reads=[table[i, j], table[i, j - 1]], writes=[table[i, j]])
            b.stmt(reads=[table[i, j], table[i + 1, j]], writes=[table[i, j]])
            b.stmt(
                reads=[table[i, j], table[i + 1, j - 1], seq[i], seq[j]],
                writes=[table[i, j]],
            )
            with b.loop("k", i + 1, j):
                b.stmt(
                    reads=[table[i, j], table[i, b.v("k")], table[b.v("k") + 1, j]],
                    writes=[table[i, j]],
                )
    return b.build()


def deriche(sizes: Dict[str, int]) -> Scop:
    """Deriche recursive edge-detection filter.

    The horizontal and vertical passes run once forward and once backward
    over the image; backward passes are normalised to increasing loops.
    """
    w, h = sizes["W"], sizes["H"]
    b = ScopBuilder("deriche", context={"W": w, "H": h})
    img_in = b.array("imgIn", (w, h))
    img_out = b.array("imgOut", (w, h))
    y1 = b.array("y1", (w, h))
    y2 = b.array("y2", (w, h))
    # Horizontal forward pass (scalar recurrences ym1/ym2/xm1 in registers).
    with b.loop("i", 0, w):
        with b.loop("j", 0, h):
            b.stmt(reads=[img_in[b.v("i"), b.v("j")]], writes=[y1[b.v("i"), b.v("j")]])
    # Horizontal backward pass: j runs h-1 .. 0, normalised via jj = h-1-j.
    with b.loop("i2", 0, w):
        with b.loop("jj", 0, h):
            b.stmt(reads=[img_in[b.v("i2"), h - 1 - b.v("jj")]], writes=[y2[b.v("i2"), h - 1 - b.v("jj")]])
    with b.loop("i3", 0, w):
        with b.loop("j3", 0, h):
            b.stmt(reads=[y1[b.v("i3"), b.v("j3")], y2[b.v("i3"), b.v("j3")]], writes=[img_out[b.v("i3"), b.v("j3")]])
    # Vertical forward pass.
    with b.loop("j4", 0, h):
        with b.loop("i4", 0, w):
            b.stmt(reads=[img_out[b.v("i4"), b.v("j4")]], writes=[y1[b.v("i4"), b.v("j4")]])
    # Vertical backward pass: i runs w-1 .. 0.
    with b.loop("j5", 0, h):
        with b.loop("ii", 0, w):
            b.stmt(reads=[img_out[w - 1 - b.v("ii"), b.v("j5")]], writes=[y2[w - 1 - b.v("ii"), b.v("j5")]])
    with b.loop("i6", 0, w):
        with b.loop("j6", 0, h):
            b.stmt(reads=[y1[b.v("i6"), b.v("j6")], y2[b.v("i6"), b.v("j6")]], writes=[img_out[b.v("i6"), b.v("j6")]])
    return b.build()
