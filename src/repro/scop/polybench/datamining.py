"""PolyBench 4.2.1 data-mining kernels: correlation and covariance."""

from __future__ import annotations

from typing import Dict

from ..builder import ScopBuilder
from ..scop import Scop

__all__ = ["correlation", "covariance"]


def covariance(sizes: Dict[str, int]) -> Scop:
    m, n = sizes["M"], sizes["N"]
    b = ScopBuilder("covariance", context={"M": m, "N": n})
    data = b.array("data", (n, m))
    mean = b.array("mean", (m,))
    cov = b.array("cov", (m, m))
    with b.loop("j", 0, m):
        b.stmt(writes=[mean[b.v("j")]])
        with b.loop("i", 0, n):
            b.stmt(reads=[data[b.v("i"), b.v("j")], mean[b.v("j")]], writes=[mean[b.v("j")]])
        b.stmt(reads=[mean[b.v("j")]], writes=[mean[b.v("j")]])
    with b.loop("i2", 0, n):
        with b.loop("j2", 0, m):
            b.stmt(reads=[data[b.v("i2"), b.v("j2")], mean[b.v("j2")]], writes=[data[b.v("i2"), b.v("j2")]])
    with b.loop("i3", 0, m):
        with b.loop("j3", b.v("i3"), m):
            b.stmt(writes=[cov[b.v("i3"), b.v("j3")]])
            with b.loop("k", 0, n):
                b.stmt(
                    reads=[data[b.v("k"), b.v("i3")], data[b.v("k"), b.v("j3")], cov[b.v("i3"), b.v("j3")]],
                    writes=[cov[b.v("i3"), b.v("j3")]],
                )
            b.stmt(reads=[cov[b.v("i3"), b.v("j3")]], writes=[cov[b.v("i3"), b.v("j3")], cov[b.v("j3"), b.v("i3")]])
    return b.build()


def correlation(sizes: Dict[str, int]) -> Scop:
    m, n = sizes["M"], sizes["N"]
    b = ScopBuilder("correlation", context={"M": m, "N": n})
    data = b.array("data", (n, m))
    mean = b.array("mean", (m,))
    stddev = b.array("stddev", (m,))
    corr = b.array("corr", (m, m))
    with b.loop("j", 0, m):
        b.stmt(writes=[mean[b.v("j")]])
        with b.loop("i", 0, n):
            b.stmt(reads=[data[b.v("i"), b.v("j")], mean[b.v("j")]], writes=[mean[b.v("j")]])
        b.stmt(reads=[mean[b.v("j")]], writes=[mean[b.v("j")]])
    with b.loop("j2", 0, m):
        b.stmt(writes=[stddev[b.v("j2")]])
        with b.loop("i2", 0, n):
            b.stmt(
                reads=[data[b.v("i2"), b.v("j2")], mean[b.v("j2")], stddev[b.v("j2")]],
                writes=[stddev[b.v("j2")]],
            )
        b.stmt(reads=[stddev[b.v("j2")]], writes=[stddev[b.v("j2")]])
    with b.loop("i3", 0, n):
        with b.loop("j3", 0, m):
            b.stmt(
                reads=[data[b.v("i3"), b.v("j3")], mean[b.v("j3")], stddev[b.v("j3")]],
                writes=[data[b.v("i3"), b.v("j3")]],
            )
    with b.loop("i4", 0, m - 1):
        b.stmt(writes=[corr[b.v("i4"), b.v("i4")]])
        with b.loop("j4", b.v("i4") + 1, m):
            b.stmt(writes=[corr[b.v("i4"), b.v("j4")]])
            with b.loop("k", 0, n):
                b.stmt(
                    reads=[data[b.v("k"), b.v("i4")], data[b.v("k"), b.v("j4")], corr[b.v("i4"), b.v("j4")]],
                    writes=[corr[b.v("i4"), b.v("j4")]],
                )
            b.stmt(reads=[corr[b.v("i4"), b.v("j4")]], writes=[corr[b.v("j4"), b.v("i4")]])
    b.stmt(writes=[corr[m - 1, m - 1]])
    return b.build()
