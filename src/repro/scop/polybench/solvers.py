"""PolyBench 4.2.1 linear-algebra solvers.

cholesky, durbin, gramschmidt, lu, ludcmp and trisolv.  The triangular loop
nests of these kernels are the main source of non-affine stack-distance
polynomials in the paper's evaluation (Table 1, Figure 14).
"""

from __future__ import annotations

from typing import Dict

from ..builder import ScopBuilder
from ..scop import Scop

__all__ = ["cholesky", "durbin", "gramschmidt", "lu", "ludcmp", "trisolv"]


def cholesky(sizes: Dict[str, int]) -> Scop:
    """In-place Cholesky decomposition of a symmetric positive-definite matrix."""
    n = sizes["N"]
    b = ScopBuilder("cholesky", context={"N": n})
    A = b.array("A", (n, n))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i")):
            with b.loop("k", 0, b.v("j")):
                b.stmt(
                    reads=[A[b.v("i"), b.v("j")], A[b.v("i"), b.v("k")], A[b.v("j"), b.v("k")]],
                    writes=[A[b.v("i"), b.v("j")]],
                )
            b.stmt(reads=[A[b.v("i"), b.v("j")], A[b.v("j"), b.v("j")]], writes=[A[b.v("i"), b.v("j")]])
        with b.loop("k2", 0, b.v("i")):
            b.stmt(
                reads=[A[b.v("i"), b.v("i")], A[b.v("i"), b.v("k2")]],
                writes=[A[b.v("i"), b.v("i")]],
            )
        b.stmt(reads=[A[b.v("i"), b.v("i")]], writes=[A[b.v("i"), b.v("i")]])
    return b.build()


def durbin(sizes: Dict[str, int]) -> Scop:
    """Toeplitz system solver (Durbin's algorithm).

    The scalar recurrences (alpha, beta, sum) stay in registers; the array
    accesses to ``r``, ``y`` and ``z`` are modelled.
    """
    n = sizes["N"]
    b = ScopBuilder("durbin", context={"N": n})
    r = b.array("r", (n,))
    y = b.array("y", (n,))
    z = b.array("z", (n,))
    b.stmt(reads=[r[0]], writes=[y[0]])
    with b.loop("k", 1, n):
        with b.loop("i", 0, b.v("k")):
            b.stmt(reads=[r[b.v("k") - b.v("i") - 1], y[b.v("i")]])
        b.stmt(reads=[r[b.v("k")]])
        with b.loop("i2", 0, b.v("k")):
            b.stmt(reads=[y[b.v("i2")], y[b.v("k") - b.v("i2") - 1]], writes=[z[b.v("i2")]])
        with b.loop("i3", 0, b.v("k")):
            b.stmt(reads=[z[b.v("i3")]], writes=[y[b.v("i3")]])
        b.stmt(writes=[y[b.v("k")]])
    return b.build()


def gramschmidt(sizes: Dict[str, int]) -> Scop:
    """Modified Gram-Schmidt QR decomposition."""
    m, n = sizes["M"], sizes["N"]
    b = ScopBuilder("gramschmidt", context={"M": m, "N": n})
    A = b.array("A", (m, n))
    R = b.array("R", (n, n))
    Q = b.array("Q", (m, n))
    with b.loop("k", 0, n):
        with b.loop("i", 0, m):
            b.stmt(reads=[A[b.v("i"), b.v("k")]])
        b.stmt(writes=[R[b.v("k"), b.v("k")]])
        with b.loop("i2", 0, m):
            b.stmt(reads=[A[b.v("i2"), b.v("k")], R[b.v("k"), b.v("k")]], writes=[Q[b.v("i2"), b.v("k")]])
        with b.loop("j", b.v("k") + 1, n):
            b.stmt(writes=[R[b.v("k"), b.v("j")]])
            with b.loop("i3", 0, m):
                b.stmt(
                    reads=[Q[b.v("i3"), b.v("k")], A[b.v("i3"), b.v("j")], R[b.v("k"), b.v("j")]],
                    writes=[R[b.v("k"), b.v("j")]],
                )
            with b.loop("i4", 0, m):
                b.stmt(
                    reads=[A[b.v("i4"), b.v("j")], Q[b.v("i4"), b.v("k")], R[b.v("k"), b.v("j")]],
                    writes=[A[b.v("i4"), b.v("j")]],
                )
    return b.build()


def lu(sizes: Dict[str, int]) -> Scop:
    """In-place LU decomposition without pivoting."""
    n = sizes["N"]
    b = ScopBuilder("lu", context={"N": n})
    A = b.array("A", (n, n))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i")):
            with b.loop("k", 0, b.v("j")):
                b.stmt(
                    reads=[A[b.v("i"), b.v("j")], A[b.v("i"), b.v("k")], A[b.v("k"), b.v("j")]],
                    writes=[A[b.v("i"), b.v("j")]],
                )
            b.stmt(reads=[A[b.v("i"), b.v("j")], A[b.v("j"), b.v("j")]], writes=[A[b.v("i"), b.v("j")]])
        with b.loop("j2", b.v("i"), n):
            with b.loop("k2", 0, b.v("i")):
                b.stmt(
                    reads=[A[b.v("i"), b.v("j2")], A[b.v("i"), b.v("k2")], A[b.v("k2"), b.v("j2")]],
                    writes=[A[b.v("i"), b.v("j2")]],
                )
    return b.build()


def ludcmp(sizes: Dict[str, int]) -> Scop:
    """LU decomposition followed by forward and backward substitution."""
    n = sizes["N"]
    b = ScopBuilder("ludcmp", context={"N": n})
    A = b.array("A", (n, n))
    bvec = b.array("b", (n,))
    x = b.array("x", (n,))
    y = b.array("y", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i")):
            b.stmt(reads=[A[b.v("i"), b.v("j")]])
            with b.loop("k", 0, b.v("j")):
                b.stmt(reads=[A[b.v("i"), b.v("k")], A[b.v("k"), b.v("j")]])
            b.stmt(reads=[A[b.v("j"), b.v("j")]], writes=[A[b.v("i"), b.v("j")]])
        with b.loop("j2", b.v("i"), n):
            b.stmt(reads=[A[b.v("i"), b.v("j2")]])
            with b.loop("k2", 0, b.v("i")):
                b.stmt(reads=[A[b.v("i"), b.v("k2")], A[b.v("k2"), b.v("j2")]])
            b.stmt(writes=[A[b.v("i"), b.v("j2")]])
    with b.loop("i2", 0, n):
        b.stmt(reads=[bvec[b.v("i2")]])
        with b.loop("j3", 0, b.v("i2")):
            b.stmt(reads=[A[b.v("i2"), b.v("j3")], y[b.v("j3")]])
        b.stmt(writes=[y[b.v("i2")]])
    with b.loop("i3", 0, n):
        b.stmt(reads=[y[n - 1 - b.v("i3")]])
        with b.loop("j4", n - b.v("i3"), n):
            b.stmt(reads=[A[n - 1 - b.v("i3"), b.v("j4")], x[b.v("j4")]])
        b.stmt(reads=[A[n - 1 - b.v("i3"), n - 1 - b.v("i3")]], writes=[x[n - 1 - b.v("i3")]])
    return b.build()


def trisolv(sizes: Dict[str, int]) -> Scop:
    """Triangular solver Lx = b."""
    n = sizes["N"]
    b = ScopBuilder("trisolv", context={"N": n})
    L = b.array("L", (n, n))
    x = b.array("x", (n,))
    bvec = b.array("b", (n,))
    with b.loop("i", 0, n):
        b.stmt(reads=[bvec[b.v("i")]], writes=[x[b.v("i")]])
        with b.loop("j", 0, b.v("i")):
            b.stmt(reads=[x[b.v("i")], L[b.v("i"), b.v("j")], x[b.v("j")]], writes=[x[b.v("i")]])
        b.stmt(reads=[x[b.v("i")], L[b.v("i"), b.v("i")]], writes=[x[b.v("i")]])
    return b.build()
