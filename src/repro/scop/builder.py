"""A small builder DSL for writing static control programs in Python.

The builder mimics the structure of the original C loop nests so that the
PolyBench kernels in :mod:`repro.scop.polybench` read almost like the
reference sources::

    b = ScopBuilder("gemm")
    A = b.array("A", (NI, NK))
    ...
    with b.loop("i", 0, NI):
        with b.loop("j", 0, NJ):
            b.stmt(writes=[C[b.v("i"), b.v("j")]], reads=[C[b.v("i"), b.v("j")]])
            with b.loop("k", 0, NK):
                b.stmt(...)
    scop = b.build()

Loop bounds are half-open (``lower <= var < upper``) like the C originals and
may be affine expressions of enclosing loop variables, which covers the
triangular loops of cholesky, lu, trmm, etc.
"""

from __future__ import annotations

from contextlib import contextmanager
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..isl.constraints import Constraint, ConstraintSystem, ge, le
from ..isl.qpoly import QPoly
from .scop import AccessRef, Array, Scop, Statement

__all__ = ["ArrayHandle", "ScopBuilder", "affine"]


ExprLike = Union[QPoly, int, str, Fraction]


def affine(value: ExprLike) -> QPoly:
    """Coerce ints, variable names and polynomials into a :class:`QPoly`."""
    if isinstance(value, QPoly):
        return value
    if isinstance(value, str):
        return QPoly.variable(value)
    return QPoly.constant(value)


class ArrayHandle:
    """Array wrapper whose ``[...]`` operator produces access references."""

    def __init__(self, array: Array) -> None:
        self.array = array

    def __getitem__(self, indices: Union[ExprLike, Tuple[ExprLike, ...]]) -> "PendingAccess":
        if not isinstance(indices, tuple):
            indices = (indices,)
        exprs = tuple(affine(index) for index in indices)
        return PendingAccess(self.array, exprs)

    @property
    def name(self) -> str:
        return self.array.name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.array.shape


class PendingAccess:
    """An array subscript not yet classified as read or write."""

    def __init__(self, array: Array, indices: Tuple[QPoly, ...]) -> None:
        self.array = array
        self.indices = indices

    def as_ref(self, is_write: bool) -> AccessRef:
        return AccessRef(self.array, self.indices, is_write)


class _LoopFrame:
    def __init__(self, var: str, lower: QPoly, upper: QPoly) -> None:
        self.var = var
        self.lower = lower
        self.upper = upper
        #: Static schedule position counter for statements / sub-loops in the
        #: loop body (the "2d+1" interleaving constants).
        self.position = 0


class ScopBuilder:
    """Imperative builder producing a :class:`~repro.scop.scop.Scop`."""

    def __init__(self, name: str, *, context: Optional[Dict[str, int]] = None, element_size: int = 8) -> None:
        self._scop = Scop(name, context=context)
        self._element_size = element_size
        self._loop_stack: List[_LoopFrame] = []
        self._top_position = 0
        self._statement_counter = 0

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def array(self, name: str, shape: Sequence[int], *, element_size: Optional[int] = None) -> ArrayHandle:
        """Declare an array and return its subscriptable handle.

        ``shape`` lists concrete extents outermost-first; ``element_size``
        (bytes) defaults to the builder-wide setting (8, a C ``double``).
        Declaration order is preserved in :attr:`Scop.arrays` — and therefore
        in the structural store fingerprint and in the output of
        :func:`repro.frontend.unparse` — so declare arrays in a stable order
        when digest stability matters.  Equivalent to an ``array`` directive
        in the kernel DSL (docs/KERNEL_DSL.md, "Arrays").
        """
        array = Array(name, tuple(int(extent) for extent in shape), element_size or self._element_size)
        self._scop.add_array(array)
        return ArrayHandle(array)

    def v(self, name: str) -> QPoly:
        """The affine expression for loop variable ``name``.

        Only variables of currently open :meth:`loop` blocks are in scope
        (``KeyError`` otherwise), which catches index typos at build time
        rather than as silently-symbolic analysis inputs.
        """
        if all(frame.var != name for frame in self._loop_stack):
            raise KeyError(f"loop variable {name!r} is not in scope")
        return QPoly.variable(name)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @contextmanager
    def loop(self, var: str, lower: ExprLike, upper: ExprLike, *, upper_inclusive: bool = False) -> Iterator[QPoly]:
        """Open a loop ``for (var = lower; var < upper; ++var)``.

        ``upper_inclusive=True`` switches to ``var <= upper`` which is
        convenient for triangular bounds such as ``j <= i``.

        **Domain contract.**  Each enclosing loop contributes exactly two
        normal-form constraints to every statement built inside it —
        ``var - lower >= 0`` then ``upper' - var >= 0`` (``upper'`` the
        inclusive bound) — in loop-nesting order.  The kernel DSL's chained
        comparison ``lower <= var < upper`` desugars to the same two
        constraints in the same order (docs/KERNEL_DSL.md, "Iteration
        domains"), which is what makes builder and frontend scops
        byte-identical.

        **Schedule-position contract.**  Closing the loop bumps the static
        position counter of the surrounding scope, so a sibling statement or
        loop that follows textually is ordered after everything inside this
        loop.  See :meth:`stmt` for the full schedule layout.
        """
        if any(frame.var == var for frame in self._loop_stack):
            raise ValueError(f"loop variable {var!r} already in scope")
        lower_expr = affine(lower)
        upper_expr = affine(upper) if upper_inclusive else affine(upper) - 1
        frame = _LoopFrame(var, lower_expr, upper_expr)
        self._loop_stack.append(frame)
        try:
            yield QPoly.variable(var)
        finally:
            popped = self._loop_stack.pop()
            assert popped is frame
            self._bump_position()

    def _bump_position(self) -> None:
        if self._loop_stack:
            self._loop_stack[-1].position += 1
        else:
            self._top_position += 1

    def _current_position(self) -> int:
        if self._loop_stack:
            return self._loop_stack[-1].position
        return self._top_position

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def stmt(
        self,
        *,
        reads: Sequence[PendingAccess] = (),
        writes: Sequence[PendingAccess] = (),
        name: Optional[str] = None,
    ) -> Statement:
        """Add a statement; accesses execute reads first, then writes.

        **Access-ordering contract.**  The statement's ordered access list is
        ``reads`` in the given order followed by ``writes`` in the given
        order.  This matches the paper's convention of counting array
        accesses "in the order provided by the compiler front end" for a
        load/compute/store statement body, and it is the order the kernel
        DSL's assignment sugar desugars to (operand reads left-to-right, the
        accumulator read for ``op=`` forms, then the write — see
        docs/KERNEL_DSL.md, "Statement bodies").  Per-access results and the
        structural store digest both depend on this order.

        **Schedule-position contract.**  The statement's schedule is the
        ``2d+1`` interleaving ``[p0, var_1, p1, ..., var_d, pd]``: ``p0`` is
        the current top-level position, ``p_k`` the static position inside
        loop ``k``, and ``pd`` the statement's position in its innermost
        loop.  Position counters start at 0 and bump after every statement
        or closed loop in the same scope, so textual order is execution
        order.  A statement outside all loops gets the depth-0 schedule
        ``[p, p]``.  The DSL's ``schedule [...]`` directive states this
        vector explicitly (docs/KERNEL_DSL.md, "Schedules").
        """
        if name is None:
            name = f"S{self._statement_counter}"
        self._statement_counter += 1

        loop_vars = tuple(frame.var for frame in self._loop_stack)
        domain = ConstraintSystem()
        for frame in self._loop_stack:
            domain.add(ge(QPoly.variable(frame.var) - frame.lower, 0))
            domain.add(le(QPoly.variable(frame.var) - frame.upper, 0))

        schedule: List[Union[int, str]] = []
        # Interleave: (top position, var_1, pos_1, var_2, pos_2, ..., var_d, stmt position)
        schedule.append(self._outermost_position())
        for depth, frame in enumerate(self._loop_stack):
            schedule.append(frame.var)
            if depth + 1 < len(self._loop_stack):
                schedule.append(self._position_at_depth(depth))
        schedule.append(self._current_position())

        accesses = [ref.as_ref(False) for ref in reads] + [ref.as_ref(True) for ref in writes]
        statement = Statement(name=name, loop_vars=loop_vars, domain=domain, schedule=tuple(schedule), accesses=accesses)
        self._scop.add_statement(statement)
        self._bump_position()
        return statement

    def _outermost_position(self) -> int:
        return self._top_position

    def _position_at_depth(self, depth: int) -> int:
        # The static position *inside* loop `depth` is tracked by that frame.
        return self._loop_stack[depth].position

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> Scop:
        """Return the finished :class:`Scop` (all loops must be closed).

        The scop carries arrays in declaration order and statements in
        textual order; the builder keeps no copy, so mutating the returned
        object affects no later build.  Any scop produced here can be
        rendered to kernel DSL text with :func:`repro.frontend.unparse` and
        parsed back to an identical analysis input (docs/KERNEL_DSL.md,
        "Round-tripping").
        """
        if self._loop_stack:
            raise RuntimeError("cannot build a SCoP while loops are still open")
        return self._scop
