"""Schedule transformations: rectangular loop tiling.

The paper evaluates the model on tiled PolyBench kernels produced by PPCG
with tile size 16 (Section 4.5, Figure 16).  This module implements the
equivalent rectangular tiling directly on the SCoP representation: every
tiled loop variable ``i`` gets a tile counter ``i_t`` with the constraint
``T*i_t <= i <= T*i_t + T - 1`` and the tile counters are prepended to the
statement schedule, so execution proceeds tile by tile.

The transformation does not check dependence legality — the cache model only
needs *an* execution order, and the paper's rectangular (non-skewed) tilings
are taken as given from PPCG in the same way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..isl.constraints import ge, le
from ..isl.qpoly import QPoly
from .scop import Scop, Statement

__all__ = ["tile_scop", "tile_statement"]

TILE_SUFFIX = "_t"


def tile_statement(statement: Statement, tile_size: int, *, loops: Optional[Sequence[str]] = None) -> Statement:
    """Return a tiled copy of ``statement``.

    ``loops`` selects the loop variables to tile (default: all).  The tile
    counters are new outermost dimensions in the order of the original loops.
    """
    if tile_size <= 1:
        return statement
    tiled_vars = list(loops) if loops is not None else list(statement.loop_vars)
    tiled_vars = [var for var in tiled_vars if var in statement.loop_vars]
    if not tiled_vars:
        return statement

    domain = statement.domain.copy()
    tile_counters: List[str] = []
    for var in tiled_vars:
        counter = var + TILE_SUFFIX
        tile_counters.append(counter)
        point = QPoly.variable(var)
        tile = QPoly.variable(counter)
        domain.add(ge(point - tile * tile_size, 0))
        domain.add(le(point - tile * tile_size, tile_size - 1))

    schedule: List[Union[int, str]] = [0]
    for counter in tile_counters:
        schedule.append(counter)
        schedule.append(0)
    # Drop the leading static dimension of the original schedule so the tile
    # band is the outermost; keep the rest (including the original statement
    # interleaving constants).
    schedule.extend(statement.schedule)

    return Statement(
        name=statement.name,
        loop_vars=tuple(tile_counters) + statement.loop_vars,
        domain=domain,
        schedule=tuple(schedule),
        accesses=list(statement.accesses),
    )


def tile_scop(scop: Scop, tile_size: int = 16, *, loops: Optional[Dict[str, Sequence[str]]] = None) -> Scop:
    """Tile every statement of ``scop`` with a rectangular tiling.

    ``loops`` optionally restricts the tiled loop variables per statement
    (``{statement name: [loop vars]}``); by default every loop is tiled,
    which corresponds to the paper's full rectangular tiling.
    """
    tiled = Scop(f"{scop.name}-tiled{tile_size}", context=dict(scop.context))
    for array in scop.arrays.values():
        tiled.add_array(array)
    for statement in scop.statements:
        selected = loops.get(statement.name) if loops else None
        tiled.add_statement(tile_statement(statement, tile_size, loops=selected))
    return tiled
