"""Static control program representation, builder DSL and kernels."""

from .builder import ArrayHandle, ScopBuilder, affine
from .scop import AccessRef, Array, Scop, SourceLoc, Statement

__all__ = [
    "AccessRef",
    "Array",
    "ArrayHandle",
    "Scop",
    "ScopBuilder",
    "SourceLoc",
    "Statement",
    "affine",
]
