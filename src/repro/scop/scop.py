"""Static control program (SCoP) representation.

A SCoP consists of statements with

* an **iteration domain**: a conjunction of affine constraints over the
  statement's loop variables,
* a **schedule**: a ``2d+1``-style vector of interleaved static positions and
  loop variables defining the global execution order, and
* an ordered list of **array accesses** with affine index expressions.

This mirrors the iteration domain / schedule / access map triple of the paper
(Section 2.4) with concrete (non-parametric) loop bounds, which is also how
the evaluation of the paper runs (PolyBench has fixed problem sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..isl.constraints import ConstraintSystem, enumerate_points
from ..isl.counting import cardinality
from ..isl.qpoly import QPoly

__all__ = ["AccessRef", "Array", "Scop", "SourceLoc", "Statement", "ScheduleEntry"]


#: A schedule entry is either a static position (int) or a loop variable name.
ScheduleEntry = Union[int, str]


@dataclass(frozen=True)
class SourceLoc:
    """Source position (``file:line:col``) of a statement or access.

    Attached by the kernel frontend when a scop is instantiated from a
    ``.knl`` file so that downstream diagnostics (:mod:`repro.verify`) can
    point back at the offending source text.  Programs built through
    :class:`~repro.scop.builder.ScopBuilder` carry no locations.  The field
    is deliberately excluded from equality: two scops that describe the same
    program compare (and digest, see
    :meth:`repro.engine.jobs.JobSpec.key`) identically regardless of where
    their text lived.
    """

    filename: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Array:
    """A (multi-dimensional) array with a fixed element size in bytes."""

    name: str
    shape: Tuple[int, ...]
    element_size: int = 8
    #: Source position of the declaration in the originating ``.knl`` file,
    #: if any.  Not part of the array identity (see :class:`SourceLoc`).
    location: Optional[SourceLoc] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("arrays must have at least one dimension")
        if any(extent <= 0 for extent in self.shape):
            raise ValueError(f"array {self.name} has non-positive extent {self.shape}")
        if self.element_size <= 0:
            raise ValueError("element size must be positive")

    @property
    def rank(self) -> int:
        return len(self.shape)

    def padded_shape(self, line_size: int) -> Tuple[int, ...]:
        """Shape with the innermost dimension padded to full cache lines.

        The paper assumes the innermost dimension is cache-line aligned and
        padded to an integer multiple of the cache line size (Section 3.1);
        the trace generator uses the same layout so that the simulator and
        the analytical model describe the same machine.
        """
        elements_per_line = max(1, line_size // self.element_size)
        inner = self.shape[-1]
        padded_inner = ((inner + elements_per_line - 1) // elements_per_line) * elements_per_line
        return self.shape[:-1] + (padded_inner,)

    def size_bytes(self, line_size: int) -> int:
        total = 1
        for extent in self.padded_shape(line_size):
            total *= extent
        return total * self.element_size


@dataclass(frozen=True)
class AccessRef:
    """A single array reference of a statement.

    ``indices`` are quasi-affine expressions over the statement's loop
    variables, one per array dimension (outermost first).
    """

    array: Array
    indices: Tuple[QPoly, ...]
    is_write: bool = False
    #: Source position of the reference in the originating ``.knl`` file,
    #: if any.  Not part of the access identity (see :class:`SourceLoc`).
    location: Optional[SourceLoc] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(self.indices) != self.array.rank:
            raise ValueError(
                f"access to {self.array.name} has {len(self.indices)} indices, expected {self.array.rank}"
            )

    def rename(self, mapping: Mapping[str, QPoly]) -> "AccessRef":
        return AccessRef(
            self.array,
            tuple(expr.substitute(mapping) for expr in self.indices),
            self.is_write,
            location=self.location,
        )


@dataclass
class Statement:
    """A statement instance set with its schedule and ordered accesses."""

    name: str
    loop_vars: Tuple[str, ...]
    domain: ConstraintSystem
    schedule: Tuple[ScheduleEntry, ...]
    accesses: List[AccessRef] = field(default_factory=list)
    #: Source position of the statement in the originating ``.knl`` file,
    #: if any.  Not part of the statement identity (see :class:`SourceLoc`).
    location: Optional[SourceLoc] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.loop_vars)) != len(self.loop_vars):
            raise ValueError(f"statement {self.name} has duplicate loop variables")

    # ------------------------------------------------------------------
    # Schedule handling
    # ------------------------------------------------------------------
    def schedule_exprs(self, length: int) -> Tuple[QPoly, ...]:
        """Schedule as quasi-affine expressions, zero-padded to ``length``."""
        exprs: List[QPoly] = []
        for entry in self.schedule:
            if isinstance(entry, int):
                exprs.append(QPoly.constant(entry))
            else:
                exprs.append(QPoly.variable(entry))
        while len(exprs) < length:
            exprs.append(QPoly.constant(0))
        return tuple(exprs)

    def instance_count(self) -> int:
        """Number of statement instances (cardinality of the domain)."""
        return cardinality(self.domain, list(self.loop_vars))

    def enumerate_instances(self) -> Iterator[Dict[str, int]]:
        """Enumerate the integer points of the iteration domain."""
        yield from enumerate_points(self.domain, list(self.loop_vars))

    def reads(self) -> List[AccessRef]:
        return [ref for ref in self.accesses if not ref.is_write]

    def writes(self) -> List[AccessRef]:
        return [ref for ref in self.accesses if ref.is_write]


class Scop:
    """A static control program: arrays plus scheduled statements."""

    def __init__(self, name: str, *, context: Optional[Mapping[str, int]] = None) -> None:
        self.name = name
        self.arrays: Dict[str, Array] = {}
        self.statements: List[Statement] = []
        #: Problem-size parameters used to build the kernel (documentation
        #: only; all loop bounds are already concrete).
        self.context: Dict[str, int] = dict(context or {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_array(self, array: Array) -> Array:
        if array.name in self.arrays:
            raise ValueError(f"duplicate array {array.name}")
        self.arrays[array.name] = array
        return array

    def add_statement(self, statement: Statement) -> Statement:
        if any(existing.name == statement.name for existing in self.statements):
            raise ValueError(f"duplicate statement {statement.name}")
        for ref in statement.accesses:
            if ref.array.name not in self.arrays:
                self.add_array(ref.array)
        self.statements.append(statement)
        return statement

    def statement(self, name: str) -> Statement:
        for statement in self.statements:
            if statement.name == name:
                return statement
        raise KeyError(f"no statement named {name}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def schedule_length(self) -> int:
        """Common schedule length (statement schedules are zero-padded)."""
        return max((len(s.schedule) for s in self.statements), default=0)

    def max_loop_depth(self) -> int:
        return max((len(s.loop_vars) for s in self.statements), default=0)

    def all_accesses(self) -> List[Tuple[Statement, int, AccessRef]]:
        """All (statement, access position, reference) triples in order."""
        out: List[Tuple[Statement, int, AccessRef]] = []
        for statement in self.statements:
            for position, ref in enumerate(statement.accesses):
                out.append((statement, position, ref))
        return out

    def total_accesses(self) -> int:
        """Total number of dynamic memory accesses of the program."""
        total = 0
        for statement in self.statements:
            if not statement.accesses:
                continue
            total += statement.instance_count() * len(statement.accesses)
        return total

    def total_instances(self) -> int:
        return sum(statement.instance_count() for statement in self.statements)

    def footprint_bytes(self, line_size: int = 64) -> int:
        """Total padded data footprint of all arrays in bytes."""
        return sum(array.size_bytes(line_size) for array in self.arrays.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Scop({self.name!r}, {len(self.statements)} statements, {len(self.arrays)} arrays)"
