"""Tokenizer for the kernel DSL with line/column tracking.

The language is newline-insensitive: statements are delimited by structure
(braces, brackets, directives), never by line breaks, so the lexer folds
whitespace away but records the 1-based line/column of every token for
error reporting.  ``#`` and ``//`` start comments running to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, NoReturn, Optional

from .errors import located_error

__all__ = ["Token", "TokenStream", "NAME", "INT", "STRING", "OP", "EOF"]

NAME = "name"
INT = "int"
STRING = "string"
OP = "op"
EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexeme with its 1-based source position."""

    kind: str
    text: str
    line: int
    col: int

    def describe(self) -> str:
        if self.kind == EOF:
            return "end of file"
        return repr(self.text)


#: Multi-character operators must precede their prefixes.
_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t\r\f\v]+)
    | (?P<nl>\n)
    | (?P<comment>\#[^\n]*|//[^\n]*)
    | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<int>[0-9]+)
    | (?P<string>"[^"\n]*")
    | (?P<op>\+=|-=|\*=|/=|==|<=|>=|[{}\[\]():,;=<>+\-*/])
    """,
    re.VERBOSE,
)


def _tokenize(text: str, filename: str, lines: List[str]) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            col = pos - line_start + 1
            char = text[pos]
            message = (
                "unterminated string literal"
                if char == '"'
                else f"unexpected character {char!r}"
            )
            raise located_error(message, filename=filename, lines=lines, line=line, col=col)
        kind = match.lastgroup
        if kind == "nl":
            line += 1
            line_start = match.end()
        elif kind not in ("ws", "comment"):
            col = match.start() - line_start + 1
            tokens.append(Token(kind, match.group(), line, col))
        pos = match.end()
    tokens.append(Token(EOF, "", line, len(text) - line_start + 1))
    return tokens


class TokenStream:
    """Token cursor with lookahead, expectation helpers and located errors."""

    def __init__(self, text: str, filename: str = "<kernel>") -> None:
        self.filename = filename
        self.lines = text.split("\n")
        self.tokens = _tokenize(text, filename, self.lines)
        self.index = 0

    # ------------------------------------------------------------------
    # Cursor
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().kind == EOF

    def at_op(self, text: str) -> bool:
        token = self.peek()
        return token.kind == OP and token.text == text

    def at_name(self, text: Optional[str] = None) -> bool:
        token = self.peek()
        if token.kind != NAME:
            return False
        return text is None or token.text == text

    # ------------------------------------------------------------------
    # Expectations
    # ------------------------------------------------------------------
    def expect_op(self, text: str, context: Optional[str] = None) -> Token:
        if not self.at_op(text):
            suffix = f" {context}" if context else ""
            self.error(f"expected {text!r}{suffix}, got {self.peek().describe()}")
        return self.next()

    def expect_name(self, what: str = "a name") -> Token:
        if self.peek().kind != NAME:
            self.error(f"expected {what}, got {self.peek().describe()}")
        return self.next()

    def expect_int(self, what: str = "an integer") -> Token:
        if self.peek().kind != INT:
            self.error(f"expected {what}, got {self.peek().describe()}")
        return self.next()

    # ------------------------------------------------------------------
    # Errors
    # ------------------------------------------------------------------
    def error(self, message: str, token: Optional[Token] = None) -> NoReturn:
        token = token if token is not None else self.peek()
        raise located_error(
            message,
            filename=self.filename,
            lines=self.lines,
            line=token.line,
            col=token.col,
        )
