"""File-level kernel DSL parser: ``.knl`` text to :class:`KernelProgram`.

A kernel file has four kinds of top-level forms (newlines are
insignificant; ``#`` and ``//`` comments run to end of line)::

    kernel gemm                              # exactly once, first

    dataset mini { NI = 10, NJ = 12, NK = 14 }   # zero or more

    array C[NI][NJ]                          # extents are affine in the
    array A[NI][NK] elem 4                   # dataset parameters

    S0: { [i, j] : 0 <= i < NI and 0 <= j < NJ }   # one or more statements
        schedule [0, i, 0, j, 0]
        C[i][j] *= beta

Parsing is two-phase.  :func:`parse_kernel` checks all syntax and produces a
:class:`KernelProgram` whose expressions still reference dataset parameters
symbolically; :meth:`KernelProgram.instantiate` substitutes one dataset's
sizes and performs the semantic checks that need concrete values (affinity,
array ranks, positive extents, unbound names), building the final
:class:`~repro.scop.scop.Scop`.  ``instantiate`` has exactly the
``builder(sizes) -> Scop`` signature the kernel registry expects, so
:func:`register_kernel_file` plugs a file into
:func:`repro.api.registry.register_kernel` directly and every downstream
consumer (Session, batch engine, store, miss curves) works unchanged.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..isl.constraints import Constraint, ConstraintSystem
from ..isl.qpoly import QPoly
from ..scop.scop import AccessRef, Array, Scop, SourceLoc, Statement
from .domains import expression_to_poly, parse_expression
from .errors import KernelParseError, located_error
from .lexer import NAME, STRING, Token, TokenStream
from .statements import StatementDecl, parse_statement

__all__ = [
    "ArrayDecl",
    "KernelProgram",
    "RESERVED_WORDS",
    "parse_kernel",
    "parse_kernel_path",
    "register_kernel_file",
]


#: Words with grammatical meaning; not usable as array or statement names.
RESERVED_WORDS = frozenset(
    {"kernel", "dataset", "array", "schedule", "access", "read", "write", "elem", "and"}
)


@dataclass(frozen=True)
class ArrayDecl:
    """A parsed ``array`` declaration (extents pre-substitution)."""

    name: str
    token: Token
    extents: Tuple[QPoly, ...]
    element_size: int


class KernelProgram:
    """A parsed kernel file, instantiable at any of its datasets.

    Instances are picklable (plain data plus :class:`QPoly` expressions), so
    a registered ``instantiate`` builder survives the trip into spawn-started
    batch workers.
    """

    def __init__(
        self,
        name: str,
        filename: str,
        datasets: Dict[str, Dict[str, int]],
        arrays: Dict[str, ArrayDecl],
        statements: List[StatementDecl],
        source_lines: Tuple[str, ...],
    ) -> None:
        self.name = name
        self.filename = filename
        #: Dataset blocks in file order; an empty file gets ``{"mini": {}}``.
        self.datasets = datasets
        self.arrays = arrays
        self.statements = statements
        self._source_lines = source_lines

    # ------------------------------------------------------------------
    # Errors
    # ------------------------------------------------------------------
    def _error(self, message: str, token: Token) -> KernelParseError:
        return located_error(
            message,
            filename=self.filename,
            lines=self._source_lines,
            line=token.line,
            col=token.col,
        )

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def dataset_sizes(self, dataset: str) -> Dict[str, int]:
        """Size bindings of one dataset block (:class:`KernelParseError` on typos)."""
        if dataset not in self.datasets:
            close = difflib.get_close_matches(dataset, list(self.datasets), n=1, cutoff=0.5)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise KernelParseError(
                f"kernel {self.name!r} has no dataset {dataset!r}{hint} "
                f"(available: {', '.join(self.datasets)})",
                filename=self.filename,
            )
        return dict(self.datasets[dataset])

    def instantiate(self, sizes: Optional[Mapping[str, int]] = None) -> Scop:
        """Build the :class:`Scop` for concrete size parameters.

        ``sizes`` maps dataset parameter names to integers (extra names are
        ignored, like PolyBench builders ignore unused entries).  Raises
        :class:`KernelParseError` — located at the offending source token —
        for non-affine expressions, unbound names, rank mismatches, or
        non-positive extents.
        """
        params = {name: int(value) for name, value in dict(sizes or {}).items()}
        scop = Scop(self.name, context=params)
        for decl in self.arrays.values():
            shape = []
            for dimension, extent in enumerate(decl.extents):
                value = extent.substitute(params)
                if not value.is_constant():
                    unknown = ", ".join(sorted(value.free_variables()))
                    raise self._error(
                        f"extent {dimension} of array {decl.name!r} references "
                        f"unbound parameter(s) {unknown} (bind them in a "
                        "dataset block)",
                        decl.token,
                    )
                constant = value.constant_value()
                if constant.denominator != 1 or constant <= 0:
                    raise self._error(
                        f"extent {dimension} of array {decl.name!r} must be a "
                        f"positive integer, got {constant}",
                        decl.token,
                    )
                shape.append(int(constant))
            scop.add_array(
                Array(
                    decl.name,
                    tuple(shape),
                    decl.element_size,
                    location=self._location(decl.token),
                )
            )
        for decl in self.statements:
            scop.add_statement(self._instantiate_statement(decl, scop, params))
        return scop

    def _instantiate_statement(
        self, decl: StatementDecl, scop: Scop, params: Dict[str, int]
    ) -> Statement:
        variables = decl.domain.variables
        # Loop variables shadow same-named dataset parameters (lexical
        # scoping): substitution only touches the parameters visible here.
        visible = {k: v for k, v in params.items() if k not in variables}
        domain = ConstraintSystem()
        for constraint in decl.domain.constraints:
            expr = self._resolve(
                constraint.expr, visible, variables, constraint.token,
                what=f"constraint of statement {decl.name!r}",
            )
            domain.add(Constraint(expr, constraint.kind))
        accesses = []
        for access in decl.accesses:
            array = scop.arrays.get(access.array)
            if array is None:
                raise self._error(
                    f"array {access.array!r} is not declared (add "
                    f"'array {access.array}[...]' before the statements)",
                    access.token,
                )
            if len(access.indices) != array.rank:
                raise self._error(
                    f"access to {access.array!r} has {len(access.indices)} "
                    f"index(es), but the array has rank {array.rank}",
                    access.token,
                )
            exprs = tuple(
                self._resolve(
                    index, visible, variables, access.token,
                    what=f"index of access to {access.array!r}",
                )
                for index in access.indices
            )
            accesses.append(
                AccessRef(
                    array,
                    exprs,
                    access.is_write,
                    location=self._location(access.token),
                )
            )
        return Statement(
            name=decl.name,
            loop_vars=variables,
            domain=domain,
            schedule=decl.schedule,
            accesses=accesses,
            location=self._location(decl.token),
        )

    def _location(self, token: Optional[Token]) -> Optional[SourceLoc]:
        """Source position of ``token`` for diagnostics, if it has one."""
        if token is None:
            return None
        return SourceLoc(self.filename, token.line, token.col)

    def _resolve(
        self,
        expr: QPoly,
        visible: Dict[str, int],
        variables: Tuple[str, ...],
        token: Token,
        *,
        what: str,
    ) -> QPoly:
        """Substitute dataset sizes, then check closedness and affinity."""
        value = expr.substitute(visible)
        unknown = sorted(value.free_variables() - set(variables))
        if unknown:
            known = ", ".join(sorted(visible)) or "none"
            raise self._error(
                f"unknown name(s) {', '.join(unknown)} in {what}: not a loop "
                f"variable of this statement and not bound by the dataset "
                f"(bound parameters: {known})",
                token,
            )
        if not value.is_affine():
            raise self._error(
                f"{what} is not affine after substituting the dataset sizes "
                f"(got {value})",
                token,
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"KernelProgram({self.name!r}, {len(self.statements)} statements, "
            f"{len(self.arrays)} arrays, datasets: {', '.join(self.datasets)})"
        )


# ----------------------------------------------------------------------
# File grammar
# ----------------------------------------------------------------------
def parse_kernel(text: str, filename: str = "<kernel>") -> KernelProgram:
    """Parse complete kernel DSL text into a :class:`KernelProgram`."""
    ts = TokenStream(text, filename)
    name = _parse_header(ts)
    datasets: Dict[str, Dict[str, int]] = {}
    arrays: Dict[str, ArrayDecl] = {}
    statements: List[StatementDecl] = []
    statement_names: Dict[str, Token] = {}
    while not ts.at_eof():
        token = ts.peek()
        if ts.at_name("kernel"):
            ts.error("duplicate 'kernel' directive (a file defines one kernel)")
        if ts.at_name("dataset"):
            _parse_dataset(ts, datasets)
            continue
        if ts.at_name("array"):
            decl = _parse_array(ts)
            if decl.name in arrays:
                ts.error(f"duplicate array {decl.name!r}", decl.token)
            arrays[decl.name] = decl
            continue
        if token.kind == NAME:
            label = ts.next()
            if label.text in RESERVED_WORDS:
                ts.error(
                    f"{label.text!r} is a reserved word and cannot name a "
                    "statement",
                    label,
                )
            ts.expect_op(":", f"after statement name {label.text!r}")
            if label.text in statement_names:
                ts.error(f"duplicate statement {label.text!r}", label)
            statement_names[label.text] = label
            statements.append(parse_statement(ts, label, len(statements)))
            continue
        ts.error(
            "expected 'dataset', 'array', or a statement label, got "
            f"{token.describe()}"
        )
    if not statements:
        ts.error(f"kernel {name!r} defines no statements")
    if not datasets:
        datasets["mini"] = {}
    return KernelProgram(
        name=name,
        filename=filename,
        datasets=datasets,
        arrays=arrays,
        statements=statements,
        source_lines=tuple(ts.lines),
    )


def _parse_header(ts: TokenStream) -> str:
    if not ts.at_name("kernel"):
        ts.error("a kernel file must start with 'kernel NAME'")
    ts.next()
    token = ts.peek()
    if token.kind == NAME:
        ts.next()
        return token.text
    if token.kind == STRING:
        ts.next()
        name = token.text[1:-1]
        if not name:
            ts.error("the kernel name must not be empty", token)
        return name
    ts.error(
        "expected the kernel name (an identifier, or a quoted string for "
        f"names like \"jacobi-2d\"), got {token.describe()}"
    )


def _parse_dataset(ts: TokenStream, datasets: Dict[str, Dict[str, int]]) -> None:
    ts.next()  # 'dataset'
    name = ts.expect_name("a dataset name")
    if name.text in datasets:
        ts.error(f"duplicate dataset {name.text!r}", name)
    ts.expect_op("{", "to open the dataset block")
    bindings: Dict[str, int] = {}
    if not ts.at_op("}"):
        while True:
            param = ts.expect_name("a size parameter name")
            if param.text in bindings:
                ts.error(
                    f"duplicate parameter {param.text!r} in dataset "
                    f"{name.text!r}",
                    param,
                )
            ts.expect_op("=", f"after parameter {param.text!r}")
            negative = False
            if ts.at_op("-"):
                ts.next()
                negative = True
            value = ts.expect_int(f"an integer value for {param.text!r}")
            bindings[param.text] = -int(value.text) if negative else int(value.text)
            if ts.at_op(","):
                ts.next()
                if ts.at_op("}"):
                    break
                continue
            break
    ts.expect_op("}", "to close the dataset block")
    datasets[name.text] = bindings


def _parse_array(ts: TokenStream) -> ArrayDecl:
    ts.next()  # 'array'
    name = ts.expect_name("an array name")
    if name.text in RESERVED_WORDS:
        ts.error(f"{name.text!r} is a reserved word and cannot name an array", name)
    if not ts.at_op("["):
        ts.error(
            f"array {name.text!r} needs at least one [extent], e.g. "
            f"array {name.text}[N]"
        )
    extents: List[QPoly] = []
    while ts.at_op("["):
        ts.next()
        extents.append(
            expression_to_poly(
                ts, parse_expression(ts), where="an array extent"
            )
        )
        ts.expect_op("]", "to close the array extent")
    element_size = 8
    if ts.at_name("elem"):
        ts.next()
        value = ts.expect_int("the element size in bytes after 'elem'")
        element_size = int(value.text)
        if element_size <= 0:
            ts.error("the element size must be positive", value)
    return ArrayDecl(
        name=name.text, token=name, extents=tuple(extents), element_size=element_size
    )


# ----------------------------------------------------------------------
# Files and registration
# ----------------------------------------------------------------------
def parse_kernel_path(path: Union[str, os.PathLike]) -> KernelProgram:
    """Read and parse a ``.knl`` file (``OSError`` if unreadable)."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_kernel(text, filename=path)


def register_kernel_file(
    path: Union[str, os.PathLike], *, replace: bool = False
) -> KernelProgram:
    """Parse ``path`` and register it in the kernel registry.

    The registered entry's name is the file's ``kernel`` name, its builder is
    :meth:`KernelProgram.instantiate`, its datasets are the file's dataset
    blocks (in file order), and its source is ``"file:<basename>"`` — which
    makes Session, the batch engine, the analysis store, and miss curves work
    for file kernels exactly as for builtins.  ``replace=True`` overrides an
    existing same-named registration.
    """
    program = parse_kernel_path(path)
    from ..api.registry import register_kernel

    register_kernel(
        program.name,
        program.instantiate,
        datasets=program.datasets,
        source=f"file:{os.path.basename(os.fspath(path))}",
        replace=replace,
    )
    return program
