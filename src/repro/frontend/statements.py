"""Statement parsing for the kernel DSL: domains, schedules, and bodies.

A statement is::

    S1: { [i, k, j] : 0 <= i < NI and 0 <= k < NK and 0 <= j < NJ }
        schedule [0, i, 1, k, 0, j, 0]
        C[i][j] += A[i][k] * B[k][j]

The body determines the statement's ordered access list.  The cache model
only ever sees that list — the arithmetic structure of the right-hand side
is irrelevant — so body parsing **extracts array accesses left-to-right**
and discards everything else (bare names are register scalars, exactly like
the paper's model of PolyBench statements):

* ``W[...] = rhs``   — the reads of ``rhs`` in textual order, then the write;
* ``W[...] op= rhs`` (``+=``, ``-=``, ``*=``, ``/=``) — the reads of ``rhs``,
  then a read of ``W[...]``, then the write (a load/compute/store reduction:
  the compiler frontend loads the accumulator after the operands);
* ``access(read A[i], write B[i], ...)`` — the explicit form for statements
  whose access order the sugar cannot express (multiple writes, interleaved
  reads/writes), preserving the listed order verbatim.

This ordering contract matches
:meth:`repro.scop.builder.ScopBuilder.stmt` (reads first, then writes), so a
``.knl`` port of a builder kernel produces the identical access list — which
per-access results and result digests depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..isl.qpoly import QPoly
from .domains import (
    ArrayIndex,
    BinOp,
    DomainDecl,
    ExprNode,
    Name,
    Neg,
    Num,
    expression_to_poly,
    parse_domain_body,
    parse_expression,
)
from .lexer import INT, NAME, OP, Token, TokenStream

__all__ = ["AccessDecl", "StatementDecl", "parse_statement"]


#: Assignment operators; all ``op=`` forms desugar to the same access order.
ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")


@dataclass(frozen=True)
class AccessDecl:
    """One ordered array access of a statement (pre-substitution indices)."""

    array: str
    indices: Tuple[QPoly, ...]
    is_write: bool
    token: Token


@dataclass(frozen=True)
class StatementDecl:
    """A fully parsed statement: domain, concrete schedule, ordered accesses."""

    name: str
    token: Token
    domain: DomainDecl
    schedule: Tuple[Union[int, str], ...]
    accesses: Tuple[AccessDecl, ...]


def parse_statement(ts: TokenStream, name_token: Token, file_index: int) -> StatementDecl:
    """Parse domain, optional ``schedule [...]``, and body (label consumed)."""
    domain = parse_domain_body(ts)
    schedule: Optional[Tuple[Union[int, str], ...]] = None
    if ts.at_name("schedule"):
        ts.next()
        schedule = _parse_schedule(ts, domain)
    if schedule is None:
        schedule = _default_schedule(domain, file_index)
    accesses = _parse_body(ts)
    return StatementDecl(
        name=name_token.text,
        token=name_token,
        domain=domain,
        schedule=schedule,
        accesses=accesses,
    )


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def _default_schedule(domain: DomainDecl, file_index: int) -> Tuple[Union[int, str], ...]:
    """``[file_index, v1, 0, v2, 0, ..., vd, 0]`` — each statement its own nest."""
    entries: List[Union[int, str]] = [file_index]
    for variable in domain.variables:
        entries.append(variable)
        entries.append(0)
    if len(entries) == 1:
        entries.append(0)
    return tuple(entries)


def _parse_schedule(ts: TokenStream, domain: DomainDecl) -> Tuple[Union[int, str], ...]:
    open_token = ts.expect_op("[", "to open the schedule vector")
    entries: List[Union[int, str]] = []
    tokens: List[Token] = []
    if not ts.at_op("]"):
        while True:
            token = ts.peek()
            if token.kind == INT:
                ts.next()
                entries.append(int(token.text))
            elif ts.at_op("-") and ts.peek(1).kind == INT:
                ts.next()
                value = ts.next()
                entries.append(-int(value.text))
            elif token.kind == NAME:
                ts.next()
                entries.append(token.text)
            else:
                ts.error(
                    "expected a static position (integer) or a loop variable "
                    f"in the schedule, got {token.describe()}"
                )
            tokens.append(token)
            if ts.at_op(","):
                ts.next()
                continue
            break
    ts.expect_op("]", "to close the schedule vector")
    _validate_schedule(ts, entries, tokens, domain, open_token)
    return tuple(entries)


def _validate_schedule(
    ts: TokenStream,
    entries: List[Union[int, str]],
    tokens: List[Token],
    domain: DomainDecl,
    open_token: Token,
) -> None:
    """Enforce the 2d+1 interleaving contract of builder schedules.

    The loop variables must appear exactly once each, in domain order, with
    a static integer position first, last, and between any two variables —
    the shape :meth:`repro.scop.builder.ScopBuilder.stmt` produces.
    """
    names = [
        (entry, tokens[index])
        for index, entry in enumerate(entries)
        if isinstance(entry, str)
    ]
    expected = list(domain.variables)
    actual = [entry for entry, _ in names]
    if actual != expected:
        for entry, token in names:
            if entry not in expected:
                ts.error(
                    f"schedule names {entry!r} which is not a loop variable "
                    f"of this statement (domain variables: "
                    f"{', '.join(expected) or 'none'})",
                    token,
                )
        ts.error(
            f"schedule must list the loop variables in domain order "
            f"({', '.join(expected) or 'none'}), got {', '.join(actual) or 'none'}",
            open_token,
        )
    if not entries or not isinstance(entries[0], int) or not isinstance(entries[-1], int):
        ts.error(
            "schedule must start and end with a static position (an integer)",
            open_token,
        )
    for index in range(len(entries) - 1):
        if isinstance(entries[index], str) and isinstance(entries[index + 1], str):
            ts.error(
                "schedule needs a static position (an integer) between "
                f"{entries[index]!r} and {entries[index + 1]!r}",
                tokens[index + 1],
            )


# ----------------------------------------------------------------------
# Bodies
# ----------------------------------------------------------------------
def _parse_body(ts: TokenStream) -> Tuple[AccessDecl, ...]:
    if ts.at_name("access") and ts.peek(1).kind == OP and ts.peek(1).text == "(":
        return _parse_access_list(ts)
    return _parse_assignment(ts)


def _parse_assignment(ts: TokenStream) -> Tuple[AccessDecl, ...]:
    target_token = ts.peek()
    if target_token.kind != NAME:
        ts.error(
            f"expected a statement body (an assignment or access(...)), "
            f"got {target_token.describe()}"
        )
    target = _parse_access(ts)
    op_token = ts.peek()
    if not (op_token.kind == OP and op_token.text in ASSIGN_OPS):
        ts.error(
            "expected an assignment operator (=, +=, -=, *=, /=) after "
            f"{target.array!r}, got {op_token.describe()}"
        )
    ts.next()
    rhs = parse_expression(ts)
    accesses: List[AccessDecl] = []
    _collect_reads(ts, rhs, accesses)
    if op_token.text != "=":
        accesses.append(
            AccessDecl(target.array, target.indices, False, target.token)
        )
    accesses.append(AccessDecl(target.array, target.indices, True, target.token))
    return tuple(accesses)


def _collect_reads(ts: TokenStream, node: ExprNode, out: List[AccessDecl]) -> None:
    """Array accesses of an expression tree, left-to-right; scalars ignored."""
    if isinstance(node, (Num, Name)):
        return
    if isinstance(node, Neg):
        _collect_reads(ts, node.operand, out)
        return
    if isinstance(node, BinOp):
        _collect_reads(ts, node.left, out)
        _collect_reads(ts, node.right, out)
        return
    assert isinstance(node, ArrayIndex)
    out.append(_resolve_access(ts, node))


def _parse_access(ts: TokenStream) -> AccessDecl:
    token = ts.expect_name("an array name")
    if not ts.at_op("["):
        ts.error(
            f"expected '[' after {token.text!r}: statement bodies access "
            "array elements (bare names are register scalars and carry no "
            "memory accesses)",
            token,
        )
    indices: List[ExprNode] = []
    while ts.at_op("["):
        ts.next()
        indices.append(parse_expression(ts))
        ts.expect_op("]", "to close the index expression")
    return _resolve_access(ts, ArrayIndex(token.text, tuple(indices), token))


def _resolve_access(ts: TokenStream, node: ArrayIndex) -> AccessDecl:
    exprs = tuple(
        expression_to_poly(ts, index, where="an array index expression")
        for index in node.indices
    )
    return AccessDecl(node.array, exprs, False, node.token)


def _parse_access_list(ts: TokenStream) -> Tuple[AccessDecl, ...]:
    ts.next()  # 'access'
    ts.expect_op("(", "after 'access'")
    accesses: List[AccessDecl] = []
    if not ts.at_op(")"):
        while True:
            keyword = ts.expect_name("'read' or 'write'")
            if keyword.text not in ("read", "write"):
                ts.error(
                    f"expected 'read' or 'write', got {keyword.text!r}", keyword
                )
            access = _parse_access(ts)
            if keyword.text == "write":
                access = AccessDecl(access.array, access.indices, True, access.token)
            accesses.append(access)
            if ts.at_op(","):
                ts.next()
                if ts.at_op(")"):
                    break
                continue
            break
    ts.expect_op(")", "to close the access list")
    return tuple(accesses)
