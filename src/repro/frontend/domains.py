"""Expression and iteration-domain parsing for the kernel DSL.

Two layers live here:

* a small recursive-descent **expression parser** producing an AST shared by
  domain constraints, array extents, array index expressions, and statement
  right-hand sides (`parse_expression`), plus the conversion of the affine
  subset into :class:`~repro.isl.qpoly.QPoly` (`expression_to_poly`);
* the **ISL-style domain parser**: ``{ [i, j] : 0 <= i < N and 0 <= j < M }``
  with chained comparisons, conjunction via ``and``, and equality via ``==``
  (`parse_domain_body`, and the standalone helper `parse_domain`).

Chained comparisons desugar pairwise exactly like the ``ge``/``le``/``lt``
constructors of :mod:`repro.isl.constraints` — ``0 <= i < N`` becomes the two
normal-form constraints ``i >= 0`` and ``N - i - 1 >= 0``, which is precisely
what :meth:`repro.scop.builder.ScopBuilder.loop` emits for a half-open C
loop.  That shared normal form (and the preserved textual constraint order)
is what makes ``parse(unparse(scop))`` reproduce a byte-identical
:class:`~repro.isl.constraints.ConstraintSystem`.

Affinity is *not* checked here: ``N*i`` is non-affine before dataset
substitution and affine after it, so the degree check happens in
:meth:`repro.frontend.parser.KernelProgram.instantiate` once the sizes are
concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from ..isl.constraints import ConstraintSystem, Constraint, EQ, INEQ
from ..isl.qpoly import QPoly
from .lexer import INT, NAME, OP, Token, TokenStream

__all__ = [
    "ArrayIndex",
    "BinOp",
    "ConstraintDecl",
    "DomainDecl",
    "ExprNode",
    "Name",
    "Neg",
    "Num",
    "expression_to_poly",
    "parse_domain",
    "parse_domain_body",
    "parse_expression",
]


# ----------------------------------------------------------------------
# Expression AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: int
    token: Token


@dataclass(frozen=True)
class Name:
    ident: str
    token: Token


@dataclass(frozen=True)
class Neg:
    operand: "ExprNode"
    token: Token


@dataclass(frozen=True)
class BinOp:
    op: str  # "+", "-", "*", "/"
    left: "ExprNode"
    right: "ExprNode"
    token: Token


@dataclass(frozen=True)
class ArrayIndex:
    """``name[e1][e2]...`` — an array access appearing in an expression."""

    array: str
    indices: Tuple["ExprNode", ...]
    token: Token


ExprNode = Union[Num, Name, Neg, BinOp, ArrayIndex]


# ----------------------------------------------------------------------
# Expression parsing (precedence: unary minus > * / > + -)
# ----------------------------------------------------------------------
def parse_expression(ts: TokenStream) -> ExprNode:
    node = _parse_term(ts)
    while ts.at_op("+") or ts.at_op("-"):
        op = ts.next()
        right = _parse_term(ts)
        node = BinOp(op.text, node, right, op)
    return node


def _parse_term(ts: TokenStream) -> ExprNode:
    node = _parse_unary(ts)
    while ts.at_op("*") or ts.at_op("/"):
        op = ts.next()
        right = _parse_unary(ts)
        node = BinOp(op.text, node, right, op)
    return node


def _parse_unary(ts: TokenStream) -> ExprNode:
    if ts.at_op("-"):
        op = ts.next()
        return Neg(_parse_unary(ts), op)
    return _parse_atom(ts)


def _parse_atom(ts: TokenStream) -> ExprNode:
    token = ts.peek()
    if token.kind == INT:
        ts.next()
        return Num(int(token.text), token)
    if token.kind == NAME:
        ts.next()
        if ts.at_op("["):
            indices: List[ExprNode] = []
            while ts.at_op("["):
                ts.next()
                indices.append(parse_expression(ts))
                ts.expect_op("]", "to close the index expression")
            return ArrayIndex(token.text, tuple(indices), token)
        return Name(token.text, token)
    if token.kind == OP and token.text == "(":
        ts.next()
        node = parse_expression(ts)
        ts.expect_op(")", "to close the parenthesized expression")
        return node
    ts.error(f"expected an expression, got {token.describe()}")


# ----------------------------------------------------------------------
# Affine conversion
# ----------------------------------------------------------------------
def expression_to_poly(ts: TokenStream, node: ExprNode, *, where: str) -> QPoly:
    """Convert an expression AST to a :class:`QPoly` or fail with a location.

    Division and array accesses have no polynomial meaning and are rejected;
    multiplication is allowed (the product may become affine only after
    dataset substitution, e.g. ``N*i``), so the degree check is deferred to
    instantiation.
    """
    if isinstance(node, Num):
        return QPoly.constant(node.value)
    if isinstance(node, Name):
        return QPoly.variable(node.ident)
    if isinstance(node, Neg):
        return -expression_to_poly(ts, node.operand, where=where)
    if isinstance(node, BinOp):
        if node.op == "/":
            ts.error(
                f"division is not allowed in {where} (index and bound "
                "expressions must be affine)",
                node.token,
            )
        left = expression_to_poly(ts, node.left, where=where)
        right = expression_to_poly(ts, node.right, where=where)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        return left * right
    assert isinstance(node, ArrayIndex)
    ts.error(
        f"array access {node.array!r} is not allowed in {where} "
        "(indirect addressing is not affine)",
        node.token,
    )


# ----------------------------------------------------------------------
# Domains
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstraintDecl:
    """One constraint ``expr >= 0`` (kind ``ineq``) or ``expr == 0`` (``eq``).

    ``expr`` is the pre-substitution polynomial: loop variables and dataset
    parameters both appear symbolically until instantiation.
    """

    expr: QPoly
    kind: str
    token: Token


@dataclass(frozen=True)
class DomainDecl:
    """A parsed iteration domain: ordered variables plus constraints."""

    variables: Tuple[str, ...]
    constraints: Tuple[ConstraintDecl, ...]
    token: Token


#: Comparison operators usable in constraint chains.
RELOPS = ("<=", "<", ">=", ">", "==", "=")


def parse_domain_body(ts: TokenStream) -> DomainDecl:
    """Parse ``{ [vars] : constraints }`` (the ``: constraints`` part optional)."""
    open_token = ts.expect_op("{", "to open the iteration domain")
    ts.expect_op("[", "to open the loop-variable list")
    variables: List[str] = []
    if not ts.at_op("]"):
        while True:
            token = ts.expect_name("a loop variable name")
            if token.text in variables:
                ts.error(f"duplicate loop variable {token.text!r}", token)
            variables.append(token.text)
            if ts.at_op(","):
                ts.next()
                continue
            break
    ts.expect_op("]", "to close the loop-variable list")
    constraints: List[ConstraintDecl] = []
    if ts.at_op(":"):
        ts.next()
        if not ts.at_op("}"):
            while True:
                constraints.extend(_parse_constraint_chain(ts))
                if ts.at_name("and"):
                    ts.next()
                    continue
                break
    ts.expect_op("}", "to close the iteration domain")
    return DomainDecl(tuple(variables), tuple(constraints), open_token)


def _parse_constraint_chain(ts: TokenStream) -> List[ConstraintDecl]:
    """``expr (relop expr)+`` — each adjacent pair yields one constraint."""
    exprs: List[QPoly] = [_parse_affine(ts, where="a domain constraint")]
    ops: List[Token] = []
    while ts.peek().kind == OP and ts.peek().text in RELOPS:
        ops.append(ts.next())
        exprs.append(_parse_affine(ts, where="a domain constraint"))
    if not ops:
        ts.error("expected a comparison operator (<=, <, >=, >, ==) after the expression")
    out: List[ConstraintDecl] = []
    for index, op in enumerate(ops):
        a, b = exprs[index], exprs[index + 1]
        if op.text == "<=":
            out.append(ConstraintDecl(b - a, INEQ, op))
        elif op.text == "<":
            out.append(ConstraintDecl(b - a - 1, INEQ, op))
        elif op.text == ">=":
            out.append(ConstraintDecl(a - b, INEQ, op))
        elif op.text == ">":
            out.append(ConstraintDecl(a - b - 1, INEQ, op))
        else:  # "==" or "="
            out.append(ConstraintDecl(a - b, EQ, op))
    return out


def _parse_affine(ts: TokenStream, *, where: str) -> QPoly:
    return expression_to_poly(ts, parse_expression(ts), where=where)


def parse_domain(text: str, *, filename: str = "<domain>"):
    """Parse a standalone ISL-style set string into its components.

    Returns ``(variables, system)``: the ordered loop-variable tuple and the
    :class:`ConstraintSystem` (names other than the declared variables stay
    symbolic, i.e. act as parameters).  Intended for interactive exploration
    and tests; kernel files go through :func:`repro.frontend.parse_kernel`.
    """
    ts = TokenStream(text, filename)
    decl = parse_domain_body(ts)
    if not ts.at_eof():
        ts.error(f"unexpected trailing input after the domain: {ts.peek().describe()}")
    system = ConstraintSystem()
    for constraint in decl.constraints:
        if not constraint.expr.is_affine():
            ts.error("constraint is not affine", constraint.token)
        system.add(Constraint(constraint.expr, constraint.kind))
    return decl.variables, system
