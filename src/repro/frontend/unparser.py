"""Render a :class:`~repro.scop.scop.Scop` back to kernel DSL text.

The inverse of :func:`repro.frontend.parse_kernel` up to the round-trip
contract: for any scop ``s`` the frontend can express,
``parse_kernel(unparse(s)).instantiate(sizes)`` rebuilds a scop with
byte-identical arrays, domains (same constraints in the same order),
schedules, and ordered access lists — and therefore an identical analysis
result and store digest.  A registered scop's loop bounds are already
concrete, so the rendered constraints are concrete too; the scop's
``context`` is emitted as a dataset block for documentation and so that the
file names its size parameters.

Statements whose access list is "reads, then exactly one write" are rendered
with assignment sugar (``C[i][j] = A[i][k] * B[k][j] * C[i][j]`` — the body
operator is cosmetic, only the access order matters); anything else falls
back to the explicit ``access(read ..., write ...)`` form, which can express
every ordered access list.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import List

from ..isl.constraints import EQ
from ..isl.qpoly import QPoly
from ..scop.scop import Scop, Statement

__all__ = ["UnparseError", "unparse"]


class UnparseError(ValueError):
    """The scop uses a feature the kernel DSL cannot express.

    Raised for quasi-affine index expressions (floor divisions), fractional
    coefficients, non-affine polynomials, or names that are not valid DSL
    identifiers.  Builder- and frontend-produced scops never trigger this.
    """


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def _check_identifier(name: str, what: str) -> str:
    from .parser import RESERVED_WORDS

    if not _IDENT_RE.match(name):
        raise UnparseError(f"{what} {name!r} is not a valid DSL identifier")
    if name in RESERVED_WORDS:
        raise UnparseError(f"{what} {name!r} is a reserved word in the DSL")
    return name


def _render_affine(poly: QPoly, what: str) -> str:
    """An affine :class:`QPoly` as DSL expression text (re-parses identically)."""
    items = poly._canonical_items()
    if not items:
        return "0"
    parts: List[str] = []
    for monomial, coeff in items:
        if not isinstance(coeff, Fraction) or coeff.denominator != 1:
            raise UnparseError(
                f"{what} has a fractional coefficient ({coeff}), which the "
                "DSL cannot express"
            )
        magnitude = abs(coeff.numerator)
        if monomial == ():
            term = str(magnitude)
        else:
            if len(monomial) != 1 or monomial[0][1] != 1:
                raise UnparseError(f"{what} is not affine: {poly}")
            symbol = monomial[0][0]
            if not isinstance(symbol, str):
                raise UnparseError(
                    f"{what} contains a floor division ({symbol!r}); "
                    "quasi-affine expressions are outside the DSL"
                )
            _check_identifier(symbol, f"variable in {what}")
            term = symbol if magnitude == 1 else f"{magnitude}*{symbol}"
        if not parts:
            parts.append(f"-{term}" if coeff < 0 else term)
        else:
            parts.append(f"- {term}" if coeff < 0 else f"+ {term}")
    return " ".join(parts)


def _render_kernel_name(name: str) -> str:
    if _IDENT_RE.match(name):
        from .parser import RESERVED_WORDS

        if name not in RESERVED_WORDS:
            return f"kernel {name}"
    if '"' in name or "\n" in name or not name:
        raise UnparseError(f"kernel name {name!r} cannot be quoted in the DSL")
    return f'kernel "{name}"'


def _render_statement(statement: Statement) -> List[str]:
    name = _check_identifier(statement.name, "statement name")
    for variable in statement.loop_vars:
        _check_identifier(variable, f"loop variable of statement {name!r}")
    head = f"{name}: {{ [{', '.join(statement.loop_vars)}]"
    clauses = []
    for constraint in statement.domain.constraints:
        expr = _render_affine(
            constraint.expr, f"constraint of statement {name!r}"
        )
        op = "==" if constraint.kind == EQ else ">="
        clauses.append(f"{expr} {op} 0")
    if clauses:
        head += " : " + " and ".join(clauses)
    head += " }"
    lines = [head]
    entries = []
    for entry in statement.schedule:
        if isinstance(entry, int):
            entries.append(str(entry))
        else:
            entries.append(_check_identifier(entry, f"schedule entry of {name!r}"))
    lines.append(f"    schedule [{', '.join(entries)}]")
    lines.append(f"    {_render_body(statement)}")
    return lines


def _render_body(statement: Statement) -> str:
    accesses = statement.accesses
    rendered = [
        (
            _check_identifier(ref.array.name, "array name")
            + "".join(
                f"[{_render_affine(index, f'index of access to {ref.array.name!r}')}]"
                for index in ref.indices
            ),
            ref.is_write,
        )
        for ref in accesses
    ]
    if not rendered:
        return "access()"
    # Sugar applies iff the list is "only reads, then exactly one write":
    # the sugar's desugaring reproduces that order verbatim.
    if rendered[-1][1] and not any(is_write for _, is_write in rendered[:-1]):
        reads = [text for text, _ in rendered[:-1]]
        rhs = " * ".join(reads) if reads else "0"
        return f"{rendered[-1][0]} = {rhs}"
    parts = [
        f"{'write' if is_write else 'read'} {text}" for text, is_write in rendered
    ]
    return f"access({', '.join(parts)})"


def unparse(scop: Scop, *, dataset: str = "mini") -> str:
    """Render ``scop`` as kernel DSL text (see the round-trip contract above).

    ``dataset`` names the single emitted dataset block, which carries the
    scop's ``context`` parameters; with an empty context no block is emitted
    and parsing falls back to an empty default ``mini`` dataset.
    """
    lines: List[str] = [_render_kernel_name(scop.name), ""]
    if scop.context:
        bindings = ", ".join(
            f"{_check_identifier(name, 'size parameter')} = {int(value)}"
            for name, value in scop.context.items()
        )
        _check_identifier(dataset, "dataset name")
        lines.append(f"dataset {dataset} {{ {bindings} }}")
        lines.append("")
    for array in scop.arrays.values():
        decl = "array " + _check_identifier(array.name, "array name")
        decl += "".join(f"[{extent}]" for extent in array.shape)
        if array.element_size != 8:
            decl += f" elem {array.element_size}"
        lines.append(decl)
    if scop.arrays:
        lines.append("")
    for statement in scop.statements:
        lines.extend(_render_statement(statement))
        lines.append("")
    return "\n".join(lines)
