"""Located errors for the kernel DSL frontend.

Every parse or validation failure in :mod:`repro.frontend` raises a single
exception type, :class:`KernelParseError`, carrying the source position
(``file:line:col``) and the offending source line.  The CLI prints
:meth:`KernelParseError.render` — message plus a caret snippet — and exits
with status 2; programmatic callers can catch the one type and inspect the
structured fields instead of scraping tracebacks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["KernelParseError"]


class KernelParseError(Exception):
    """A located syntax or semantic error in kernel DSL input.

    ``line`` and ``col`` are 1-based; ``source_line`` is the raw text of the
    offending line (tabs replaced by single spaces so the caret stays
    aligned).  All location fields are optional: errors detected without a
    token (e.g. an empty file) omit them.
    """

    def __init__(
        self,
        message: str,
        *,
        filename: Optional[str] = None,
        line: Optional[int] = None,
        col: Optional[int] = None,
        source_line: Optional[str] = None,
    ) -> None:
        self.message = message
        self.filename = filename or "<kernel>"
        self.line = line
        self.col = col
        self.source_line = (
            source_line.replace("\t", " ") if source_line is not None else None
        )
        super().__init__(self._format())

    def _format(self) -> str:
        location = self.filename
        if self.line is not None:
            location += f":{self.line}"
            if self.col is not None:
                location += f":{self.col}"
        return f"{location}: {self.message}"

    def render(self) -> str:
        """Multi-line rendering with a caret pointing at the error column."""
        out: List[str] = [self._format()]
        if self.source_line is not None and self.col is not None:
            out.append("    " + self.source_line)
            out.append("    " + " " * (self.col - 1) + "^")
        return "\n".join(out)


def located_error(
    message: str,
    *,
    filename: str,
    lines: Sequence[str],
    line: Optional[int] = None,
    col: Optional[int] = None,
) -> KernelParseError:
    """Build a :class:`KernelParseError` resolving the source line text."""
    source_line = None
    if line is not None and 1 <= line <= len(lines):
        source_line = lines[line - 1]
    return KernelParseError(
        message, filename=filename, line=line, col=col, source_line=source_line
    )
