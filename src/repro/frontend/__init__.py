"""Textual kernel frontend: parse ``.knl`` files into analyzable scops.

The kernel DSL describes an affine loop nest the same way the paper's
frontend summarises one — ISL-style iteration domains, explicit 2d+1
schedules, and ordered affine array accesses — in a plain text file::

    kernel gemm

    dataset mini { NI = 10, NJ = 12, NK = 14 }

    array C[NI][NJ]
    array A[NI][NK]
    array B[NK][NJ]

    S0: { [i, j] : 0 <= i < NI and 0 <= j < NJ }
        schedule [0, i, 0, j, 0]
        C[i][j] *= beta

    S1: { [i, k, j] : 0 <= i < NI and 0 <= k < NK and 0 <= j < NJ }
        schedule [0, i, 1, k, 0, j, 0]
        C[i][j] += A[i][k] * B[k][j]

Entry points:

* :func:`parse_kernel` / :func:`parse_kernel_path` — text to
  :class:`KernelProgram` (all syntax checked, located errors);
* :meth:`KernelProgram.instantiate` — dataset sizes to a concrete
  :class:`~repro.scop.scop.Scop` (semantic checks: affinity, ranks, bounds);
* :func:`register_kernel_file` — plug a file into the kernel registry so the
  Session/batch/store machinery treats it like a built-in kernel;
* :func:`unparse` — render any expressible scop back to DSL text
  (round-trips to an identical analysis result);
* :func:`parse_domain` — standalone ISL-style set parsing for tests and
  interactive exploration.

All failures raise :class:`KernelParseError` with ``file:line:col`` and a
caret snippet (see :meth:`KernelParseError.render`).  The complete language
reference lives in ``docs/KERNEL_DSL.md``.
"""

from .errors import KernelParseError
from .domains import parse_domain
from .parser import (
    KernelProgram,
    parse_kernel,
    parse_kernel_path,
    register_kernel_file,
)
from .unparser import UnparseError, unparse

__all__ = [
    "KernelParseError",
    "KernelProgram",
    "UnparseError",
    "parse_domain",
    "parse_kernel",
    "parse_kernel_path",
    "register_kernel_file",
    "unparse",
]
