"""PolyCache surrogate baseline (per-cache-set analysis).

PolyCache (Bao et al., POPL 2017) is the analytical model the paper compares
against in Figure 15a.  It models *set-associative* caches by analysing every
cache set separately, which is precise but expensive: its cost grows with the
number of cache sets and the associativity.

The original implementation is not available, so this surrogate reproduces
its *cost structure* rather than its algorithm: the reference stack-distance
computation is partitioned by cache set and every set is processed
independently (optionally restricted to a subset of sets, mirroring the
published experiments that parallelise over 1024 sets).  The miss counts it
produces are exact for a set-associative LRU cache, so the baseline is also
used as an accuracy reference.  See DESIGN.md (substitutions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..scop.scop import Scop
from ..simulator.lru import StackDistanceProfiler
from ..simulator.trace import TraceGenerator

__all__ = ["PolyCacheResult", "PolyCacheSurrogate"]


@dataclass
class PolyCacheResult:
    kernel: str
    cache_size: int
    associativity: int
    misses: int
    accesses: int
    elapsed_seconds: float
    sets_analyzed: int


class PolyCacheSurrogate:
    """Per-set LRU analysis of a set-associative cache."""

    def __init__(self, cache_size: int, line_size: int = 64, associativity: int = 4) -> None:
        if cache_size % (line_size * associativity):
            raise ValueError("cache size must be a multiple of line size * associativity")
        self.cache_size = cache_size
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = cache_size // (line_size * associativity)

    def analyze(self, scop: Scop, *, sets: Optional[Sequence[int]] = None) -> PolyCacheResult:
        """Analyse ``scop``; ``sets`` restricts the analysed cache sets."""
        start = time.perf_counter()
        selected = list(range(self.num_sets)) if sets is None else list(sets)
        selected_set = set(selected)

        generator = TraceGenerator(scop, line_size=self.line_size, padded=True)
        per_set_traces: Dict[int, List[int]] = {index: [] for index in selected}
        accesses = 0
        for line in generator.line_trace():
            accesses += 1
            set_index = line % self.num_sets
            if set_index in selected_set:
                per_set_traces[set_index].append(line)

        misses = 0
        profiler = StackDistanceProfiler()
        for set_index in selected:
            trace = per_set_traces[set_index]
            if not trace:
                continue
            compulsory, capacity = profiler.misses_for_capacity(trace, self.associativity)
            misses += compulsory + capacity
        elapsed = time.perf_counter() - start
        return PolyCacheResult(
            kernel=scop.name,
            cache_size=self.cache_size,
            associativity=self.associativity,
            misses=misses,
            accesses=accesses,
            elapsed_seconds=elapsed,
            sets_analyzed=len(selected),
        )
