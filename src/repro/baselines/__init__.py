"""Baseline cache-analysis tools the paper compares against."""

from .polycache import PolyCacheResult, PolyCacheSurrogate

__all__ = ["PolyCacheResult", "PolyCacheSurrogate"]
