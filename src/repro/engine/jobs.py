"""Job matrix descriptions for the batch analysis engine.

A :class:`JobSpec` is a picklable, declarative description of one analytical
model run: which program (a PolyBench kernel name + dataset, or a pre-built
:class:`~repro.scop.Scop`), which machine model, and which model options.
:func:`expand_matrix` builds the full cross product the CLI and the benchmark
harness fan out over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..scop import Scop

__all__ = ["JobSpec", "expand_matrix"]


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: analyze one program against one machine model.

    Exactly one of two program sources is used: when ``scop`` is set it is
    analyzed directly (the benchmark harness ships its scaled kernels this
    way); otherwise ``kernel``/``dataset`` name a PolyBench kernel that the
    worker instantiates via :func:`repro.scop.polybench.build_kernel`.
    Building in the worker keeps the pickled payload small for registry jobs.
    """

    kernel: str
    dataset: str = "mini"
    scop: Optional[Scop] = field(default=None, repr=False, compare=False)
    line_size: int = 64
    #: Cache sizes in bytes, innermost level first (L1, L2, ...).
    levels: Tuple[int, ...] = (32 * 1024,)
    fallback: bool = True
    equalization: bool = True
    rasterization: bool = True
    partial_enumeration: bool = True
    #: Deterministic symbolic work budget (``None`` = unlimited); identical
    #: on every worker, so budgeted fallback decisions are reproducible.
    symbolic_work_budget: Optional[int] = None
    #: Validate the symbolic result against the trace-based reference
    #: (slow; test/benchmark use).
    cross_check: bool = False
    #: Concrete-pipeline backend (``"auto"``/``"numpy"``/``"python"``).  A
    #: run configuration like the store path, not part of the job identity:
    #: both backends produce identical results, so store entries and memo
    #: keys are shared across them (and the store never masks a backend
    #: divergence because equivalence jobs run store-less).
    backend: str = field(default="auto", compare=False)
    #: Extra miss-curve breakpoints in bytes (see
    #: :attr:`repro.core.model.ModelOptions.curve_capacities`).  Part of the
    #: job identity: the curve rides inside the result payload, so runs with
    #: different sweep grids must not alias one store entry.
    curve_capacities: Tuple[int, ...] = ()

    def key(self) -> Tuple:
        """Hashable identity used for result memoization.

        For scop-backed jobs the key is a full structural fingerprint —
        size context, arrays (shape and element size), and per statement the
        loop variables, iteration-domain constraints, and access expressions
        — so two same-named scops never alias unless they describe the same
        program.
        """
        scop_identity: Tuple = ()
        if self.scop is not None:
            scop_identity = (
                tuple(sorted(self.scop.context.items())),
                tuple(
                    (array.name, array.shape, array.element_size)
                    for array in sorted(self.scop.arrays.values(), key=lambda a: a.name)
                ),
                tuple(
                    (
                        statement.name,
                        statement.loop_vars,
                        frozenset(
                            (c.kind, c.expr._canonical_items()) for c in statement.domain.constraints
                        ),
                        tuple(
                            (ref.array.name, ref.is_write, ref.indices)
                            for ref in statement.accesses
                        ),
                    )
                    for statement in self.scop.statements
                ),
            )
        return (
            self.kernel,
            self.dataset if self.scop is None else None,
            scop_identity,
            self.line_size,
            self.levels,
            self.fallback,
            self.equalization,
            self.rasterization,
            self.partial_enumeration,
            self.symbolic_work_budget,
            self.cross_check,
            self.curve_capacities,
        )

    def describe(self) -> str:
        levels = "+".join(str(size) for size in self.levels)
        source = self.kernel if self.scop is not None else f"{self.kernel}/{self.dataset}"
        return f"{source} @ {levels}"


def expand_matrix(
    kernels: Sequence[str],
    datasets: Sequence[str] = ("mini",),
    level_sets: Sequence[Tuple[int, ...]] = ((32 * 1024,),),
    *,
    line_size: int = 64,
    fallback: bool = True,
    symbolic_work_budget: Optional[int] = None,
    options: Optional[Dict[str, bool]] = None,
) -> List[JobSpec]:
    """Cross product kernel x dataset x machine levels, in deterministic order.

    The order is row-major over the argument order (kernels outermost), so a
    batch run enumerates jobs the same way regardless of worker count.
    """
    toggles = {
        "equalization": True,
        "rasterization": True,
        "partial_enumeration": True,
    }
    if options:
        unknown = set(options) - set(toggles)
        if unknown:
            raise ValueError(f"unknown model options: {', '.join(sorted(unknown))}")
        toggles.update(options)
    jobs: List[JobSpec] = []
    for kernel in kernels:
        for dataset in datasets:
            for levels in level_sets:
                jobs.append(
                    JobSpec(
                        kernel=kernel,
                        dataset=dataset,
                        line_size=line_size,
                        levels=tuple(levels),
                        fallback=fallback,
                        symbolic_work_budget=symbolic_work_budget,
                        **toggles,
                    )
                )
    return jobs
