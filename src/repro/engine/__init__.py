"""Batch analysis engine: parallel fan-out of analytical model runs.

The engine layer turns the one-kernel-at-a-time :class:`repro.core.CacheModel`
into a throughput-oriented service:

* :mod:`repro.engine.jobs` describes a *job matrix* (kernel x dataset x
  machine model x options) as picklable :class:`JobSpec` records,
* :mod:`repro.engine.batch` fans the jobs out across a ``multiprocessing``
  worker pool with deterministic result ordering and per-job error capture
  (one failed kernel never kills the batch),
* :mod:`repro.engine.cache` provides the per-job memoizing cardinality cache
  that the model threads through its first-touch and capacity counts,
* :mod:`repro.engine.store` adds the persistent, content-addressed disk tier
  behind both: cardinality counts and whole model results survive across
  processes and runs, with code-version invalidation and an LRU size cap.

``repro.core`` imports :mod:`repro.engine.cache` while
:mod:`repro.engine.batch` imports ``repro.core``; the batch/jobs names are
therefore re-exported lazily to keep the import graph acyclic.
"""

from __future__ import annotations

from .cache import CardinalityCache, CardinalityCacheStats

__all__ = [
    "AnalysisStore",
    "BatchEngine",
    "BatchResult",
    "CardinalityCache",
    "CardinalityCacheStats",
    "JobError",
    "JobRecord",
    "JobSpec",
    "LocalDirBackend",
    "PersistentCardinalityCache",
    "SQLiteBackend",
    "StoreBackend",
    "StoreStats",
    "default_store_path",
    "expand_matrix",
    "job_digest",
    "make_store_spec",
    "stable_digest",
    "validate_store_env",
    "validate_store_path",
]

_LAZY = {
    "BatchEngine": "batch",
    "BatchResult": "batch",
    "JobError": "batch",
    "JobRecord": "batch",
    "JobSpec": "jobs",
    "expand_matrix": "jobs",
    "AnalysisStore": "store",
    "LocalDirBackend": "store",
    "PersistentCardinalityCache": "store",
    "SQLiteBackend": "store",
    "StoreBackend": "store",
    "StoreStats": "store",
    "default_store_path": "store",
    "job_digest": "store",
    "make_store_spec": "store",
    "stable_digest": "store",
    "validate_store_env": "store",
    "validate_store_path": "store",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
