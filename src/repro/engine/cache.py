"""Memoizing cache around :func:`repro.isl.counting.cardinality`.

The analytical model counts the same polyhedral sets repeatedly: the domain
of a constant-distance piece is counted once per cache level, and identical
references of different statements produce structurally equal first-touch
domains and miss sets.  The symbolic counter re-derives every count from
scratch, so memoizing on a canonical form of ``(domain, count_vars)`` removes
real work from the hot path.

Constraint systems store their constraints normalized (coprime integer
coefficients, tightest bound per direction), so the canonical key is simply
the unordered set of ``(kind, canonical monomials)`` pairs; two systems that
describe the same conjunction in a different order or construction history
hash to the same key.

A cache instance is created per analysis job (see
:meth:`repro.core.model.CacheModel.analyze`) and its hit/miss statistics are
surfaced in :class:`repro.core.results.TimingBreakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..isl.constraints import ConstraintSystem
from ..isl.counting import cardinality as _cardinality

__all__ = ["CardinalityCache", "CardinalityCacheStats", "canonical_key"]


def canonical_key(system: ConstraintSystem, count_vars: Sequence[str]) -> Tuple:
    """Hashable canonical form of a counting problem.

    The constraint set is order-insensitive (a frozenset) because
    :meth:`ConstraintSystem.add` already normalizes and deduplicates
    constraints; the count variables stay ordered because the summation
    order is part of the problem statement.
    """
    constraints = frozenset(
        (constraint.kind, constraint.expr._canonical_items())
        for constraint in system.constraints
    )
    return (constraints, tuple(count_vars))


@dataclass
class CardinalityCacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CardinalityCacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


class CardinalityCache:
    """Memoizes integer-point counts of non-parametric sets.

    The cache stores plain integers, so sharing one instance across the
    levels and accesses of a job is always sound: two counting problems with
    the same canonical key have the same cardinality by construction.
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple, int] = {}
        self.stats = CardinalityCacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def cardinality(self, system: ConstraintSystem, count_vars: Sequence[str]) -> int:
        """Cached equivalent of :func:`repro.isl.counting.cardinality`.

        Errors are not cached: a :class:`CountingError` propagates to the
        caller (which typically requests a model-level fallback), and the
        next lookup of the same key recomputes.
        """
        key = canonical_key(system, count_vars)
        try:
            value = self._store[key]
        except KeyError:
            self.stats.misses += 1
            value = _cardinality(system, count_vars)
            self._store[key] = value
            return value
        self.stats.hits += 1
        return value

    def clear(self) -> None:
        self._store.clear()
        self.stats = CardinalityCacheStats()
