"""Parallel fan-out of analytical model jobs over a worker pool.

:class:`BatchEngine` takes a list of :class:`~repro.engine.jobs.JobSpec`
records and runs them either inline (``jobs=1``) or across a
``multiprocessing`` pool.  Three invariants hold regardless of worker count:

* **deterministic ordering** — results come back in job-list order
  (``Pool.map`` preserves it), so a parallel batch is byte-identical to the
  sequential one;
* **error isolation** — exceptions are caught inside the worker and recorded
  on the :class:`JobRecord`; one failed kernel never kills the batch;
* **per-job caching** — every job runs with a fresh
  :class:`~repro.engine.cache.CardinalityCache` whose hit/miss statistics
  travel back in the result's :class:`~repro.core.results.TimingBreakdown`.

With a configured :class:`~repro.engine.store.AnalysisStore` path the engine
is additionally **incremental**: before dispatching, every job's
content-addressed digest (:func:`~repro.engine.store.job_digest`) is looked
up in the store, hits become cached :class:`JobRecord` entries without
touching the pool, and only the misses are computed (their results are
written back for the next run).  Workers open their own store handle for the
persistent cardinality tier, so even a cold job benefits from counts derived
by earlier runs or sibling workers.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from ..core.results import ModelResult
from .jobs import JobSpec
from .store import AnalysisStore, job_digest

__all__ = ["BatchEngine", "BatchResult", "JobRecord", "run_batch"]

#: JSON schema version of the serialized batch payload.
SCHEMA_VERSION = 2


@dataclass
class JobRecord:
    """Outcome of one job: either a :class:`ModelResult` or a captured error."""

    kernel: str
    dataset: str
    levels: List[int]
    line_size: int
    status: str = "ok"
    error: str = ""
    elapsed_seconds: float = 0.0
    result: Optional[ModelResult] = None
    #: True when the result was served from the persistent analysis store
    #: instead of being computed by this run.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def used_fallback(self) -> bool:
        return bool(self.result is not None and self.result.used_fallback)

    def to_dict(self) -> Dict:
        return {
            "kernel": self.kernel,
            "dataset": self.dataset,
            "levels": list(self.levels),
            "line_size": self.line_size,
            "status": self.status,
            "error": self.error,
            "elapsed_seconds": self.elapsed_seconds,
            "cached": self.cached,
            "result": self.result.to_dict() if self.result is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        result = data.get("result")
        return cls(
            kernel=data["kernel"],
            dataset=data["dataset"],
            levels=list(data["levels"]),
            line_size=data["line_size"],
            status=data["status"],
            error=data.get("error", ""),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            cached=data.get("cached", False),
            result=ModelResult.from_dict(result) if result is not None else None,
        )


@dataclass
class BatchResult:
    """Structured outcome of one batch run (job-list order preserved)."""

    records: List[JobRecord] = field(default_factory=list)
    worker_count: int = 1
    elapsed_seconds: float = 0.0
    #: Result-store counters of this run (``AnalysisStore.stats.as_dict()``)
    #: or ``None`` when the engine ran store-less.
    store_stats: Optional[Dict[str, int]] = None

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def ok_count(self) -> int:
        return sum(1 for record in self.records if record.ok)

    @property
    def error_count(self) -> int:
        return len(self.records) - self.ok_count

    @property
    def fallback_count(self) -> int:
        return sum(1 for record in self.records if record.used_fallback)

    @property
    def cache_hits(self) -> int:
        """Cardinality-cache hits of the work *this run* performed.

        Records served whole from the result store carry the counters of the
        run that originally computed them; summing those here would attribute
        historical traffic to this run, so cached records are excluded (the
        same holds for the other aggregate counters below).
        """
        return sum(
            r.result.timing.cardinality_cache_hits for r in self.records if r.result and not r.cached
        )

    @property
    def cache_misses(self) -> int:
        return sum(
            r.result.timing.cardinality_cache_misses for r in self.records if r.result and not r.cached
        )

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def cached_count(self) -> int:
        """Jobs served whole from the persistent result store."""
        return sum(1 for record in self.records if record.cached)

    @property
    def cardinality_store_hits(self) -> int:
        return sum(
            r.result.timing.store_hits for r in self.records if r.result and not r.cached
        )

    @property
    def cardinality_store_misses(self) -> int:
        return sum(
            r.result.timing.store_misses for r in self.records if r.result and not r.cached
        )

    def results(self) -> List[Optional[ModelResult]]:
        """Model results in job order (``None`` for failed jobs)."""
        return [record.result for record in self.records]

    def to_dict(self) -> Dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "worker_count": self.worker_count,
            "elapsed_seconds": self.elapsed_seconds,
            "store_stats": dict(self.store_stats) if self.store_stats is not None else None,
            "jobs": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BatchResult":
        store_stats = data.get("store_stats")
        return cls(
            records=[JobRecord.from_dict(entry) for entry in data.get("jobs", [])],
            worker_count=data.get("worker_count", 1),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            store_stats=dict(store_stats) if store_stats is not None else None,
        )


def _blank_record(spec: JobSpec) -> JobRecord:
    return JobRecord(
        kernel=spec.kernel,
        dataset=spec.dataset if spec.scop is None else "-",
        levels=list(spec.levels),
        line_size=spec.line_size,
    )


def _execute_job(payload: Tuple[JobSpec, Optional[str]]) -> JobRecord:
    """Worker entry point: run one job, capturing any failure on the record.

    Module-level so it pickles for the pool; must stay side-effect free
    apart from the returned record (and the shared analysis store, whose
    writes are atomic and idempotent).  The store path travels alongside the
    spec — it configures the run but is not part of the job's identity.
    """
    spec, store_path = payload
    record = _blank_record(spec)
    start = time.perf_counter()
    try:
        if spec.scop is not None:
            scop = spec.scop
        else:
            from ..scop.polybench import build_kernel

            scop = build_kernel(spec.kernel, spec.dataset)
        machine = MachineModel(
            line_size=spec.line_size,
            levels=tuple(
                CacheLevelSpec(size, f"L{index + 1}") for index, size in enumerate(spec.levels)
            ),
        )
        options = ModelOptions(
            equalization=spec.equalization,
            rasterization=spec.rasterization,
            partial_enumeration=spec.partial_enumeration,
            fallback_to_simulation=spec.fallback,
            symbolic_work_budget=spec.symbolic_work_budget,
            cross_check=spec.cross_check,
            store_path=store_path,
        )
        record.result = CacheModel(machine, options).analyze(scop)
    except Exception as exc:  # noqa: BLE001 - error isolation is the contract
        record.status = "error"
        record.error = f"{type(exc).__name__}: {exc}"
    record.elapsed_seconds = time.perf_counter() - start
    return record


def default_worker_count() -> int:
    """Worker count when the caller does not specify one (capped at 4)."""
    return max(1, min(4, (os.cpu_count() or 1)))


class BatchEngine:
    """Runs a job matrix across a worker pool with deterministic ordering.

    With ``store_path`` set, runs are incremental: jobs whose digest is
    already in the persistent store come back as ``cached`` records and only
    the misses are dispatched to the pool.
    """

    def __init__(self, jobs: int = 1, store_path: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"worker count must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store_path = store_path

    def run(self, specs: Sequence[JobSpec]) -> BatchResult:
        start = time.perf_counter()
        store = AnalysisStore(self.store_path) if self.store_path else None
        records: List[Optional[JobRecord]] = [None] * len(specs)
        digests: List[Optional[str]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            if store is None:
                pending.append(index)
                continue
            digests[index] = job_digest(spec)
            payload = store.get_result(digests[index])
            record = _record_from_store(spec, payload) if payload is not None else None
            if record is None:
                pending.append(index)
            else:
                records[index] = record
        worker_count = min(self.jobs, len(pending)) or 1
        payloads = [(specs[index], self.store_path) for index in pending]
        if worker_count == 1:
            computed = [_execute_job(payload) for payload in payloads]
        else:
            with multiprocessing.Pool(processes=worker_count) as pool:
                computed = pool.map(_execute_job, payloads, chunksize=1)
        for index, record in zip(pending, computed):
            records[index] = record
            if store is not None and record.ok and record.result is not None:
                store.put_result(digests[index], record.result.to_dict())
        return BatchResult(
            records=[record for record in records if record is not None],
            worker_count=worker_count,
            elapsed_seconds=time.perf_counter() - start,
            store_stats=store.stats.as_dict() if store is not None else None,
        )


def _record_from_store(spec: JobSpec, payload: Dict) -> Optional[JobRecord]:
    """Cached JobRecord from a persisted result payload (None if undecodable)."""
    try:
        result = ModelResult.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None
    record = _blank_record(spec)
    record.result = result
    record.cached = True
    return record


def run_batch(
    specs: Sequence[JobSpec], jobs: int = 1, store_path: Optional[str] = None
) -> BatchResult:
    """Convenience wrapper: ``BatchEngine(jobs, store_path).run(specs)``."""
    return BatchEngine(jobs, store_path).run(specs)
