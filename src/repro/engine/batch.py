"""Parallel fan-out of analytical model jobs over a worker pool.

:class:`BatchEngine` takes a list of :class:`~repro.engine.jobs.JobSpec`
records and runs them either inline (``jobs=1``) or across a
``multiprocessing`` pool.  Three invariants hold regardless of worker count:

* **deterministic ordering** — results come back in job-list order
  (``Pool.map`` preserves it), so a parallel batch is byte-identical to the
  sequential one;
* **error isolation** — exceptions are caught inside the worker and recorded
  on the :class:`JobRecord`; one failed kernel never kills the batch;
* **per-job caching** — every job runs with a fresh
  :class:`~repro.engine.cache.CardinalityCache` whose hit/miss statistics
  travel back in the result's :class:`~repro.core.results.TimingBreakdown`.

With a configured :class:`~repro.engine.store.AnalysisStore` path the engine
is additionally **incremental**: before dispatching, every job's
content-addressed digest (:func:`~repro.engine.store.job_digest`) is looked
up in the store, hits become cached :class:`JobRecord` entries without
touching the pool, and only the misses are computed (their results are
written back for the next run).  Workers open their own store handle for the
persistent cardinality tier, so even a cold job benefits from counts derived
by earlier runs or sibling workers.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from ..core.results import ModelResult
from .jobs import JobSpec
from .store import AnalysisStore, job_digest

__all__ = ["BatchEngine", "BatchResult", "JobError", "JobRecord"]

#: JSON schema version of the serialized batch payload.  Version 3 added
#: ``schema_version`` to the embedded model results and the ``index`` field
#: on job records; readers tolerate older payloads (missing fields get
#: defaults) and reject newer ones.
SCHEMA_VERSION = 3

#: Error policies accepted by :meth:`BatchEngine.run_iter`.
ERROR_POLICIES = ("continue", "stop", "raise")


class JobError(RuntimeError):
    """Raised by ``error_policy="raise"`` when a job records a failure."""

    def __init__(self, record: "JobRecord") -> None:
        super().__init__(f"job {record.kernel}/{record.dataset} failed: {record.error}")
        self.record = record


@dataclass
class JobRecord:
    """Outcome of one job: either a :class:`ModelResult` or a captured error."""

    kernel: str
    dataset: str
    levels: List[int]
    line_size: int
    status: str = "ok"
    error: str = ""
    elapsed_seconds: float = 0.0
    result: Optional[ModelResult] = None
    #: True when the result was served from the persistent analysis store
    #: instead of being computed by this run.
    cached: bool = False
    #: Position in the submitted spec list (streaming consumers receive
    #: records in completion order and use this to re-establish job order);
    #: ``-1`` when the record was built outside an engine run.
    index: int = -1

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def used_fallback(self) -> bool:
        return bool(self.result is not None and self.result.used_fallback)

    def to_dict(self) -> Dict:
        return {
            "kernel": self.kernel,
            "dataset": self.dataset,
            "levels": list(self.levels),
            "line_size": self.line_size,
            "status": self.status,
            "error": self.error,
            "elapsed_seconds": self.elapsed_seconds,
            "cached": self.cached,
            "index": self.index,
            "result": self.result.to_dict() if self.result is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        result = data.get("result")
        return cls(
            kernel=data["kernel"],
            dataset=data["dataset"],
            levels=list(data["levels"]),
            line_size=data["line_size"],
            status=data["status"],
            error=data.get("error", ""),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            cached=data.get("cached", False),
            index=data.get("index", -1),
            result=ModelResult.from_dict(result) if result is not None else None,
        )


@dataclass
class BatchResult:
    """Structured outcome of one batch run (job-list order preserved)."""

    records: List[JobRecord] = field(default_factory=list)
    worker_count: int = 1
    elapsed_seconds: float = 0.0
    #: Result-store counters of this run (``AnalysisStore.stats()`` as a
    #: dict) or ``None`` when the engine ran store-less.
    store_stats: Optional[Dict[str, int]] = None

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def ok_count(self) -> int:
        return sum(1 for record in self.records if record.ok)

    @property
    def error_count(self) -> int:
        return len(self.records) - self.ok_count

    @property
    def fallback_count(self) -> int:
        return sum(1 for record in self.records if record.used_fallback)

    @property
    def cache_hits(self) -> int:
        """Cardinality-cache hits of the work *this run* performed.

        Records served whole from the result store carry the counters of the
        run that originally computed them; summing those here would attribute
        historical traffic to this run, so cached records are excluded (the
        same holds for the other aggregate counters below).
        """
        return sum(
            r.result.timing.cardinality_cache_hits for r in self.records if r.result and not r.cached
        )

    @property
    def cache_misses(self) -> int:
        return sum(
            r.result.timing.cardinality_cache_misses for r in self.records if r.result and not r.cached
        )

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def cached_count(self) -> int:
        """Jobs served whole from the persistent result store."""
        return sum(1 for record in self.records if record.cached)

    @property
    def cardinality_store_hits(self) -> int:
        return sum(
            r.result.timing.store_hits for r in self.records if r.result and not r.cached
        )

    @property
    def cardinality_store_misses(self) -> int:
        return sum(
            r.result.timing.store_misses for r in self.records if r.result and not r.cached
        )

    def results(self) -> List[Optional[ModelResult]]:
        """Model results in job order (``None`` for failed jobs)."""
        return [record.result for record in self.records]

    def to_dict(self) -> Dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "worker_count": self.worker_count,
            "elapsed_seconds": self.elapsed_seconds,
            "store_stats": dict(self.store_stats) if self.store_stats is not None else None,
            "jobs": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BatchResult":
        version = data.get("schema_version", 1)
        if isinstance(version, int) and version > SCHEMA_VERSION:
            raise ValueError(
                f"batch payload has schema_version {version}; this build reads <= {SCHEMA_VERSION}"
            )
        store_stats = data.get("store_stats")
        return cls(
            records=[JobRecord.from_dict(entry) for entry in data.get("jobs", [])],
            worker_count=data.get("worker_count", 1),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            store_stats=dict(store_stats) if store_stats is not None else None,
        )


def _blank_record(spec: JobSpec) -> JobRecord:
    return JobRecord(
        kernel=spec.kernel,
        dataset=spec.dataset if spec.scop is None else "-",
        levels=list(spec.levels),
        line_size=spec.line_size,
    )


def _execute_job(payload: Tuple[int, JobSpec, Optional[str]]) -> JobRecord:
    """Worker entry point: run one job, capturing any failure on the record.

    Module-level so it pickles for the pool; must stay side-effect free
    apart from the returned record (and the shared analysis store, whose
    writes are atomic and idempotent).  The store path travels alongside the
    spec — it configures the run but is not part of the job's identity.  The
    index rides along so unordered streaming results can be re-sequenced.
    """
    index, spec, store_path = payload
    record = _blank_record(spec)
    record.index = index
    start = time.perf_counter()
    try:
        if spec.scop is not None:
            scop = spec.scop
        else:
            # Registry lookup (not the hardcoded PolyBench dict): registered
            # and plugin-discovered kernels are batch-runnable like builtins.
            from ..api import registry

            scop = registry.get_kernel(spec.kernel).build(spec.dataset)
        machine = MachineModel(
            line_size=spec.line_size,
            levels=tuple(
                CacheLevelSpec(size, f"L{index + 1}") for index, size in enumerate(spec.levels)
            ),
        )
        options = ModelOptions(
            equalization=spec.equalization,
            rasterization=spec.rasterization,
            partial_enumeration=spec.partial_enumeration,
            fallback_to_simulation=spec.fallback,
            symbolic_work_budget=spec.symbolic_work_budget,
            cross_check=spec.cross_check,
            store_path=store_path,
            backend=spec.backend,
            curve_capacities=spec.curve_capacities or None,
        )
        record.result = CacheModel(machine, options).analyze(scop)
    except Exception as exc:  # noqa: BLE001 - error isolation is the contract
        record.status = "error"
        record.error = f"{type(exc).__name__}: {exc}"
    record.elapsed_seconds = time.perf_counter() - start
    return record


def default_worker_count() -> int:
    """Worker count when the caller does not specify one (capped at 4)."""
    return max(1, min(4, (os.cpu_count() or 1)))


def _indexed_call(payload):
    function, index, item = payload
    return index, function(item)


def pool_map_ordered(function, items: Sequence, workers: int) -> List:
    """``[function(item) for item in items]`` on a worker pool, order kept.

    The generic sibling of the job pool above, used by the intra-analysis
    parallelism of :mod:`repro.core.parallel`: results come back in input
    order whatever the completion order.  ``function`` must be a picklable
    module-level callable.  Degrades to an inline loop (same code path,
    no pool) when ``workers <= 1``, there is at most one item, or the caller
    is itself a daemonic pool worker (which cannot spawn children) — so the
    returned values never depend on the worker count.
    """
    items = list(items)
    count = min(workers, len(items))
    if multiprocessing.current_process().daemon:
        count = 1
    if count <= 1:
        return [function(item) for item in items]
    results: List = [None] * len(items)
    payloads = [(function, index, item) for index, item in enumerate(items)]
    pool = multiprocessing.Pool(processes=count)
    try:
        for index, result in pool.imap_unordered(_indexed_call, payloads, chunksize=1):
            results[index] = result
    finally:
        pool.terminate()
        pool.join()
    return results


class BatchEngine:
    """Runs a job matrix across a worker pool with deterministic ordering.

    With ``store_path`` set, runs are incremental: jobs whose digest is
    already in the persistent store come back as ``cached`` records and only
    the misses are dispatched to the pool.

    :meth:`run_iter` is the streaming primitive — it yields every
    :class:`JobRecord` the moment it exists (store hits first, then computed
    records in completion order).  :meth:`run` is built on top of it and
    re-establishes job-list order, so a parallel batch stays byte-identical
    to the sequential one.
    """

    def __init__(self, jobs: int = 1, store_path: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"worker count must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store_path = store_path

    def run(
        self,
        specs: Sequence[JobSpec],
        *,
        progress: Optional[Callable[[JobRecord, int, int], None]] = None,
        error_policy: str = "continue",
    ) -> BatchResult:
        start = time.perf_counter()
        specs = list(specs)
        store = AnalysisStore(self.store_path) if self.store_path else None
        records = sorted(
            self._run_iter(specs, store, progress=progress, error_policy=error_policy),
            key=lambda record: record.index,
        )
        computed = sum(1 for record in records if not record.cached)
        return BatchResult(
            records=records,
            worker_count=min(self.jobs, computed) or 1,
            elapsed_seconds=time.perf_counter() - start,
            store_stats=store.stats().as_dict() if store is not None else None,
        )

    def run_iter(
        self,
        specs: Sequence[JobSpec],
        *,
        progress: Optional[Callable[[JobRecord, int, int], None]] = None,
        error_policy: str = "continue",
    ) -> Iterator[JobRecord]:
        """Yield job records as they complete (streaming counterpart of ``run``).

        Records served from the persistent store come first, in spec order;
        computed records follow in completion order (``record.index`` maps
        them back to their spec).  ``progress(record, done, total)`` is
        invoked before each yield.  ``error_policy`` decides what a failed
        job does to the rest of the batch:

        * ``"continue"`` (default) — yield the error record and keep going;
        * ``"stop"`` — yield the error record, then stop dispatching;
        * ``"raise"`` — raise :class:`JobError` (the record rides on it).
        """
        store = AnalysisStore(self.store_path) if self.store_path else None
        return self._run_iter(list(specs), store, progress=progress, error_policy=error_policy)

    def _run_iter(
        self,
        specs: List[JobSpec],
        store: Optional[AnalysisStore],
        *,
        progress: Optional[Callable[[JobRecord, int, int], None]],
        error_policy: str,
    ) -> Iterator[JobRecord]:
        if error_policy not in ERROR_POLICIES:
            raise ValueError(
                f"unknown error_policy {error_policy!r}; choose from {', '.join(ERROR_POLICIES)}"
            )
        total = len(specs)
        done = 0
        digests: List[Optional[str]] = [None] * total
        cached: List[JobRecord] = []
        pending: List[int] = []
        for index, spec in enumerate(specs):
            record = None
            if store is not None:
                digests[index] = job_digest(spec)
                payload = store.get_result(digests[index])
                if payload is not None:
                    record = _record_from_store(spec, payload)
            if record is None:
                pending.append(index)
            else:
                record.index = index
                cached.append(record)
        for record in cached:
            done += 1
            if progress is not None:
                progress(record, done, total)
            yield record
        if not pending:
            return
        worker_count = min(self.jobs, len(pending))
        payloads = [(index, specs[index], self.store_path) for index in pending]
        pool = None
        if worker_count == 1:
            # Lazy inline execution: each job runs only when the consumer
            # advances the iterator, so partial results stream immediately.
            results: Iterator[JobRecord] = map(_execute_job, payloads)
        else:
            pool = multiprocessing.Pool(processes=worker_count)
            results = pool.imap_unordered(_execute_job, payloads, chunksize=1)
        try:
            for record in results:
                if store is not None and record.ok and record.result is not None:
                    store.put_result(digests[record.index], record.result.to_dict())
                done += 1
                if progress is not None:
                    progress(record, done, total)
                if not record.ok and error_policy == "raise":
                    raise JobError(record)
                yield record
                if not record.ok and error_policy == "stop":
                    return
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()


def _record_from_store(spec: JobSpec, payload: Dict) -> Optional[JobRecord]:
    """Cached JobRecord from a persisted result payload (None if undecodable)."""
    try:
        result = ModelResult.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None
    record = _blank_record(spec)
    record.result = result
    record.cached = True
    return record

