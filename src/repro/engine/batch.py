"""Parallel fan-out of analytical model jobs over a worker pool.

:class:`BatchEngine` takes a list of :class:`~repro.engine.jobs.JobSpec`
records and runs them either inline (``jobs=1``) or across a
``multiprocessing`` pool.  Three invariants hold regardless of worker count:

* **deterministic ordering** — results come back in job-list order
  (``Pool.map`` preserves it), so a parallel batch is byte-identical to the
  sequential one;
* **error isolation** — exceptions are caught inside the worker and recorded
  on the :class:`JobRecord`; one failed kernel never kills the batch;
* **per-job caching** — every job runs with a fresh
  :class:`~repro.engine.cache.CardinalityCache` whose hit/miss statistics
  travel back in the result's :class:`~repro.core.results.TimingBreakdown`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from ..core.results import ModelResult
from .jobs import JobSpec

__all__ = ["BatchEngine", "BatchResult", "JobRecord", "run_batch"]

#: JSON schema version of the serialized batch payload.
SCHEMA_VERSION = 1


@dataclass
class JobRecord:
    """Outcome of one job: either a :class:`ModelResult` or a captured error."""

    kernel: str
    dataset: str
    levels: List[int]
    line_size: int
    status: str = "ok"
    error: str = ""
    elapsed_seconds: float = 0.0
    result: Optional[ModelResult] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def used_fallback(self) -> bool:
        return bool(self.result is not None and self.result.used_fallback)

    def to_dict(self) -> Dict:
        return {
            "kernel": self.kernel,
            "dataset": self.dataset,
            "levels": list(self.levels),
            "line_size": self.line_size,
            "status": self.status,
            "error": self.error,
            "elapsed_seconds": self.elapsed_seconds,
            "result": self.result.to_dict() if self.result is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        result = data.get("result")
        return cls(
            kernel=data["kernel"],
            dataset=data["dataset"],
            levels=list(data["levels"]),
            line_size=data["line_size"],
            status=data["status"],
            error=data.get("error", ""),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            result=ModelResult.from_dict(result) if result is not None else None,
        )


@dataclass
class BatchResult:
    """Structured outcome of one batch run (job-list order preserved)."""

    records: List[JobRecord] = field(default_factory=list)
    worker_count: int = 1
    elapsed_seconds: float = 0.0

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def ok_count(self) -> int:
        return sum(1 for record in self.records if record.ok)

    @property
    def error_count(self) -> int:
        return len(self.records) - self.ok_count

    @property
    def fallback_count(self) -> int:
        return sum(1 for record in self.records if record.used_fallback)

    @property
    def cache_hits(self) -> int:
        return sum(r.result.timing.cardinality_cache_hits for r in self.records if r.result)

    @property
    def cache_misses(self) -> int:
        return sum(r.result.timing.cardinality_cache_misses for r in self.records if r.result)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def results(self) -> List[Optional[ModelResult]]:
        """Model results in job order (``None`` for failed jobs)."""
        return [record.result for record in self.records]

    def to_dict(self) -> Dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "worker_count": self.worker_count,
            "elapsed_seconds": self.elapsed_seconds,
            "jobs": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BatchResult":
        return cls(
            records=[JobRecord.from_dict(entry) for entry in data.get("jobs", [])],
            worker_count=data.get("worker_count", 1),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )


def _execute_job(spec: JobSpec) -> JobRecord:
    """Worker entry point: run one job, capturing any failure on the record.

    Module-level so it pickles for the pool; must stay side-effect free
    apart from the returned record.
    """
    record = JobRecord(
        kernel=spec.kernel,
        dataset=spec.dataset if spec.scop is None else "-",
        levels=list(spec.levels),
        line_size=spec.line_size,
    )
    start = time.perf_counter()
    try:
        if spec.scop is not None:
            scop = spec.scop
        else:
            from ..scop.polybench import build_kernel

            scop = build_kernel(spec.kernel, spec.dataset)
        machine = MachineModel(
            line_size=spec.line_size,
            levels=tuple(
                CacheLevelSpec(size, f"L{index + 1}") for index, size in enumerate(spec.levels)
            ),
        )
        options = ModelOptions(
            equalization=spec.equalization,
            rasterization=spec.rasterization,
            partial_enumeration=spec.partial_enumeration,
            fallback_to_simulation=spec.fallback,
            symbolic_work_budget=spec.symbolic_work_budget,
            cross_check=spec.cross_check,
        )
        record.result = CacheModel(machine, options).analyze(scop)
    except Exception as exc:  # noqa: BLE001 - error isolation is the contract
        record.status = "error"
        record.error = f"{type(exc).__name__}: {exc}"
    record.elapsed_seconds = time.perf_counter() - start
    return record


def default_worker_count() -> int:
    """Worker count when the caller does not specify one (capped at 4)."""
    return max(1, min(4, (os.cpu_count() or 1)))


class BatchEngine:
    """Runs a job matrix across a worker pool with deterministic ordering."""

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"worker count must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, specs: Sequence[JobSpec]) -> BatchResult:
        start = time.perf_counter()
        worker_count = min(self.jobs, len(specs)) or 1
        if worker_count == 1:
            records = [_execute_job(spec) for spec in specs]
        else:
            with multiprocessing.Pool(processes=worker_count) as pool:
                records = pool.map(_execute_job, specs, chunksize=1)
        return BatchResult(
            records=list(records),
            worker_count=worker_count,
            elapsed_seconds=time.perf_counter() - start,
        )


def run_batch(specs: Sequence[JobSpec], jobs: int = 1) -> BatchResult:
    """Convenience wrapper: ``BatchEngine(jobs).run(specs)``."""
    return BatchEngine(jobs).run(specs)
