"""Disk-backed, content-addressed store for analysis results.

The in-memory :class:`~repro.engine.cache.CardinalityCache` removes repeated
work *within* one analysis job; this module removes it *across* processes and
runs.  An :class:`AnalysisStore` persists two kinds of entries under one
location:

* ``cardinality`` — integer point counts, keyed by the canonical form of the
  counting problem (the same key the in-memory cache uses);
* ``result`` — whole serialized :class:`~repro.core.results.ModelResult`
  payloads, keyed by :func:`job_digest` over the full
  :meth:`~repro.engine.jobs.JobSpec.key` identity.

Both key families are hashed with :func:`stable_digest`, a canonical JSON
serialization that is stable across processes (frozensets are sorted, so
``PYTHONHASHSEED`` randomization cannot perturb the digest).  Every entry
records the :func:`code_version` that produced it; a version mismatch on read
deletes the entry and counts as an *invalidation*, so upgrading the analysis
code transparently recomputes instead of serving stale counts.

Storage is pluggable: :class:`AnalysisStore` owns the entry format (schema,
code-version envelope, statistics, LRU budget) and delegates raw blob I/O to
a :class:`StoreBackend`.  Two backends ship:

* :class:`LocalDirBackend` (``"dir"``, the default) — one JSON file per entry
  under ``root/<namespace>/<aa>/<digest>.json``.  Writers publish with
  ``os.replace`` (atomic on POSIX), so a reader never observes a half-written
  entry; concurrent writers of the same key race to publish identical
  content.  Safe under the batch engine's multiprocessing pool without
  locking.
* :class:`SQLiteBackend` (``"sqlite"``) — a single SQLite database in WAL
  mode with a busy timeout, so N *server* workers (or N machines on a shared
  filesystem that supports POSIX locks) share one hit set safely.  The
  schema is one ``entries`` table keyed by ``(namespace, digest)``.

The backend is selected by a *store spec*: a plain path means ``dir`` (or
``sqlite`` when the path is an existing regular file, so pointing at a
database just works), a ``sqlite:PATH`` / ``dir:PATH`` prefix forces one, and
``$REPRO_STORE_BACKEND`` (or ``--store-backend``) sets the default for
unprefixed paths.

Size is bounded by an LRU cap (:attr:`AnalysisStore.max_bytes`): reads bump
the entry recency, and writers periodically evict the stalest entries once
the store exceeds the cap.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import sqlite3
import tempfile
import threading
import time
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

from ..isl.constraints import ConstraintSystem
from ..isl.qpoly import Div, QPoly
from .cache import CardinalityCache, canonical_key

__all__ = [
    "AnalysisStore",
    "BACKEND_NAMES",
    "LocalDirBackend",
    "PersistentCardinalityCache",
    "SQLiteBackend",
    "StoreBackend",
    "StoreEntry",
    "StoreStats",
    "cardinality_digest",
    "code_version",
    "default_store_path",
    "job_digest",
    "make_store_spec",
    "open_backend",
    "parse_store_spec",
    "stable_digest",
    "validate_store_env",
    "validate_store_path",
]

#: On-disk schema version of store entries (bump on incompatible layout change).
ENTRY_SCHEMA = 1

#: Default LRU size cap: 256 MiB of JSON entries.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Environment overrides honoured by :func:`default_store_path` and the CLI.
STORE_PATH_ENV = "REPRO_STORE_PATH"
STORE_MAX_BYTES_ENV = "REPRO_STORE_MAX_BYTES"
STORE_BACKEND_ENV = "REPRO_STORE_BACKEND"

#: Store backend names accepted by specs, ``--store-backend``, and
#: ``$REPRO_STORE_BACKEND``.
BACKEND_NAMES = ("dir", "sqlite")

#: File name used when a sqlite spec points at an existing directory.
SQLITE_DEFAULT_NAME = "store.sqlite"


def default_store_path() -> str:
    """Store location: ``$REPRO_STORE_PATH`` or ``~/.cache/repro-haystack/store``."""
    env = os.environ.get(STORE_PATH_ENV, "").strip()
    if env:
        return env
    return str(Path.home() / ".cache" / "repro-haystack" / "store")


def _canonical(value):
    """Recursively rewrite ``value`` into a JSON-stable canonical form.

    Frozensets (used for order-insensitive constraint sets) are sorted by
    their serialized form so the digest does not depend on hash-based
    iteration order; Fractions keep exactness as a tagged pair.  The symbolic
    value types that appear inside job identities — quasi-polynomials (access
    index expressions) and floor-division symbols — canonicalize through
    their own canonical item tuples.
    """
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, Fraction):
        return ["F", value.numerator, value.denominator]
    if isinstance(value, float):
        return ["f", repr(value)]
    if isinstance(value, QPoly):
        return ["Q", _canonical(value._canonical_items())]
    if isinstance(value, Div):
        return ["V", _canonical(value.items), value.denominator]
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, (frozenset, set)):
        items = [_canonical(item) for item in value]
        return ["S", sorted(items, key=lambda item: json.dumps(item, separators=(",", ":")))]
    if isinstance(value, dict):
        return ["D", sorted((_canonical(k), _canonical(v)) for k, v in value.items())]
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing: {value!r}")


def stable_digest(value) -> str:
    """Process-stable SHA-256 hex digest of an arbitrary key structure."""
    payload = json.dumps(_canonical(value), separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cardinality_digest(system: ConstraintSystem, count_vars: Sequence[str]) -> str:
    """Digest of one counting problem (same canonical form as the memo cache)."""
    return stable_digest(canonical_key(system, count_vars))


def job_digest(spec) -> str:
    """Digest of one analysis job's full :meth:`~repro.engine.jobs.JobSpec.key`."""
    return stable_digest(spec.key())


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the installed ``repro`` sources (the store's invalidation key).

    Any change to the package — model, counting substrate, kernels — yields a
    new version, so persisted counts can never outlive the code that derived
    them.  Hashing the sources (rather than trusting the package version
    string) keeps development trees honest.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Store specs: backend selection and eager validation
# ----------------------------------------------------------------------
def parse_store_spec(spec: str, backend: Optional[str] = None) -> Tuple[str, str]:
    """``(backend_name, root_path)`` for a store path spec.

    Resolution order: an explicit ``sqlite:``/``dir:`` prefix on the spec
    wins, then the ``backend`` argument (CLI ``--store-backend``), then
    ``$REPRO_STORE_BACKEND``, then a filesystem heuristic — an existing
    regular file can only be a SQLite database, everything else defaults to
    the directory backend.  A sqlite root that is an existing directory is
    rewritten to ``<dir>/store.sqlite`` so both backends accept the same
    default location.
    """
    spec = str(spec)
    name = None
    for prefix in BACKEND_NAMES:
        if spec.startswith(prefix + ":"):
            name, spec = prefix, spec[len(prefix) + 1 :]
            break
    if not spec:
        raise ValueError(f"store path spec {spec!r} names no path")
    if name is None:
        name = backend or os.environ.get(STORE_BACKEND_ENV, "").strip() or None
        if name is not None and name not in BACKEND_NAMES:
            raise ValueError(
                f"unknown store backend {name!r} (expected {'|'.join(BACKEND_NAMES)})"
            )
    if name is None:
        name = "sqlite" if _is_sqlite_file(Path(spec)) else "dir"
    if name == "sqlite" and Path(spec).is_dir():
        spec = str(Path(spec) / SQLITE_DEFAULT_NAME)
    return name, spec


def _is_sqlite_file(path: Path) -> bool:
    """Existing SQLite database (magic header, or empty = a fresh one)?

    The autodetect must only claim files that really are databases; an
    arbitrary file at the store path is a configuration error (the dir
    backend reports it as such), not a database to overwrite.
    """
    try:
        if not path.is_file():
            return False
        if path.stat().st_size == 0:
            return True
        with open(path, "rb") as handle:
            return handle.read(16) == b"SQLite format 3\x00"
    except OSError:
        return False


def make_store_spec(path, backend: Optional[str] = None) -> str:
    """Self-describing store spec string: the backend travels with the path.

    The spec flows unmodified through :class:`~repro.engine.jobs.JobSpec`
    payloads and :attr:`~repro.core.model.ModelOptions.store_path` into pool
    workers, so every process opens the same backend without extra plumbing.
    """
    name, root = parse_store_spec(str(path), backend)
    return f"{name}:{root}"


def validate_store_path(spec, backend: Optional[str] = None) -> str:
    """Eagerly check a store location; returns the normalized spec.

    Raises ``ValueError`` with a one-line, actionable message when the
    location cannot work — the path exists but has the wrong type for the
    backend, or the nearest existing ancestor is not writable — instead of
    letting a deep ``OSError`` (or a silently disabled store) surface
    mid-analysis.
    """
    name, root = parse_store_spec(spec, backend)
    path = Path(root)
    if name == "dir" and path.exists() and not path.is_dir():
        raise ValueError(
            f"store path {root!r} is a file, not a directory "
            f"(move it aside, pick another --store-path/$REPRO_STORE_PATH, "
            f"or select the sqlite backend to use it as a database)"
        )
    if name == "sqlite" and path.exists() and not path.is_file():
        raise ValueError(
            f"sqlite store path {root!r} is not a regular file "
            f"(point it at a database file or a directory that can hold one)"
        )
    probe = path if path.exists() else path.parent
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            break
        probe = parent
    if probe != path and probe.exists() and not probe.is_dir():
        raise ValueError(
            f"store path {root!r} is not a regular file location "
            f"({probe} is a file in the way); pick another "
            f"--store-path/$REPRO_STORE_PATH"
        )
    access = os.W_OK | os.X_OK if probe.is_dir() else os.W_OK
    if probe.exists() and not os.access(probe, access):
        raise ValueError(
            f"store path {root!r} is not writable ({probe} denies write access); "
            f"fix the permissions or pick another --store-path/$REPRO_STORE_PATH"
        )
    return f"{name}:{root}"


def validate_store_env() -> None:
    """Validate ``$REPRO_STORE_BACKEND`` and ``$REPRO_STORE_PATH`` eagerly.

    Called at CLI entry, :class:`~repro.api.Session` construction, and server
    construction, so a bad environment fails with one clear line instead of a
    traceback from deep inside a worker.
    """
    backend = os.environ.get(STORE_BACKEND_ENV, "").strip()
    if backend and backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown store backend {backend!r} in ${STORE_BACKEND_ENV} "
            f"(expected {'|'.join(BACKEND_NAMES)})"
        )
    path = os.environ.get(STORE_PATH_ENV, "").strip()
    if path:
        try:
            validate_store_path(path)
        except ValueError as exc:
            raise ValueError(f"${STORE_PATH_ENV}: {exc}") from None


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreEntry:
    """One stored blob as the LRU sweep sees it."""

    namespace: str
    digest: str
    size: int
    #: Recency stamp in nanoseconds (reads refresh it); the eviction order is
    #: ``(recency_ns, namespace, digest)`` so same-tick writes stay stable.
    recency_ns: int


class StoreBackend:
    """Raw blob storage contract behind :class:`AnalysisStore`.

    Implementations store opaque text blobs keyed by ``(namespace, digest)``
    and must be safe under concurrent writers from a multiprocessing pool.
    Every method is total: storage-level failures surface as misses (reads)
    or dropped writes, never as exceptions — the store is an accelerator and
    must not fail the analysis it accelerates.
    """

    #: Backend name as used in store specs (``"dir"`` / ``"sqlite"``).
    name = "abstract"

    def read(self, namespace: str, digest: str) -> Optional[str]:
        """Blob text, ``None`` when absent, ``""`` when present but unreadable."""
        raise NotImplementedError

    def write(self, namespace: str, digest: str, text: str) -> int:
        """Atomically publish ``text``; returns bytes written (0 = dropped)."""
        raise NotImplementedError

    def delete(self, namespace: str, digest: str) -> None:
        raise NotImplementedError

    def touch(self, namespace: str, digest: str) -> None:
        """Refresh the entry's recency stamp (LRU bookkeeping)."""
        raise NotImplementedError

    def entries(self) -> Iterator[StoreEntry]:
        raise NotImplementedError

    def size_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())

    def entry_count(self) -> int:
        return sum(1 for _ in self.entries())

    def wipe(self) -> int:
        removed = 0
        for entry in list(self.entries()):
            self.delete(entry.namespace, entry.digest)
            removed += 1
        return removed


class LocalDirBackend(StoreBackend):
    """One JSON file per entry under ``root/<namespace>/<aa>/<digest>.json``.

    The two-level fan-out keeps directories small for large stores; the
    namespace separates cardinality entries from whole-result entries so the
    LRU sweep and wipe tooling can treat them uniformly.  Writers create a
    temporary file in the destination directory and publish it with
    ``os.replace`` (atomic on POSIX); recency is the file mtime
    (``st_mtime_ns`` — the float ``st_mtime`` is too coarse to separate
    entries written in the same tick, routine under the mp pool).
    """

    name = "dir"

    def __init__(self, root) -> None:
        self.root = Path(root)

    def _path(self, namespace: str, digest: str) -> Path:
        return self.root / namespace / digest[:2] / f"{digest}.json"

    def read(self, namespace: str, digest: str) -> Optional[str]:
        path = self._path(namespace, digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            # Present but unreadable: report a corpse so the caller buries it.
            return ""

    def write(self, namespace: str, digest: str, text: str) -> int:
        path = self._path(namespace, digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, path)
            except BaseException:
                _unlink_quietly(Path(tmp_name))
                raise
        except OSError:
            return 0
        return len(text.encode("utf-8"))

    def delete(self, namespace: str, digest: str) -> None:
        _unlink_quietly(self._path(namespace, digest))

    def touch(self, namespace: str, digest: str) -> None:
        try:
            os.utime(self._path(namespace, digest))
        except OSError:
            pass

    def _files(self) -> Iterator[Path]:
        for namespace_dir in self.root.iterdir() if self.root.is_dir() else ():
            if not namespace_dir.is_dir():
                continue
            for shard in namespace_dir.iterdir():
                if not shard.is_dir():
                    continue
                for path in shard.iterdir():
                    if path.suffix == ".json":
                        yield path

    def entries(self) -> Iterator[StoreEntry]:
        for path in self._files():
            try:
                stat = path.stat()
            except OSError:
                continue
            yield StoreEntry(
                namespace=path.parent.parent.name,
                digest=path.stem,
                size=stat.st_size,
                recency_ns=stat.st_mtime_ns,
            )


#: Seconds a SQLite writer waits on a locked database before giving up.
_SQLITE_TIMEOUT = 30.0

_SQLITE_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    namespace  TEXT NOT NULL,
    digest     TEXT NOT NULL,
    payload    TEXT NOT NULL,
    size       INTEGER NOT NULL,
    recency_ns INTEGER NOT NULL,
    PRIMARY KEY (namespace, digest)
)
"""


class SQLiteBackend(StoreBackend):
    """All entries in one SQLite database, WAL mode, busy-timeout writers.

    WAL lets readers proceed while a writer commits, and the busy timeout
    serializes concurrent writers without failures, so N server workers (or
    N processes of the batch pool) share one hit set safely.  Connections
    are opened lazily per ``(instance, process)`` — a handle never crosses a
    ``fork`` — and guarded by a lock so one backend instance can serve
    multiple threads (the asyncio server reads from worker threads).

    A corrupt database file is treated like a corrupt dir entry: the first
    write that trips ``sqlite3.DatabaseError`` deletes the database (plus
    WAL side files) and recreates it empty; reads report misses meanwhile.
    """

    name = "sqlite"

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None
        self._lock = threading.Lock()

    # -- connection management ------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        if self._conn is None or self._pid != os.getpid():
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path),
                timeout=_SQLITE_TIMEOUT,
                isolation_level=None,  # autocommit: every statement is its own txn
                check_same_thread=False,  # guarded by self._lock
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(_SQLITE_SCHEMA)
            self._conn = conn
            self._pid = os.getpid()
        return self._conn

    def _reset(self) -> None:
        """Drop a corrupt database and start empty (entry-corpse burial)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        for suffix in ("", "-wal", "-shm"):
            _unlink_quietly(Path(str(self.path) + suffix))

    # -- blob operations ------------------------------------------------------
    def read(self, namespace: str, digest: str) -> Optional[str]:
        with self._lock:
            try:
                row = self._connection().execute(
                    "SELECT payload FROM entries WHERE namespace = ? AND digest = ?",
                    (namespace, digest),
                ).fetchone()
            except sqlite3.Error:
                return None
        return row[0] if row else None

    def write(self, namespace: str, digest: str, text: str) -> int:
        size = len(text.encode("utf-8"))
        row = (namespace, digest, text, size, time.time_ns())
        statement = (
            "INSERT INTO entries (namespace, digest, payload, size, recency_ns) "
            "VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT (namespace, digest) DO UPDATE SET "
            "payload = excluded.payload, size = excluded.size, "
            "recency_ns = excluded.recency_ns"
        )
        with self._lock:
            try:
                self._connection().execute(statement, row)
            except sqlite3.DatabaseError:
                # Corrupt database: bury it and retry once on a fresh one.
                self._reset()
                try:
                    self._connection().execute(statement, row)
                except sqlite3.Error:
                    return 0
            except sqlite3.Error:
                return 0
        return size

    def delete(self, namespace: str, digest: str) -> None:
        with self._lock:
            try:
                self._connection().execute(
                    "DELETE FROM entries WHERE namespace = ? AND digest = ?",
                    (namespace, digest),
                )
            except sqlite3.Error:
                pass

    def touch(self, namespace: str, digest: str) -> None:
        with self._lock:
            try:
                self._connection().execute(
                    "UPDATE entries SET recency_ns = ? WHERE namespace = ? AND digest = ?",
                    (time.time_ns(), namespace, digest),
                )
            except sqlite3.Error:
                pass

    def entries(self) -> Iterator[StoreEntry]:
        with self._lock:
            try:
                rows = self._connection().execute(
                    "SELECT namespace, digest, size, recency_ns FROM entries"
                ).fetchall()
            except sqlite3.Error:
                return iter(())
        return (StoreEntry(*row) for row in rows)

    def size_bytes(self) -> int:
        with self._lock:
            try:
                row = self._connection().execute(
                    "SELECT COALESCE(SUM(size), 0) FROM entries"
                ).fetchone()
            except sqlite3.Error:
                return 0
        return int(row[0])

    def entry_count(self) -> int:
        with self._lock:
            try:
                row = self._connection().execute("SELECT COUNT(*) FROM entries").fetchone()
            except sqlite3.Error:
                return 0
        return int(row[0])

    def wipe(self) -> int:
        count = self.entry_count()
        with self._lock:
            try:
                self._connection().execute("DELETE FROM entries")
            except sqlite3.Error:
                return 0
        return count


def open_backend(spec, backend: Optional[str] = None) -> StoreBackend:
    """The :class:`StoreBackend` a store spec names (see :func:`parse_store_spec`)."""
    name, root = parse_store_spec(str(spec), backend)
    if name == "sqlite":
        return SQLiteBackend(root)
    return LocalDirBackend(root)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
@dataclass
class StoreStats:
    """Counters of one :class:`AnalysisStore` instance (per process).

    The same struct backs the ``store`` block of batch summaries, bench
    reports, and the server's ``/stats`` endpoint.
    """

    hits: int = 0
    misses: int = 0
    #: Entries discarded on read: stale code version or corrupt payload.
    invalidations: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "StoreStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.writes += other.writes
        self.evictions += other.evictions

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "writes": self.writes,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }


class AnalysisStore:
    """Content-addressed, code-versioned JSON entries on a pluggable backend.

    The store owns the entry envelope (schema + code version + payload), the
    per-process statistics, and the LRU size budget; raw blob storage is the
    backend's problem (see :class:`StoreBackend`).  ``root`` accepts a plain
    path or a ``sqlite:``/``dir:``-prefixed store spec; ``backend`` forces a
    backend by name or instance.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        *,
        backend: Optional[Union[str, StoreBackend]] = None,
        max_bytes: Optional[int] = None,
        version: Optional[str] = None,
    ) -> None:
        if isinstance(backend, StoreBackend):
            self.backend = backend
            self.root = Path(getattr(backend, "root", getattr(backend, "path", ".")))
        else:
            spec = str(root) if root else default_store_path()
            self.backend = open_backend(spec, backend)
            self.root = Path(
                getattr(self.backend, "root", getattr(self.backend, "path", spec))
            )
        if max_bytes is None:
            env = os.environ.get(STORE_MAX_BYTES_ENV, "").strip()
            max_bytes = int(env) if env else DEFAULT_MAX_BYTES
        if max_bytes <= 0:
            raise ValueError(f"store size cap must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.version = version if version is not None else code_version()
        self._stats = StoreStats()
        # Incremental size estimate: one backend scan when this instance
        # first writes, then each write adds its own size.  Eviction (and its
        # full scan) only happens when the estimate crosses the cap, so
        # steady writing far below the cap never re-scans the store.
        self._approx_bytes: Optional[int] = None

    def stats(self) -> StoreStats:
        """Hit/miss/invalidation/write/eviction counters of this instance.

        Batch summaries, bench reports, and the server's ``/stats`` endpoint
        all read this one struct (serialize with
        :meth:`StoreStats.as_dict`).
        """
        return self._stats

    # ------------------------------------------------------------------
    # Generic entry access
    # ------------------------------------------------------------------
    def _entry_path(self, namespace: str, digest: str) -> Path:
        """Filesystem path of one entry (directory backend only; tests and
        corpse inspection)."""
        if not isinstance(self.backend, LocalDirBackend):
            raise TypeError(f"{self.backend.name!r} backend entries have no filesystem path")
        return self.backend._path(namespace, digest)

    def get(self, namespace: str, digest: str):
        """Payload stored under ``digest``, or ``None`` on miss.

        Version-stale and corrupt entries are deleted and counted as
        invalidations (plus the miss the caller observes).
        """
        text = self.backend.read(namespace, digest)
        if text is None:
            self._stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry["schema"] != ENTRY_SCHEMA or entry["version"] != self.version:
                raise _StaleEntry()
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError, _StaleEntry):
            # Truncated JSON, garbage blob, or a different code version:
            # drop the entry so the next write repopulates it.
            self._stats.invalidations += 1
            self._stats.misses += 1
            self.backend.delete(namespace, digest)
            return None
        self._stats.hits += 1
        self.backend.touch(namespace, digest)
        return payload

    def put(self, namespace: str, digest: str, payload) -> None:
        """Atomically publish ``payload`` under ``digest``; never raises on I/O.

        The store is an accelerator: a failed write (read-only tree, disk
        full, locked database) must not fail the analysis that produced the
        payload.
        """
        text = json.dumps(
            {"schema": ENTRY_SCHEMA, "version": self.version, "payload": payload},
            separators=(",", ":"),
        )
        written = self.backend.write(namespace, digest, text)
        if not written:
            return
        self._stats.writes += 1
        if self._approx_bytes is None:
            self._approx_bytes = self.size_bytes()
        else:
            self._approx_bytes += written
        if self._approx_bytes > self.max_bytes:
            self._evict_lru()

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def get_cardinality(self, digest: str) -> Optional[int]:
        payload = self.get("cardinality", digest)
        return payload if isinstance(payload, int) else None

    def put_cardinality(self, digest: str, value: int) -> None:
        self.put("cardinality", digest, value)

    def get_result(self, digest: str) -> Optional[Dict]:
        payload = self.get("result", digest)
        return payload if isinstance(payload, dict) else None

    def put_result(self, digest: str, payload: Dict) -> None:
        self.put("result", digest, payload)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self.backend.size_bytes()

    def entry_count(self) -> int:
        return self.backend.entry_count()

    def _evict_lru(self) -> None:
        """Delete stalest entries (by recency; reads refresh it) until under cap.

        Ordering is ``(recency_ns, namespace, digest)``: nanosecond stamps
        separate almost all writes, and the deterministic key tiebreak keeps
        the eviction order stable across runs and processes even for entries
        published in the same tick (routine under the mp pool).
        """
        entries = list(self.backend.entries())
        total = sum(entry.size for entry in entries)
        if total > self.max_bytes:
            entries.sort(key=lambda entry: (entry.recency_ns, entry.namespace, entry.digest))
            for entry in entries:
                if total <= self.max_bytes:
                    break
                self.backend.delete(entry.namespace, entry.digest)
                total -= entry.size
                self._stats.evictions += 1
        self._approx_bytes = total

    def wipe(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = self.backend.wipe()
        self._approx_bytes = 0
        return removed


class _StaleEntry(Exception):
    """Internal: entry exists but belongs to a different code version."""


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


class PersistentCardinalityCache(CardinalityCache):
    """Two-tier cardinality cache: in-memory memo backed by an on-disk store.

    Lookup order is memory, then disk, then the symbolic counter; computed
    counts are written through to both tiers.  Memory hit/miss statistics
    keep their in-memory meaning (so
    :attr:`~repro.core.results.TimingBreakdown.cardinality_cache_hits` stays
    comparable across store configurations); disk traffic is reported
    separately via :attr:`store_hits` / :attr:`store_misses`.
    """

    def __init__(self, store: AnalysisStore) -> None:
        super().__init__()
        self.store = store
        self.store_hits = 0
        self.store_misses = 0

    def cardinality(self, system: ConstraintSystem, count_vars: Sequence[str]) -> int:
        key = canonical_key(system, count_vars)
        try:
            value = self._store[key]
        except KeyError:
            pass
        else:
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        digest = stable_digest(key)
        persisted = self.store.get_cardinality(digest)
        if persisted is not None:
            self.store_hits += 1
            self._store[key] = persisted
            return persisted
        self.store_misses += 1
        from ..isl.counting import cardinality as _cardinality

        value = _cardinality(system, count_vars)
        self._store[key] = value
        self.store.put_cardinality(digest, value)
        return value
