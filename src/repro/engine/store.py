"""Disk-backed, content-addressed store for analysis results.

The in-memory :class:`~repro.engine.cache.CardinalityCache` removes repeated
work *within* one analysis job; this module removes it *across* processes and
runs.  An :class:`AnalysisStore` persists two kinds of entries under one
directory tree:

* ``cardinality`` — integer point counts, keyed by the canonical form of the
  counting problem (the same key the in-memory cache uses);
* ``result`` — whole serialized :class:`~repro.core.results.ModelResult`
  payloads, keyed by :func:`job_digest` over the full
  :meth:`~repro.engine.jobs.JobSpec.key` identity.

Both key families are hashed with :func:`stable_digest`, a canonical JSON
serialization that is stable across processes (frozensets are sorted, so
``PYTHONHASHSEED`` randomization cannot perturb the digest).  Every entry
records the :func:`code_version` that produced it; a version mismatch on read
deletes the entry and counts as an *invalidation*, so upgrading the analysis
code transparently recomputes instead of serving stale counts.

Concurrency: the layout is append-friendly.  Writers create a temporary file
in the destination directory and publish it with ``os.replace`` (atomic on
POSIX), so a reader never observes a half-written entry; concurrent writers
of the same key simply race to publish identical content.  Readers treat
missing, truncated, or otherwise corrupt entries as misses and delete the
corpse.  This makes the store safe under the batch engine's multiprocessing
pool without any locking.

Size is bounded by an LRU cap (:attr:`AnalysisStore.max_bytes`): reads bump
the entry mtime, and writers periodically evict the stalest entries once the
tree exceeds the cap.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import Dict, Optional, Sequence

from ..isl.constraints import ConstraintSystem
from ..isl.qpoly import Div, QPoly
from .cache import CardinalityCache, canonical_key

__all__ = [
    "AnalysisStore",
    "PersistentCardinalityCache",
    "StoreStats",
    "cardinality_digest",
    "code_version",
    "default_store_path",
    "job_digest",
    "stable_digest",
]

#: On-disk schema version of store entries (bump on incompatible layout change).
ENTRY_SCHEMA = 1

#: Default LRU size cap: 256 MiB of JSON entries.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Environment overrides honoured by :func:`default_store_path` and the CLI.
STORE_PATH_ENV = "REPRO_STORE_PATH"
STORE_MAX_BYTES_ENV = "REPRO_STORE_MAX_BYTES"


def default_store_path() -> str:
    """Store location: ``$REPRO_STORE_PATH`` or ``~/.cache/repro-haystack/store``."""
    env = os.environ.get(STORE_PATH_ENV, "").strip()
    if env:
        return env
    return str(Path.home() / ".cache" / "repro-haystack" / "store")


def _canonical(value):
    """Recursively rewrite ``value`` into a JSON-stable canonical form.

    Frozensets (used for order-insensitive constraint sets) are sorted by
    their serialized form so the digest does not depend on hash-based
    iteration order; Fractions keep exactness as a tagged pair.  The symbolic
    value types that appear inside job identities — quasi-polynomials (access
    index expressions) and floor-division symbols — canonicalize through
    their own canonical item tuples.
    """
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, Fraction):
        return ["F", value.numerator, value.denominator]
    if isinstance(value, float):
        return ["f", repr(value)]
    if isinstance(value, QPoly):
        return ["Q", _canonical(value._canonical_items())]
    if isinstance(value, Div):
        return ["V", _canonical(value.items), value.denominator]
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, (frozenset, set)):
        items = [_canonical(item) for item in value]
        return ["S", sorted(items, key=lambda item: json.dumps(item, separators=(",", ":")))]
    if isinstance(value, dict):
        return ["D", sorted((_canonical(k), _canonical(v)) for k, v in value.items())]
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing: {value!r}")


def stable_digest(value) -> str:
    """Process-stable SHA-256 hex digest of an arbitrary key structure."""
    payload = json.dumps(_canonical(value), separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cardinality_digest(system: ConstraintSystem, count_vars: Sequence[str]) -> str:
    """Digest of one counting problem (same canonical form as the memo cache)."""
    return stable_digest(canonical_key(system, count_vars))


def job_digest(spec) -> str:
    """Digest of one analysis job's full :meth:`~repro.engine.jobs.JobSpec.key`."""
    return stable_digest(spec.key())


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the installed ``repro`` sources (the store's invalidation key).

    Any change to the package — model, counting substrate, kernels — yields a
    new version, so persisted counts can never outlive the code that derived
    them.  Hashing the sources (rather than trusting the package version
    string) keeps development trees honest.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass
class StoreStats:
    """Counters of one :class:`AnalysisStore` instance (per process)."""

    hits: int = 0
    misses: int = 0
    #: Entries discarded on read: stale code version or corrupt payload.
    invalidations: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "StoreStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.writes += other.writes
        self.evictions += other.evictions

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "writes": self.writes,
            "evictions": self.evictions,
        }


class AnalysisStore:
    """Content-addressed JSON entries under ``root/<namespace>/<aa>/<digest>.json``.

    The two-level fan-out keeps directories small for large stores; the
    namespace separates cardinality entries from whole-result entries so the
    LRU sweep and wipe tooling can treat them uniformly.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        *,
        max_bytes: Optional[int] = None,
        version: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root else Path(default_store_path())
        if max_bytes is None:
            env = os.environ.get(STORE_MAX_BYTES_ENV, "").strip()
            max_bytes = int(env) if env else DEFAULT_MAX_BYTES
        if max_bytes <= 0:
            raise ValueError(f"store size cap must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.version = version if version is not None else code_version()
        self.stats = StoreStats()
        # Incremental size estimate: one tree walk when this instance first
        # writes, then each write adds its own size.  Eviction (and its full
        # walk) only happens when the estimate crosses the cap, so steady
        # writing far below the cap never re-scans the tree.
        self._approx_bytes: Optional[int] = None

    # ------------------------------------------------------------------
    # Generic entry access
    # ------------------------------------------------------------------
    def _entry_path(self, namespace: str, digest: str) -> Path:
        return self.root / namespace / digest[:2] / f"{digest}.json"

    def get(self, namespace: str, digest: str):
        """Payload stored under ``digest``, or ``None`` on miss.

        Version-stale and corrupt entries are deleted and counted as
        invalidations (plus the miss the caller observes).
        """
        path = self._entry_path(namespace, digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["schema"] != ENTRY_SCHEMA or entry["version"] != self.version:
                raise _StaleEntry()
            payload = entry["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, _StaleEntry):
            # Truncated JSON, unreadable file, or a different code version:
            # drop the entry so the next write repopulates it.
            self.stats.invalidations += 1
            self.stats.misses += 1
            _unlink_quietly(path)
            return None
        self.stats.hits += 1
        _touch_quietly(path)
        return payload

    def put(self, namespace: str, digest: str, payload) -> None:
        """Atomically publish ``payload`` under ``digest``; never raises on I/O.

        The store is an accelerator: a failed write (read-only tree, disk
        full) must not fail the analysis that produced the payload.
        """
        path = self._entry_path(namespace, digest)
        text = json.dumps(
            {"schema": ENTRY_SCHEMA, "version": self.version, "payload": payload},
            separators=(",", ":"),
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, path)
            except BaseException:
                _unlink_quietly(Path(tmp_name))
                raise
        except OSError:
            return
        self.stats.writes += 1
        if self._approx_bytes is None:
            self._approx_bytes = self.size_bytes()
        else:
            self._approx_bytes += len(text)
        if self._approx_bytes > self.max_bytes:
            self._evict_lru()

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def get_cardinality(self, digest: str) -> Optional[int]:
        payload = self.get("cardinality", digest)
        return payload if isinstance(payload, int) else None

    def put_cardinality(self, digest: str, value: int) -> None:
        self.put("cardinality", digest, value)

    def get_result(self, digest: str) -> Optional[Dict]:
        payload = self.get("result", digest)
        return payload if isinstance(payload, dict) else None

    def put_result(self, digest: str, payload: Dict) -> None:
        self.put("result", digest, payload)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _entries(self):
        for namespace_dir in self.root.iterdir() if self.root.is_dir() else ():
            if not namespace_dir.is_dir():
                continue
            for shard in namespace_dir.iterdir():
                if not shard.is_dir():
                    continue
                for path in shard.iterdir():
                    if path.suffix == ".json":
                        yield path

    def size_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def _evict_lru(self) -> None:
        """Delete stalest entries (by mtime; reads refresh it) until under cap.

        Ordering uses ``st_mtime_ns``: the float ``st_mtime`` is too coarse
        to separate entries written in the same tick (routine under the mp
        pool), and the path tiebreak alone would then pick victims by name
        rather than by age.  Nanosecond stamps plus the deterministic path
        tiebreak keep the eviction order stable across runs and processes.
        """
        entries = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
            total += stat.st_size
        if total > self.max_bytes:
            entries.sort(key=lambda item: (item[0], str(item[2])))
            for _mtime_ns, size, path in entries:
                if total <= self.max_bytes:
                    break
                _unlink_quietly(path)
                total -= size
                self.stats.evictions += 1
        self._approx_bytes = total

    def wipe(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            _unlink_quietly(path)
            removed += 1
        self._approx_bytes = 0
        return removed


class _StaleEntry(Exception):
    """Internal: entry exists but belongs to a different code version."""


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _touch_quietly(path: Path) -> None:
    try:
        os.utime(path)
    except OSError:
        pass


class PersistentCardinalityCache(CardinalityCache):
    """Two-tier cardinality cache: in-memory memo backed by an on-disk store.

    Lookup order is memory, then disk, then the symbolic counter; computed
    counts are written through to both tiers.  Memory hit/miss statistics
    keep their in-memory meaning (so
    :attr:`~repro.core.results.TimingBreakdown.cardinality_cache_hits` stays
    comparable across store configurations); disk traffic is reported
    separately via :attr:`store_hits` / :attr:`store_misses`.
    """

    def __init__(self, store: AnalysisStore) -> None:
        super().__init__()
        self.store = store
        self.store_hits = 0
        self.store_misses = 0

    def cardinality(self, system: ConstraintSystem, count_vars: Sequence[str]) -> int:
        key = canonical_key(system, count_vars)
        try:
            value = self._store[key]
        except KeyError:
            pass
        else:
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        digest = stable_digest(key)
        persisted = self.store.get_cardinality(digest)
        if persisted is not None:
            self.store_hits += 1
            self._store[key] = persisted
            return persisted
        self.store_misses += 1
        from ..isl.counting import cardinality as _cardinality

        value = _cardinality(system, count_vars)
        self._store[key] = value
        self.store.put_cardinality(digest, value)
        return value
