"""Symbolic counting of integer points in parametric polyhedra.

This is the reproduction's stand-in for the Barvinok algorithm used by the
paper.  Points are counted by *recursive symbolic summation*: the innermost
count variable is summed away with Faulhaber's formula, splitting the outer
domain into *chambers* where a unique pair of lower/upper bounds is tight, and
splitting variables into residue classes when floor divisions (cache-line
indices, strides) depend on them.  The result is a list of pieces
``(domain over the parameters, quasi-polynomial)`` exactly analogous to the
pieces isl/barvinok produce.

Where the paper's model would hand a piece to barvinok, this engine produces
the same piecewise quasi-polynomials (up to the decomposition into pieces);
where the structure is too irregular the caller falls back to partial or
explicit enumeration, mirroring the paper's own hybrid counting strategy
(Algorithm 1).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from .constraints import (
    Bound,
    ConstraintSystem,
    UnboundedSetError,
    bounds_for,
    count_points_explicit,
    feasible_rational,
    ge,
)
from .qpoly import QPoly
from .work import charge as _charge_work

__all__ = [
    "CountingError",
    "Piece",
    "cardinality",
    "count_points",
    "piecewise_total",
    "piecewise_values",
]


class CountingError(Exception):
    """Raised when the symbolic counter cannot handle a set."""


Piece = Tuple[ConstraintSystem, QPoly]


def count_points(
    system: ConstraintSystem,
    count_vars: Sequence[str],
    *,
    weight: Optional[QPoly] = None,
    max_pieces: int = 4096,
) -> List[Piece]:
    """Count the integer points of ``system`` over ``count_vars``.

    ``count_vars`` are ordered outermost first; every other free variable of
    the system is treated as a parameter.  The result is a list of disjoint
    pieces ``(parameter domain, quasi-polynomial)``; parameter valuations not
    covered by any piece have count zero.  ``weight`` (default 1) allows
    summing a quasi-polynomial over the set instead of plain counting.
    """
    poly = weight if weight is not None else QPoly.constant(1)
    state = _CountState(max_pieces=max_pieces)
    pieces = state.count(system, list(count_vars), poly)
    return pieces


class _CountState:
    def __init__(self, max_pieces: int) -> None:
        self.max_pieces = max_pieces
        self.pieces_emitted = 0
        self.fresh_counter = 0

    def fresh_name(self, base: str) -> str:
        self.fresh_counter += 1
        return f"{base}__s{self.fresh_counter}"

    def count(self, system: ConstraintSystem, count_vars: List[str], poly: QPoly) -> List[Piece]:
        # One unit per recursion step (chambers, residue classes): the
        # dominant cost driver of the symbolic counter.
        _charge_work()
        if system.has_trivially_false():
            return []
        if not feasible_rational(system):
            return []
        if not count_vars:
            self.pieces_emitted += 1
            if self.pieces_emitted > self.max_pieces:
                raise CountingError("piece explosion during symbolic counting")
            return [(system, poly)]
        inner = count_vars[-1]
        outer = count_vars[:-1]

        # Residue-split if any div depends on the summation variable, either in
        # the constraints or in the accumulated polynomial.  Identical
        # denominators are deduplicated before the LCM so repeated moduli do
        # not cost extra gcd work (and the modulus stays deterministic).
        denominators = {d.denominator for d in system.divs_involving([inner])}
        denominators |= {d.denominator for d in poly.divs() if inner in d.argument().free_variables()}
        if denominators:
            modulus = 1
            for d in sorted(denominators):
                modulus = modulus * d // math.gcd(modulus, d)
            return self._residue_split(system, outer, inner, poly, modulus)

        try:
            lowers, uppers, rest = bounds_for(system, inner)
        except ValueError as exc:  # pragma: no cover - defensive
            raise CountingError(str(exc)) from exc
        lowers = _dedupe_bounds(lowers)
        uppers = _dedupe_bounds(uppers)
        if not lowers or not uppers:
            raise UnboundedSetError(f"count variable {inner} is unbounded")

        # Bound expressions are interned once up front: ``Bound.value`` builds
        # a fresh quasi-polynomial (possibly a new div) on every call, and the
        # chamber decomposition below would otherwise rebuild each one
        # O(|lowers| x |uppers|) times.
        lower_values = [b.value() for b in lowers]
        upper_values = [b.value() for b in uppers]

        results: List[Piece] = []
        for li, low_value in enumerate(lower_values):
            for ui, up_value in enumerate(upper_values):
                case = ConstraintSystem(rest)
                _add_extremal_constraints(case, low_value, li, lower_values, is_lower=True)
                _add_extremal_constraints(case, up_value, ui, upper_values, is_lower=False)
                case.add(ge(up_value - low_value, 0))
                if case.has_trivially_false():
                    continue
                summed = poly.sum_over(inner, low_value, up_value)
                results.extend(self.count(case, list(outer), summed))
        return results

    def _residue_split(
        self,
        system: ConstraintSystem,
        outer: List[str],
        inner: str,
        poly: QPoly,
        modulus: int,
    ) -> List[Piece]:
        results: List[Piece] = []
        fresh = self.fresh_name(inner)
        for residue in range(modulus):
            replacement = QPoly.variable(fresh) * modulus + residue
            sub = {inner: replacement}
            sub_system = system.substitute(sub)
            sub_poly = poly.substitute(sub)
            results.extend(self.count(sub_system, list(outer) + [fresh], sub_poly))
        return results


def _dedupe_bounds(bounds: List[Bound]) -> List[Bound]:
    seen = []
    values = set()
    for bound in bounds:
        key = (bound.value(), bound.is_lower)
        if key in values:
            continue
        values.add(key)
        seen.append(bound)
    return seen


def _add_extremal_constraints(
    case: ConstraintSystem,
    chosen: QPoly,
    index: int,
    all_values: List[QPoly],
    *,
    is_lower: bool,
) -> None:
    """Constrain ``chosen`` to be the tight bound with disjoint tie-breaking.

    For lower bounds ``chosen`` must be the maximum (ties resolved towards the
    smallest index); for upper bounds the minimum.
    """
    for other_index, other in enumerate(all_values):
        if other_index == index:
            continue
        if is_lower:
            if other_index < index:
                case.add(ge(chosen - other - 1, 0))
            else:
                case.add(ge(chosen - other, 0))
        else:
            if other_index < index:
                case.add(ge(other - chosen - 1, 0))
            else:
                case.add(ge(other - chosen, 0))


# ----------------------------------------------------------------------
# Aggregation helpers
# ----------------------------------------------------------------------
def piecewise_total(pieces: Sequence[Piece]) -> Fraction:
    """Sum the (necessarily constant) polynomials of parameter-free pieces."""
    total = Fraction(0)
    for domain, poly in pieces:
        if domain.variables():
            raise CountingError("piecewise_total requires parameter-free pieces")
        if domain.has_trivially_false():
            continue
        if not poly.is_constant():
            raise CountingError(f"piece polynomial is not constant: {poly}")
        total += poly.constant_value()
    return total


def piecewise_values(
    pieces: Sequence[Piece],
    values,
    *,
    backend: str = "auto",
) -> Optional[List[int]]:
    """Evaluate a parametric count at a batch of parameter points.

    ``pieces`` is the result of :func:`count_points`; ``values`` maps each
    parameter name to an equal-length sequence of integers.  Returns the
    per-point totals (chambers tested in exact rational arithmetic, counts
    summed where they contain the point), or ``None`` when any containing
    chamber fails to evaluate — the caller's cue to fall back to exact
    per-point counting.  The NumPy backend (``backend="auto"|"numpy"``)
    evaluates each polynomial over the whole grid in a few scaled-int64
    array ops and is byte-identical to the pure-Python reference; see
    :func:`repro.isl.veceval.evaluate_pieces`.  Charges no work units.
    """
    from .veceval import evaluate_pieces

    return evaluate_pieces(pieces, values, backend=backend)


def cardinality(
    system: ConstraintSystem,
    count_vars: Sequence[str],
    *,
    cross_check: bool = False,
) -> int:
    """Number of integer points of a non-parametric set.

    With ``cross_check=True`` the symbolic result is validated against
    explicit enumeration (used in the test-suite on small sets).
    """
    pieces = count_points(system, count_vars)
    total = piecewise_total(pieces)
    if total.denominator != 1:
        raise CountingError(f"non-integral cardinality {total}")
    value = int(total)
    if value < 0:
        raise CountingError(f"negative cardinality {value}")
    if cross_check:
        explicit = count_points_explicit(system, count_vars)
        if explicit != value:
            raise CountingError(f"symbolic count {value} != explicit count {explicit}")
    return value
