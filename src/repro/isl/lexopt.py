"""Parametric lexicographic optimisation over affine constraint systems.

The paper's implementation relies on isl's ``lexmin`` operator (Feautrier's
parametric integer programming) to compute, for every memory access, the
previous access to the same cache line.  This module provides the equivalent
operation for the constraint systems the cache model produces: a *greedy
per-dimension* parametric optimisation with chamber splitting.

For every optimised dimension the inner dimensions are projected away by
Fourier-Motzkin elimination; the elimination is only accepted when it is
certifiably exact (unit-coefficient condition), otherwise
:class:`LexOptError` is raised and the caller falls back to a different
strategy (per the hybrid design of the model).  On PolyBench-style programs,
whose loop bounds and access functions have unit coefficients, the exact path
always applies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .constraints import (
    ConstraintSystem,
    NonExactProjectionError,
    UnboundedSetError,
    bounds_for,
    feasible_rational,
    fm_eliminate,
    ge,
    substitute_equalities,
)
from .qpoly import QPoly

__all__ = ["LexOptError", "LexPiece", "lexmax", "lexmin"]


class LexOptError(Exception):
    """Raised when the greedy parametric optimisation cannot be certified."""


#: A piece of a parametric lexicographic optimum: the context is a constraint
#: system over the parameters; the values are quasi-affine expressions (one
#: per optimised variable) valid on that context.
LexPiece = Tuple[ConstraintSystem, Tuple[QPoly, ...]]


def lexmax(system: ConstraintSystem, opt_vars: Sequence[str]) -> List[LexPiece]:
    """Parametric lexicographic maximum of ``opt_vars`` over ``system``.

    Every free variable that is not in ``opt_vars`` is a parameter.  The
    returned pieces have pairwise disjoint contexts whose union is exactly the
    set of parameter values for which ``system`` is non-empty.
    """
    return _lex_opt(system, list(opt_vars), maximize=True)


def lexmin(system: ConstraintSystem, opt_vars: Sequence[str]) -> List[LexPiece]:
    """Parametric lexicographic minimum of ``opt_vars`` over ``system``."""
    return _lex_opt(system, list(opt_vars), maximize=False)


def _lex_opt(system: ConstraintSystem, opt_vars: List[str], *, maximize: bool) -> List[LexPiece]:
    if system.has_trivially_false() or not feasible_rational(system):
        return []
    if not opt_vars:
        return [(system, ())]
    head, tail = opt_vars[0], opt_vars[1:]

    projected = _project_inner(system, head, tail)
    try:
        lowers, uppers, rest = bounds_for(projected, head)
    except ValueError as exc:
        raise LexOptError(str(exc)) from exc
    primary = uppers if maximize else lowers
    secondary = lowers if maximize else uppers
    if not primary:
        raise UnboundedSetError(f"variable {head} has no {'upper' if maximize else 'lower'} bound")

    primary_values = [b.value() for b in primary]
    secondary_values = [b.value() for b in secondary]

    pieces: List[LexPiece] = []
    for index, value in enumerate(primary_values):
        case = ConstraintSystem(rest)
        _constrain_extremal(case, value, index, primary_values, minimum=maximize)
        for other in secondary_values:
            # The chosen optimum must lie within every opposite bound,
            # otherwise the candidate set is empty for those parameters.
            case.add(ge(value - other, 0) if maximize else ge(other - value, 0))
        if case.has_trivially_false() or not feasible_rational(case):
            continue
        fixed = system.substitute({head: value})
        for sub_context, sub_values in _lex_opt(fixed, tail, maximize=maximize):
            context = case.conjoin(sub_context)
            if context.has_trivially_false() or not feasible_rational(context):
                continue
            pieces.append((context, (value,) + sub_values))
    return pieces


def _project_inner(system: ConstraintSystem, head: str, tail: List[str]) -> ConstraintSystem:
    """Project the system onto ``head`` and the parameters, exactly.

    Divs that mention optimised variables are first expanded into existential
    variables; unit-coefficient equalities (the common cache-line-equality
    pattern) are used to substitute them away before the exact
    Fourier-Motzkin elimination.
    """
    expanded, fresh, _ = system.expand_divs([head] + tail)
    eliminate = list(tail) + list(fresh)
    if eliminate:
        expanded, assignment = substitute_equalities(expanded, eliminate)
        eliminate = [name for name in eliminate if name not in assignment]
    projected = expanded
    for name in reversed(eliminate):
        if not projected.involves(name):
            continue
        try:
            projected = fm_eliminate(projected, name, require_exact=True)
        except NonExactProjectionError as exc:
            raise LexOptError(f"cannot exactly project {name}: {exc}") from exc
    return projected


def _constrain_extremal(
    case: ConstraintSystem,
    chosen: QPoly,
    index: int,
    values: List[QPoly],
    *,
    minimum: bool,
) -> None:
    """Constrain ``chosen`` to be the tight bound (disjoint tie-breaking).

    When maximising the variable we select the *minimum* upper bound
    (``minimum=True``); when minimising we select the maximum lower bound.
    """
    for other_index, other in enumerate(values):
        if other_index == index:
            continue
        if minimum:
            if other_index < index:
                case.add(ge(other - chosen - 1, 0))
            else:
                case.add(ge(other - chosen, 0))
        else:
            if other_index < index:
                case.add(ge(chosen - other - 1, 0))
            else:
                case.add(ge(chosen - other, 0))


# ----------------------------------------------------------------------
# Brute-force oracle (used by the test-suite)
# ----------------------------------------------------------------------
def lexmax_explicit(
    system: ConstraintSystem,
    opt_vars: Sequence[str],
    param_values: Dict[str, int],
) -> Tuple[int, ...]:
    """Explicit lexicographic maximum for fixed parameter values.

    Returns ``None`` if the set is empty.  Only used as a test oracle.
    """
    from .constraints import enumerate_points

    fixed = system.substitute(param_values)
    best = None
    for point in enumerate_points(fixed, list(opt_vars)):
        candidate = tuple(point[v] for v in opt_vars)
        if best is None or candidate > best:
            best = candidate
    return best


def evaluate_pieces(pieces: List[LexPiece], opt_count: int, param_values: Dict[str, int]):
    """Evaluate a piecewise lexicographic optimum at a parameter point.

    Returns the tuple of integer values, or ``None`` when no piece covers the
    parameter point (i.e. the underlying set is empty there).
    """
    for context, values in pieces:
        if _holds(context, param_values):
            return tuple(int(v.evaluate(param_values)) for v in values)
    return None


def _holds(system: ConstraintSystem, values: Dict[str, int]) -> bool:
    for constraint in system.constraints:
        value = constraint.expr.evaluate(values)
        if constraint.kind == "eq":
            if value != 0:
                return False
        elif value < 0:
            return False
    return True
