"""Exact bulk evaluation of quasi-polynomials over grids of integer points.

The symbolic pipeline produces :class:`~repro.isl.qpoly.QPoly` values (and
piecewise collections of them, guarded by
:class:`~repro.isl.constraints.ConstraintSystem` chambers) that downstream
stages evaluate at *many* integer parameter points: the miss-curve path
evaluates every parametric capacity chamber at every cache size of the grid,
and the vectorized simulator evaluates address and schedule polynomials at
every point of an iteration domain.  Doing that one Python ``Fraction`` at a
time is the wall-time floor of the analytical model; this module is the
shared NumPy fast path.

Exactness contract
    Both entry points (:func:`evaluate_poly`, :func:`evaluate_pieces`) are
    **bit-exact** against the scalar reference (``QPoly.evaluate_int`` /
    ``QPoly.evaluate`` driven point by point): same values, and ``None`` /
    raised errors in exactly the same cases.  The NumPy path achieves this
    with scaled integer arithmetic — the polynomial is multiplied by the LCM
    of its coefficient denominators so every intermediate is an ``int64``,
    then divided back with an exactness check (:func:`eval_qpoly_arrays`).
    A conservative magnitude pre-check (:func:`_peak_bound`) falls back to
    the pure-Python path whenever an intermediate could reach ``2**62``, so
    ``int64`` overflow can never silently wrap.

Backend selection
    The ``backend`` knob accepts ``"auto" | "numpy" | "python"`` (see
    :data:`BACKENDS`).  ``"auto"`` resolves through ``$REPRO_BACKEND`` and
    NumPy availability via :func:`resolve_backend`; requesting ``"numpy"``
    without NumPy installed raises :class:`BackendUnavailableError`.  This
    module is the canonical home of the knob — the simulator's
    :mod:`repro.simulator.vectorized` re-exports it so both the concrete and
    the symbolic pipelines share one resolution rule.

Budget charging
    Evaluation charges **no** work units: the deterministic work budget
    (:mod:`repro.isl.work`) meters symbolic reasoning (feasibility checks,
    counting recursion), not numeric evaluation, so switching backends can
    never change when a budgeted analysis trips.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .constraints import ConstraintSystem
from .qpoly import Div, QPoly

try:  # pragma: no cover - exercised through resolve_backend()
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None

__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "BackendUnavailableError",
    "default_backend",
    "eval_qpoly_arrays",
    "evaluate_pieces",
    "evaluate_poly",
    "numpy_available",
    "resolve_backend",
    "validate_backend_env",
]

#: Accepted values of the ``backend`` option.
BACKENDS = ("auto", "numpy", "python")

#: Environment override consulted by ``backend="auto"``.
BACKEND_ENV = "REPRO_BACKEND"

#: Conservative ceiling for any intermediate of the scaled evaluation; above
#: this the NumPy path silently defers to the pure-Python reference.
_INT64_LIMIT = 2**62


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run in this environment."""


def numpy_available() -> bool:
    """True when NumPy is importable (the optional ``[numpy]`` extra)."""
    return _np is not None


def default_backend() -> str:
    """Backend implied by ``"auto"``: ``$REPRO_BACKEND`` or best available."""
    env = os.environ.get(BACKEND_ENV, "").strip().lower()
    if env and env != "auto":
        return env
    return "numpy" if numpy_available() else "python"


def validate_backend_env() -> None:
    """Fail fast on a bad ``$REPRO_BACKEND`` value.

    Entry points (the CLI and :class:`repro.api.Session`) call this eagerly
    so a typo in the environment surfaces immediately with the offending
    value named, instead of leaking through ``backend="auto"`` into a deep
    :class:`ValueError` the first time a trace runs.
    """
    env = os.environ.get(BACKEND_ENV, "").strip().lower()
    if env and env not in BACKENDS:
        raise ValueError(
            f"unknown backend {env!r} in ${BACKEND_ENV} "
            f"(expected {'|'.join(BACKENDS)})"
        )


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a backend request to a concrete implementation name.

    ``"auto"`` picks NumPy when it is importable (or whatever
    ``$REPRO_BACKEND`` names) and silently falls back to the pure-Python
    reference otherwise; an explicit ``"numpy"`` without NumPy installed is
    an error so CI equivalence jobs cannot silently test python against
    python.
    """
    name = (backend or "auto").strip().lower()
    from_env = False
    if name == "auto":
        env = os.environ.get(BACKEND_ENV, "").strip().lower()
        from_env = bool(env) and env != "auto"
        name = default_backend()
    if name not in ("numpy", "python"):
        source = f"{name!r} in ${BACKEND_ENV}" if from_env else repr(backend)
        raise ValueError(f"unknown backend {source} (expected {'|'.join(BACKENDS)})")
    if name == "numpy" and not numpy_available():
        raise BackendUnavailableError(
            "backend 'numpy' requested but NumPy is not installed; "
            "install the optional extra (pip install repro-haystack[numpy]) "
            "or use backend='python'"
        )
    return name


def _require_numpy():
    if _np is None:
        raise BackendUnavailableError("NumPy is required for the vectorized backend")
    return _np


_gcd = math.gcd


# ----------------------------------------------------------------------
# Exact integer evaluation of quasi-polynomials on index arrays
# ----------------------------------------------------------------------
def _coefficient_scale(poly: QPoly) -> int:
    scale = 1
    for coeff in poly.terms.values():
        scale = scale * coeff.denominator // _gcd(scale, coeff.denominator)
    return scale


def _eval_scaled(poly: QPoly, values: Dict[str, "object"], np) -> Tuple["object", int]:
    """``(scale * poly)`` on integer arrays, as ``(int64 array, scale)``.

    The scale is the (positive) LCM of the coefficient denominators, so the
    sign of the scaled value equals the sign of the exact rational value —
    which is all a constraint test needs, with no division at all.
    """
    scale = _coefficient_scale(poly)
    total = None
    for monomial, coeff in poly.terms.items():
        term = _np_full_like_any(values, coeff.numerator * (scale // coeff.denominator), np)
        for sym, exp in monomial:
            base = _eval_symbol(sym, values, np)
            for _ in range(exp):
                term = term * base
        total = term if total is None else total + term
    if total is None:
        total = _np_full_like_any(values, 0, np)
    return total, scale


def eval_qpoly_arrays(poly: QPoly, values: Dict[str, "object"], np=None):
    """Evaluate ``poly`` elementwise on integer arrays, exactly.

    Coefficients are Fractions; the whole polynomial is scaled by the LCM of
    the coefficient denominators so all arithmetic happens in int64, then
    divided back (the division must be exact — raises :class:`ValueError`
    otherwise, like ``QPoly.evaluate_int``).  Div symbols evaluate their
    argument the same way and use ``floor(A / (L * d)) == floor((A / L) / d)``.
    Unknown variables raise :class:`KeyError`, like the scalar path.

    This is the low-level building block: it assumes the inputs fit int64
    (callers guard with a magnitude pre-check) and requires NumPy.
    """
    np = np or _require_numpy()
    total, scale = _eval_scaled(poly, values, np)
    if scale != 1:
        quotient, remainder = np.divmod(total, scale)
        if remainder.any():
            raise ValueError(f"expected integral values evaluating {poly}")
        return quotient
    return total


def _eval_symbol(sym, values: Dict[str, "object"], np):
    if isinstance(sym, Div):
        argument = sym.argument()
        scale = _coefficient_scale(argument)
        scaled, _ = _eval_scaled(argument * scale, values, np)
        return np.floor_divide(scaled, scale * sym.denominator)
    try:
        return values[sym]
    except KeyError:
        raise KeyError(f"no value for variable {sym!r}") from None


def _np_full_like_any(values: Dict[str, "object"], fill: int, np):
    for array in values.values():
        return np.full_like(array, fill)
    return np.asarray([fill], dtype=np.int64)


# ----------------------------------------------------------------------
# int64 overflow guard
# ----------------------------------------------------------------------
def _peak_bound(poly: QPoly, max_abs: Mapping[str, int]) -> int:
    """Upper bound on ``|any intermediate|`` of the scaled evaluation.

    Computed in unbounded Python ints from the per-variable magnitude bounds;
    conservative (Div bounds use the scaled argument's bound).  Unknown
    variables raise :class:`KeyError` — the evaluation would too, so the
    caller treats that as "safe to attempt".
    """
    scale = _coefficient_scale(poly)
    total = 0
    peak = 0
    for monomial, coeff in poly.terms.items():
        term = abs(coeff.numerator) * (scale // coeff.denominator)
        for sym, exp in monomial:
            if isinstance(sym, Div):
                base = _peak_bound(sym.argument(), max_abs)
                peak = max(peak, base)
            else:
                base = max_abs[sym]
            term *= max(base, 1) ** exp
        total += term
        peak = max(peak, term, total)
    return peak


def _fits_int64(polys: Iterable[QPoly], max_abs: Mapping[str, int]) -> bool:
    for poly in polys:
        try:
            if _peak_bound(poly, max_abs) >= _INT64_LIMIT:
                return False
        except KeyError:
            continue  # evaluation raises KeyError on either backend
    return True


# ----------------------------------------------------------------------
# Public grid evaluation
# ----------------------------------------------------------------------
def _check_grid(values: Mapping[str, Sequence[int]]) -> int:
    if not values:
        raise ValueError("evaluation grid must bind at least one variable")
    lengths = {len(seq) for seq in values.values()}
    if len(lengths) != 1:
        raise ValueError(f"evaluation grid sequences have mismatched lengths {sorted(lengths)}")
    return lengths.pop()


def evaluate_poly(
    poly: QPoly,
    values: Mapping[str, Sequence[int]],
    *,
    backend: str = "auto",
) -> List[int]:
    """Evaluate one polynomial at a batch of integer points.

    ``values`` binds each variable name to a sequence of integers; all
    sequences must have the same length ``n`` and the result is the list of
    ``n`` integer values, identical to calling ``poly.evaluate_int`` at each
    point in order.  Raises :class:`KeyError` for unbound variables and
    :class:`ValueError` for non-integral values, exactly like the scalar
    reference; charges no work units.
    """
    resolved = resolve_backend(backend)
    length = _check_grid(values)
    if resolved == "numpy":
        max_abs = {name: max((abs(int(v)) for v in seq), default=0) for name, seq in values.items()}
        if _fits_int64([poly], max_abs):
            np = _require_numpy()
            arrays = {name: np.asarray(list(seq), dtype=np.int64) for name, seq in values.items()}
            return [int(v) for v in eval_qpoly_arrays(poly, arrays, np)]
    return [poly.evaluate_int({name: seq[k] for name, seq in values.items()}) for k in range(length)]


Piece = Tuple[ConstraintSystem, QPoly]


def evaluate_pieces(
    pieces: Sequence[Piece],
    values: Mapping[str, Sequence[int]],
    *,
    backend: str = "auto",
) -> Optional[List[int]]:
    """Sum a piecewise quasi-polynomial at a batch of integer points.

    ``pieces`` is a sequence of ``(chamber, polynomial)`` pairs as produced
    by :func:`repro.isl.counting.count_points`; ``values`` binds parameters
    to equal-length integer sequences.  For each point the chambers are
    tested (``eq`` constraints must be 0, ``ineq`` constraints >= 0, in exact
    rational arithmetic) and the polynomials of the containing chambers are
    summed.  Returns the per-point totals, or ``None`` as soon as any
    containing chamber's polynomial fails to evaluate to an integer or any
    expression references an unbound variable — the same "give up and let
    the caller fall back" contract as the scalar chamber walk in
    :mod:`repro.core.capacity`.

    The result is byte-identical across backends: the NumPy path tests
    chamber membership on scaled integers (no division), verifies
    integrality only at member points, and defers to the pure-Python
    reference whenever int64 could overflow or an unbound variable makes the
    outcome order-dependent.  Charges no work units.
    """
    resolved = resolve_backend(backend)
    length = _check_grid(values)
    if resolved == "numpy":
        result = _evaluate_pieces_numpy(pieces, values, length)
        if result is not _DEFER:
            return result
    return _evaluate_pieces_python(pieces, values, length)


#: Sentinel: the NumPy path cannot decide and the reference must run.
_DEFER = object()


def _evaluate_pieces_python(
    pieces: Sequence[Piece],
    values: Mapping[str, Sequence[int]],
    length: int,
) -> Optional[List[int]]:
    totals: List[int] = []
    for position in range(length):
        point = {name: seq[position] for name, seq in values.items()}
        total = 0
        for domain, polynomial in pieces:
            try:
                if not _domain_contains(domain, point):
                    continue
                total += polynomial.evaluate_int(point)
            except (KeyError, ValueError):
                return None
        totals.append(total)
    return totals


def _domain_contains(domain: ConstraintSystem, point: Mapping[str, int]) -> bool:
    for constraint in domain.constraints:
        value = constraint.expr.evaluate(point)
        if constraint.kind == "eq":
            if value != 0:
                return False
        elif value < 0:
            return False
    return True


def _evaluate_pieces_numpy(
    pieces: Sequence[Piece],
    values: Mapping[str, Sequence[int]],
    length: int,
):
    np = _require_numpy()
    max_abs = {name: max((abs(int(v)) for v in seq), default=0) for name, seq in values.items()}
    guarded: List[QPoly] = []
    for domain, polynomial in pieces:
        guarded.append(polynomial)
        guarded.extend(constraint.expr for constraint in domain.constraints)
    if not _fits_int64(guarded, max_abs):
        return _DEFER
    arrays = {name: np.asarray(list(seq), dtype=np.int64) for name, seq in values.items()}
    totals = np.zeros(length, dtype=np.int64)
    try:
        for domain, polynomial in pieces:
            mask = np.ones(length, dtype=bool)
            for constraint in domain.constraints:
                scaled, _ = _eval_scaled(constraint.expr, arrays, np)
                ok = (scaled == 0) if constraint.kind == "eq" else (scaled >= 0)
                mask &= ok
            if not mask.any():
                continue
            scaled, scale = _eval_scaled(polynomial, arrays, np)
            quotient, remainder = np.divmod(scaled, scale)
            if remainder[mask].any():
                # A containing chamber's polynomial is non-integral at a
                # member point: the scalar walk reaches that same point and
                # raises ValueError, so the answer is None either way.
                return None
            totals[mask] += quotient[mask]
    except KeyError:
        # An unbound variable: whether the scalar walk raises depends on its
        # point-major short-circuit order, so let the reference decide.
        return _DEFER
    return [int(v) for v in totals]
