"""Pure-Python polyhedral substrate ("polylite").

This subpackage replaces the isl + barvinok C libraries the paper's
implementation builds on.  It provides quasi-polynomials, affine constraint
systems, named integer sets and maps, parametric lexicographic optimisation,
and symbolic point counting.
"""

from .qpoly import Div, QPoly, affine_expr, constant, floor_div, variable
from .constraints import (
    Constraint,
    ConstraintSystem,
    NonExactProjectionError,
    UnboundedSetError,
    eq,
    ge,
    gt,
    le,
    lt,
)
from .counting import CountingError, cardinality, count_points, piecewise_total, piecewise_values

__all__ = [
    "Constraint",
    "ConstraintSystem",
    "CountingError",
    "Div",
    "NonExactProjectionError",
    "QPoly",
    "UnboundedSetError",
    "affine_expr",
    "cardinality",
    "constant",
    "count_points",
    "eq",
    "floor_div",
    "ge",
    "gt",
    "le",
    "lt",
    "piecewise_total",
    "piecewise_values",
    "variable",
]
