"""Affine constraint systems over named integer variables.

A :class:`Constraint` is a quasi-affine expression compared against zero
(``expr == 0`` or ``expr >= 0``).  A :class:`ConstraintSystem` is a
conjunction of constraints; unions of systems are represented as plain Python
lists of systems by the higher layers.

The module provides the operations the cache model pipeline needs:

* normalisation to integer coefficients,
* substitution,
* rational Fourier-Motzkin elimination (with an exactness certificate for the
  cases where the integer projection coincides with the rational one),
* rational feasibility checks used to prune empty pieces,
* bound extraction for a variable (used by symbolic counting and by the
  parametric lexicographic optimisation), and
* explicit enumeration of integer points (test oracle and partial-enumeration
  fallback).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from .qpoly import Div, QPoly, floor_div
from .work import charge as _charge_work

__all__ = [
    "Constraint",
    "ConstraintSystem",
    "NonExactProjectionError",
    "UnboundedSetError",
    "eq",
    "ge",
    "le",
    "gt",
    "lt",
]


class NonExactProjectionError(Exception):
    """Raised when Fourier-Motzkin elimination cannot be certified exact."""


class UnboundedSetError(Exception):
    """Raised when a variable that must be bounded has no finite bound."""


EQ = "eq"
INEQ = "ineq"


@dataclass(frozen=True)
class Constraint:
    """``expr == 0`` (kind ``eq``) or ``expr >= 0`` (kind ``ineq``)."""

    expr: QPoly
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (EQ, INEQ):
            raise ValueError(f"unknown constraint kind {self.kind!r}")
        if not self.expr.is_affine():
            raise ValueError(f"constraint expression must be (quasi-)affine: {self.expr}")

    def substitute(self, assignment: Mapping[str, Union[QPoly, int, Fraction]]) -> "Constraint":
        return Constraint(self.expr.substitute(assignment), self.kind)

    def negate(self) -> List["Constraint"]:
        """Return constraints describing the integer complement.

        ``expr >= 0`` negates to ``-expr - 1 >= 0``.  ``expr == 0`` negates to
        the *disjunction* ``expr >= 1 or -expr >= 1``; the two branches are
        returned as a list and it is the caller's responsibility to build the
        union.
        """
        if self.kind == INEQ:
            return [Constraint(-self.expr - 1, INEQ)]
        return [Constraint(self.expr - 1, INEQ), Constraint(-self.expr - 1, INEQ)]

    def is_trivially_true(self) -> bool:
        if not self.expr.is_constant():
            return False
        value = self.expr.constant_value()
        return value == 0 if self.kind == EQ else value >= 0

    def is_trivially_false(self) -> bool:
        if not self.expr.is_constant():
            return False
        value = self.expr.constant_value()
        return value != 0 if self.kind == EQ else value < 0

    def normalized(self) -> "Constraint":
        """Scale to coprime integer coefficients (and tighten inequalities).

        For inequalities the constant term may be tightened to
        ``floor(const / g)`` after dividing by the gcd ``g`` of the variable
        coefficients, which is valid over the integers.
        """
        coeffs, const = self.expr.affine_coefficients()
        if not coeffs:
            return self
        denominators = [c.denominator for c in coeffs.values()] + [const.denominator]
        lcm = 1
        for d in denominators:
            lcm = lcm * d // _gcd(lcm, d)
        scaled = {sym: c * lcm for sym, c in coeffs.items()}
        scaled_const = const * lcm
        gcd = 0
        for c in scaled.values():
            gcd = _gcd(gcd, abs(c.numerator))
        if gcd > 1:
            scaled = {sym: Fraction(c.numerator // gcd) for sym, c in scaled.items()}
            if self.kind == INEQ:
                scaled_const = Fraction(_floor_div_int(scaled_const.numerator, gcd * scaled_const.denominator))
            else:
                if scaled_const.numerator % gcd:
                    # Equality with non-divisible constant: keep as is; the
                    # system will be detected infeasible elsewhere.
                    scaled = {sym: c * gcd for sym, c in scaled.items()}
                else:
                    scaled_const = scaled_const / gcd
        expr = QPoly.from_affine(scaled, scaled_const)
        return Constraint(expr, self.kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        op = "=" if self.kind == EQ else ">="
        return f"{self.expr} {op} 0"


#: Alias so call sites read the same as before; ``math.gcd`` is C-implemented
#: and sits on the constraint-normalisation hot path.
_gcd = math.gcd


def _floor_div_int(numerator: int, denominator: int) -> int:
    return numerator // denominator


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def _as_poly(value: Union[QPoly, int, Fraction, str]) -> QPoly:
    if isinstance(value, QPoly):
        return value
    if isinstance(value, str):
        return QPoly.variable(value)
    return QPoly.constant(value)


def ge(lhs, rhs) -> Constraint:
    """Constraint ``lhs >= rhs``."""
    return Constraint(_as_poly(lhs) - _as_poly(rhs), INEQ)


def le(lhs, rhs) -> Constraint:
    """Constraint ``lhs <= rhs``."""
    return Constraint(_as_poly(rhs) - _as_poly(lhs), INEQ)


def gt(lhs, rhs) -> Constraint:
    """Strict integer constraint ``lhs > rhs`` i.e. ``lhs >= rhs + 1``."""
    return Constraint(_as_poly(lhs) - _as_poly(rhs) - 1, INEQ)


def lt(lhs, rhs) -> Constraint:
    """Strict integer constraint ``lhs < rhs`` i.e. ``lhs <= rhs - 1``."""
    return Constraint(_as_poly(rhs) - _as_poly(lhs) - 1, INEQ)


def eq(lhs, rhs) -> Constraint:
    """Constraint ``lhs == rhs``."""
    return Constraint(_as_poly(lhs) - _as_poly(rhs), EQ)


# ----------------------------------------------------------------------
# Constraint systems
# ----------------------------------------------------------------------
class ConstraintSystem:
    """A conjunction of quasi-affine constraints.

    The system does not distinguish between set variables and parameters;
    callers pass the relevant variable lists to the operations that need the
    distinction (counting, lexicographic optimisation, enumeration).
    """

    __slots__ = ("constraints", "_keys", "_ineq_by_coeffs")

    def __init__(self, constraints: Optional[Iterable[Constraint]] = None) -> None:
        self.constraints: List[Constraint] = []
        self._keys: set = set()
        #: For inequalities: canonical coefficient vector -> index into
        #: ``constraints``; used to keep only the tightest bound per direction.
        self._ineq_by_coeffs: Dict[Tuple, int] = {}
        if constraints:
            for constraint in constraints:
                self.add(constraint)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, *, pre_normalized: bool = False) -> None:
        if constraint.is_trivially_true():
            return
        normalized = constraint if pre_normalized else constraint.normalized()
        key = (normalized.kind, normalized.expr._canonical_items())
        if key in self._keys:
            return
        if normalized.kind == INEQ and not normalized.is_trivially_false():
            # Keep only the tightest inequality per coefficient direction:
            # a.x + c1 >= 0 subsumes a.x + c2 >= 0 whenever c1 <= c2.
            const = normalized.expr.constant_value()
            coeff_key = tuple(
                item for item in normalized.expr._canonical_items() if item[0] != ()
            )
            existing_index = self._ineq_by_coeffs.get(coeff_key)
            if existing_index is not None:
                existing = self.constraints[existing_index]
                if existing.expr.constant_value() <= const:
                    return
                self.constraints[existing_index] = normalized
                self._keys.add(key)
                return
            self._keys.add(key)
            self._ineq_by_coeffs[coeff_key] = len(self.constraints)
            self.constraints.append(normalized)
            return
        self._keys.add(key)
        self.constraints.append(normalized)

    def copy(self) -> "ConstraintSystem":
        clone = ConstraintSystem()
        clone.constraints = list(self.constraints)
        clone._keys = set(self._keys)
        clone._ineq_by_coeffs = dict(self._ineq_by_coeffs)
        return clone

    def conjoin(self, other: Union["ConstraintSystem", Iterable[Constraint]]) -> "ConstraintSystem":
        clone = self.copy()
        if isinstance(other, ConstraintSystem):
            # Constraints stored in a system are already normalised.
            for constraint in other.constraints:
                clone.add(constraint, pre_normalized=True)
        else:
            for constraint in other:
                clone.add(constraint)
        return clone

    def substitute(self, assignment: Mapping[str, Union[QPoly, int, Fraction]]) -> "ConstraintSystem":
        return ConstraintSystem(c.substitute(assignment) for c in self.constraints)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def variables(self) -> set:
        names: set = set()
        for constraint in self.constraints:
            names |= constraint.expr.free_variables()
        return names

    def has_trivially_false(self) -> bool:
        return any(c.is_trivially_false() for c in self.constraints)

    def involves(self, name: str) -> bool:
        return any(c.expr.involves(name) for c in self.constraints)

    def divs_involving(self, names: Sequence[str]) -> List[Div]:
        """Divs whose argument mentions any of ``names`` (recursively)."""
        name_set = set(names)
        found: List[Div] = []
        seen = set()
        for constraint in self.constraints:
            for div in constraint.expr.divs():
                if div in seen:
                    continue
                seen.add(div)
                if div.argument().free_variables() & name_set:
                    found.append(div)
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "{ " + " and ".join(repr(c) for c in self.constraints) + " }"

    def __len__(self) -> int:
        return len(self.constraints)

    # ------------------------------------------------------------------
    # Div expansion
    # ------------------------------------------------------------------
    def expand_divs(self, names: Sequence[str], prefix: str = "__q") -> Tuple["ConstraintSystem", List[str], Dict[str, Div]]:
        """Replace divs involving ``names`` by fresh existential variables.

        Returns the rewritten system, the list of fresh variable names (to be
        treated as additional innermost variables) and the mapping back to the
        original divs.  Divs that only involve other symbols (parameters) are
        left untouched; they are constants of the sub-problem.
        """
        targets = self.divs_involving(names)
        if not targets:
            return self, [], {}
        system = self
        fresh: List[str] = []
        mapping: Dict[str, Div] = {}
        counter = 0
        while targets:
            div = targets[0]
            var = f"{prefix}{counter}"
            counter += 1
            fresh.append(var)
            mapping[var] = div
            replacement = QPoly.variable(var)
            rewritten = ConstraintSystem()
            for constraint in system.constraints:
                rewritten.add(Constraint(_replace_div(constraint.expr, div, replacement), constraint.kind))
            argument = _replace_div_in_poly_arguments(div.argument(), mapping)
            rewritten.add(ge(argument - QPoly.variable(var) * div.denominator, 0))
            rewritten.add(le(argument - QPoly.variable(var) * div.denominator, div.denominator - 1))
            system = rewritten
            targets = system.divs_involving(list(names) + fresh)
        return system, fresh, mapping


def _replace_div(poly: QPoly, div: Div, replacement: QPoly) -> QPoly:
    terms: Dict = {}
    result = QPoly()
    for monomial, coeff in poly.terms.items():
        factor = QPoly.constant(coeff)
        for sym, exp in monomial:
            if sym == div:
                base = replacement
            elif isinstance(sym, Div):
                base = QPoly.variable(sym)
            else:
                base = QPoly.variable(sym)
            for _ in range(exp):
                factor = factor * base
        result = result + factor
    return result


def _replace_div_in_poly_arguments(poly: QPoly, mapping: Dict[str, Div]) -> QPoly:
    # Arguments of previously expanded divs may nest; with the small
    # denominators used by the cache model this is rare, so we keep the
    # arguments as-is.  The defining constraints added by ``expand_divs``
    # reference the argument polynomial directly.
    return poly


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Bound:
    """A lower or upper bound on a variable.

    For a lower bound the originating constraint is ``coeff * v >= expr`` and
    the implied quasi-affine bound is ``v >= ceil(expr / coeff)``; for an
    upper bound it is ``coeff * v <= expr`` implying ``v <= floor(expr / coeff)``.
    ``coeff`` is always positive.
    """

    expr: QPoly
    coeff: int
    is_lower: bool

    def value(self) -> QPoly:
        if self.coeff == 1:
            return self.expr
        if self.is_lower:
            return floor_div(self.expr + (self.coeff - 1), self.coeff)
        return floor_div(self.expr, self.coeff)


def bounds_for(system: ConstraintSystem, name: str) -> Tuple[List[Bound], List[Bound], List[Constraint]]:
    """Split the system into lower bounds, upper bounds and the rest.

    Equalities involving ``name`` contribute both a lower and an upper bound.
    Constraints whose expression mentions ``name`` inside a div argument are
    not supported here; callers must residue-split those first.
    """
    lowers: List[Bound] = []
    uppers: List[Bound] = []
    rest: List[Constraint] = []
    for constraint in system.constraints:
        expr = constraint.expr
        if expr.degree_in_divs(name):
            raise ValueError(f"variable {name} occurs inside a div argument; residue-split first")
        coeff = expr.coefficient(name)
        if not coeff:
            rest.append(constraint)
            continue
        if coeff.denominator != 1:
            raise ValueError("constraints must be normalised to integer coefficients")
        a = coeff.numerator
        remainder = expr - QPoly.variable(name) * coeff
        if constraint.kind == EQ:
            # a*v + r == 0  ->  v >= ceil(-r/a) and v <= floor(-r/a) (a > 0)
            if a > 0:
                lowers.append(Bound(-remainder, a, True))
                uppers.append(Bound(-remainder, a, False))
            else:
                lowers.append(Bound(remainder, -a, True))
                uppers.append(Bound(remainder, -a, False))
        else:
            if a > 0:
                lowers.append(Bound(-remainder, a, True))
            else:
                uppers.append(Bound(remainder, -a, False))
    return lowers, uppers, rest


# ----------------------------------------------------------------------
# Fourier-Motzkin elimination and feasibility
# ----------------------------------------------------------------------
def fm_eliminate(system: ConstraintSystem, name: str, *, require_exact: bool = False) -> ConstraintSystem:
    """Eliminate ``name`` by Fourier-Motzkin.

    The result is the rational shadow; it is certified to equal the integer
    projection when every lower bound or every upper bound on ``name`` has a
    unit coefficient (this is the classic exactness condition, satisfied by
    all loop-bound style constraints).  ``require_exact=True`` raises
    :class:`NonExactProjectionError` otherwise.
    """
    if not system.involves(name):
        return system
    expanded, fresh, _ = system.expand_divs([name])
    if fresh:
        # Divs involving the eliminated variable: eliminate the fresh
        # existentials afterwards (they are innermost).
        result = expanded
        for aux in [name] + fresh:
            result = fm_eliminate(result, aux, require_exact=require_exact)
        return result
    lowers, uppers, rest = bounds_for(system, name)
    exact = all(b.coeff == 1 for b in lowers) or all(b.coeff == 1 for b in uppers)
    if require_exact and not exact:
        raise NonExactProjectionError(f"projection of {name} cannot be certified exact")
    out = ConstraintSystem(rest)
    for low in lowers:
        for up in uppers:
            # low.expr / low.coeff <= v <= up.expr / up.coeff
            out.add(ge(up.expr * low.coeff - low.expr * up.coeff, 0))
    return out


def fm_project(system: ConstraintSystem, eliminate: Sequence[str], *, require_exact: bool = False) -> ConstraintSystem:
    """Eliminate several variables (innermost last in ``eliminate`` first)."""
    result = system
    for name in reversed(list(eliminate)):
        result = fm_eliminate(result, name, require_exact=require_exact)
    return result


def substitute_equalities(system: ConstraintSystem, names: Sequence[str]) -> Tuple[ConstraintSystem, Dict[str, QPoly]]:
    """Use unit-coefficient equalities to substitute out variables in ``names``.

    Returns the simplified system and the mapping of eliminated variables to
    their defining expressions.  Only exact (coefficient +-1) substitutions
    are performed.
    """
    assignment: Dict[str, QPoly] = {}
    current = system
    changed = True
    remaining = set(names)
    while changed and remaining:
        changed = False
        for constraint in current.constraints:
            if constraint.kind != EQ:
                continue
            for name in list(remaining):
                coeff = constraint.expr.coefficient(name)
                if coeff in (1, -1) and not constraint.expr.degree_in_divs(name):
                    rest = constraint.expr - QPoly.variable(name) * coeff
                    value = rest * (-1) if coeff == 1 else rest
                    replacement = {name: value}
                    assignment = {k: v.substitute(replacement) for k, v in assignment.items()}
                    assignment[name] = value
                    current = current.substitute(replacement)
                    remaining.discard(name)
                    changed = True
                    break
            if changed:
                break
    return current, assignment


_FEASIBILITY_CACHE: Dict[frozenset, bool] = {}


def feasible_rational(system: ConstraintSystem, *, max_vars: int = 24) -> bool:
    """Sound emptiness pruning: ``False`` means definitely integer-empty.

    All free variables (including divs, which are expanded) are treated as
    rational unknowns and eliminated by Fourier-Motzkin.  The test
    over-approximates integer feasibility, which is the safe direction for
    pruning pieces.  Results are memoised on the canonical constraint set.
    """
    if system.has_trivially_false():
        return False
    # Charged before the memo lookup: the unit count then only depends on the
    # call sequence (deterministic per job), not on cross-job cache warmth.
    _charge_work()
    cache_key = frozenset((c.kind, c.expr._canonical_items()) for c in system.constraints)
    cached = _FEASIBILITY_CACHE.get(cache_key)
    if cached is not None:
        return cached
    result = _feasible_rational_uncached(system, max_vars=max_vars)
    if len(_FEASIBILITY_CACHE) < 200_000:
        _FEASIBILITY_CACHE[cache_key] = result
    return result


def _feasible_rational_uncached(system: ConstraintSystem, *, max_vars: int = 24) -> bool:
    names = sorted(n for n in system.variables())
    expanded, fresh, _ = system.expand_divs(names)
    all_names = list(expanded.variables())
    if len(all_names) > max_vars:
        return True
    current = expanded
    while all_names:
        # Greedy minimum-degree ordering keeps the Fourier-Motzkin blow-up low.
        occurrences = {
            name: sum(1 for c in current.constraints if c.expr.coefficient(name)) for name in all_names
        }
        name = min(all_names, key=lambda n: (occurrences[n], n))
        all_names.remove(name)
        current = _fm_eliminate_rational(current, name)
        if current.has_trivially_false():
            return False
        if len(current) > 600:
            return True
    return not current.has_trivially_false()


def _fm_eliminate_rational(system: ConstraintSystem, name: str) -> ConstraintSystem:
    lowers: List[Tuple[QPoly, int]] = []
    uppers: List[Tuple[QPoly, int]] = []
    rest: List[Constraint] = []
    equalities: List[Tuple[QPoly, Fraction]] = []
    for constraint in system.constraints:
        expr = constraint.expr
        coeff = expr.coefficient(name)
        if not coeff or expr.degree_in_divs(name):
            rest.append(constraint)
            continue
        remainder = expr - QPoly.variable(name) * coeff
        if constraint.kind == EQ:
            equalities.append((remainder, coeff))
        elif coeff > 0:
            lowers.append((-remainder, coeff.numerator))
        else:
            uppers.append((remainder, -coeff.numerator))
    if equalities:
        remainder, coeff = equalities[0]
        value = remainder * (Fraction(-1) / coeff)
        substitution = {name: value}
        new_system = ConstraintSystem()
        for constraint in system.constraints:
            if constraint.expr.coefficient(name) == coeff and constraint.kind == EQ and constraint.expr - QPoly.variable(name) * coeff == remainder:
                continue
            new_system.add(constraint.substitute(substitution))
        return new_system
    out = ConstraintSystem(rest)
    for low_expr, low_coeff in lowers:
        for up_expr, up_coeff in uppers:
            out.add(ge(up_expr * low_coeff - low_expr * up_coeff, 0))
    return out


# ----------------------------------------------------------------------
# Explicit enumeration
# ----------------------------------------------------------------------
def variable_range(system: ConstraintSystem, name: str, others: Sequence[str]) -> Tuple[int, int]:
    """Integer range of ``name`` after rationally eliminating ``others``.

    The range over-approximates the true projection; callers must re-check
    constraints for each candidate point.  Raises :class:`UnboundedSetError`
    if no finite bound exists.
    """
    expanded, fresh, _ = system.expand_divs(list(others) + [name])
    current = expanded
    for other in list(others) + fresh:
        current = _fm_eliminate_rational(current, other)
    lower: Optional[Fraction] = None
    upper: Optional[Fraction] = None
    for constraint in current.constraints:
        coeff = constraint.expr.coefficient(name)
        if not coeff:
            continue
        remainder = constraint.expr - QPoly.variable(name) * coeff
        if not remainder.is_constant():
            continue
        value = -remainder.constant_value() / coeff
        if constraint.kind == EQ:
            lower = value if lower is None else max(lower, value)
            upper = value if upper is None else min(upper, value)
        elif coeff > 0:
            lower = value if lower is None else max(lower, value)
        else:
            upper = value if upper is None else min(upper, value)
    if lower is None or upper is None:
        raise UnboundedSetError(f"variable {name} is not bounded")
    import math

    return math.ceil(lower), math.floor(upper)


def enumerate_points(system: ConstraintSystem, names: Sequence[str]) -> Iterator[Dict[str, int]]:
    """Enumerate all integer points of the projection onto ``names``.

    The system may mention additional variables; those are treated as
    existentially quantified and checked only rationally, which can produce
    points outside the exact projection.  For the cache model this is used
    either on systems without extra variables (exact) or as the
    partial-enumeration driver, where spurious points only cost time (their
    symbolic count is zero).
    """
    names = list(names)
    yield from _enumerate_recursive(system, names, {})


def _enumerate_recursive(system: ConstraintSystem, names: List[str], partial: Dict[str, int]) -> Iterator[Dict[str, int]]:
    if not names:
        if _check_point_rational(system):
            yield dict(partial)
        return
    name = names[0]
    rest = names[1:]
    try:
        low, high = variable_range(system, name, [n for n in system.variables() if n != name and isinstance(n, str)])
    except UnboundedSetError:
        raise
    for value in range(low, high + 1):
        substituted = system.substitute({name: value})
        if substituted.has_trivially_false():
            continue
        if not feasible_rational(substituted):
            continue
        partial[name] = value
        yield from _enumerate_recursive(substituted, rest, partial)
        del partial[name]


def _check_point_rational(system: ConstraintSystem) -> bool:
    remaining = sorted(n for n in system.variables())
    if not remaining:
        return not system.has_trivially_false()
    return feasible_rational(system)


def count_points_explicit(system: ConstraintSystem, names: Sequence[str]) -> int:
    """Count integer points of a fully-specified system by enumeration."""
    return sum(1 for _ in enumerate_points(system, names))
