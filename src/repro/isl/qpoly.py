"""Quasi-polynomials over named integer variables.

This module is the arithmetic backbone of the polyhedral layer.  A
:class:`QPoly` is a polynomial with :class:`fractions.Fraction` coefficients
whose *symbols* are either plain variable names (strings) or :class:`Div`
objects, i.e. floors of quasi-affine expressions.  Quasi-polynomials are what
the Barvinok algorithm produces when counting parametric polytopes and what
the HayStack cache model manipulates as symbolic stack distances.

The module also provides Faulhaber summation (:func:`power_sum_poly` and
:meth:`QPoly.sum_over`) which is the engine behind the symbolic point counting
in :mod:`repro.isl.counting`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Div",
    "QPoly",
    "Symbol",
    "affine_expr",
    "bernoulli_numbers",
    "constant",
    "power_sum_poly",
    "variable",
]


Number = Union[int, Fraction]


def _to_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    return Fraction(value)


@dataclass(frozen=True)
class Div:
    """A floor division ``floor(expr / denominator)`` used as a symbol.

    ``expr`` is stored in a canonical hashable form: a tuple of
    ``(monomial, coefficient)`` pairs plus the constant term, exactly as
    produced by :meth:`QPoly._canonical_items`.  ``denominator`` is a positive
    integer.  Divs may be nested (the argument may itself contain divs).
    """

    items: Tuple[Tuple[Tuple[Tuple["Symbol", int], ...], Fraction], ...]
    denominator: int

    def argument(self) -> "QPoly":
        """Return the argument of the floor as a :class:`QPoly`."""
        poly = QPoly()
        terms = dict(poly.terms)
        for monomial, coeff in self.items:
            terms[monomial] = coeff
        return QPoly(terms)

    def symbols(self) -> set:
        return self.argument().symbols()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"floor(({self.argument()})/{self.denominator})"


Symbol = Union[str, Div]
Monomial = Tuple[Tuple[Symbol, int], ...]


def _symbol_sort_key(symbol: Symbol) -> Tuple[int, str]:
    if isinstance(symbol, str):
        return (0, symbol)
    return (1, repr(symbol))


def _monomial_mul(a: Monomial, b: Monomial) -> Monomial:
    powers: Dict[Symbol, int] = {}
    for sym, exp in a:
        powers[sym] = powers.get(sym, 0) + exp
    for sym, exp in b:
        powers[sym] = powers.get(sym, 0) + exp
    return tuple(sorted(((s, e) for s, e in powers.items() if e), key=lambda it: _symbol_sort_key(it[0])))


class QPoly:
    """A quasi-polynomial: mapping from monomials to rational coefficients.

    The empty monomial ``()`` holds the constant term; a monomial is a
    sorted tuple of ``(symbol, exponent)`` pairs where a symbol is either a
    variable name or a :class:`Div` (a nested floor-division term, which is
    what makes the polynomial "quasi").  Instances are immutable by
    convention; all operations return new objects.

    **Exactness contract.**  Coefficients are ``fractions.Fraction``s and
    every operation — arithmetic, substitution, evaluation — is exact
    rational arithmetic; nothing in this class ever rounds.
    :meth:`evaluate` returns the exact ``Fraction`` value at a point and
    :meth:`evaluate_int` additionally asserts integrality (counting results
    are cardinalities, so a non-integer value signals a logic error, not a
    rounding problem).  The NumPy bulk evaluator
    (:mod:`repro.isl.veceval`) preserves this contract by scaling to
    integers and checking divisions, deferring to the scalar path whenever
    exactness in int64 is not provable.

    **Cost contract.**  Construction and evaluation charge **no** symbolic
    work units; only the counting/solving machinery built on top
    (:mod:`repro.isl.counting`, :mod:`repro.isl.lexopt`) charges the
    active :class:`~repro.isl.work.WorkBudget`.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, Number]] = None) -> None:
        clean: Dict[Monomial, Fraction] = {}
        if terms:
            for monomial, coeff in terms.items():
                frac = _to_fraction(coeff)
                if frac:
                    clean[monomial] = frac
        self.terms: Dict[Monomial, Fraction] = clean

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def constant(value: Number) -> "QPoly":
        return QPoly({(): _to_fraction(value)})

    @staticmethod
    def variable(name: Symbol) -> "QPoly":
        return QPoly({((name, 1),): Fraction(1)})

    @staticmethod
    def from_affine(coeffs: Mapping[Symbol, Number], const: Number = 0) -> "QPoly":
        terms: Dict[Monomial, Fraction] = {}
        for sym, coeff in coeffs.items():
            frac = _to_fraction(coeff)
            if frac:
                terms[((sym, 1),)] = frac
        const_frac = _to_fraction(const)
        if const_frac:
            terms[()] = const_frac
        return QPoly(terms)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _canonical_items(self) -> Tuple[Tuple[Monomial, Fraction], ...]:
        return tuple(sorted(self.terms.items(), key=lambda it: (len(it[0]), [(_symbol_sort_key(s), e) for s, e in it[0]])))

    def is_zero(self) -> bool:
        return not self.terms

    def is_constant(self) -> bool:
        return all(monomial == () for monomial in self.terms)

    def constant_value(self) -> Fraction:
        return self.terms.get((), Fraction(0))

    def degree(self) -> int:
        """Total degree; every div symbol counts as degree one."""
        best = 0
        for monomial in self.terms:
            deg = sum(exp for _, exp in monomial)
            best = max(best, deg)
        return best

    def degree_in(self, name: Symbol) -> int:
        best = 0
        for monomial in self.terms:
            for sym, exp in monomial:
                if sym == name:
                    best = max(best, exp)
        return best

    def is_affine(self) -> bool:
        """True if every monomial has total degree <= 1 (divs count as deg 1).

        This matches the paper's notion: a piece is "affine" when its stack
        distance polynomial has degree zero or one, in which case the cache
        miss set can be counted symbolically.
        """
        return self.degree() <= 1

    def symbols(self, *, recurse_divs: bool = False) -> set:
        result: set = set()
        for monomial in self.terms:
            for sym, _ in monomial:
                result.add(sym)
                if recurse_divs and isinstance(sym, Div):
                    result |= sym.symbols()
        return result

    def divs(self) -> List[Div]:
        out: List[Div] = []
        seen = set()
        for monomial in self.terms:
            for sym, _ in monomial:
                if isinstance(sym, Div) and sym not in seen:
                    seen.add(sym)
                    out.append(sym)
        return out

    def free_variables(self) -> set:
        """All string variables appearing directly or inside (nested) divs."""
        result: set = set()
        stack: List[Symbol] = list(self.symbols())
        while stack:
            sym = stack.pop()
            if isinstance(sym, str):
                result.add(sym)
            else:
                stack.extend(sym.argument().symbols())
        return result

    def involves(self, name: str) -> bool:
        """True if ``name`` occurs directly or inside any div argument."""
        for monomial in self.terms:
            for sym, _ in monomial:
                if sym == name:
                    return True
                if isinstance(sym, Div) and _div_involves(sym, name):
                    return True
        return False

    def coefficient(self, name: Symbol) -> Fraction:
        """Coefficient of the degree-one monomial of ``name``."""
        return self.terms.get(((name, 1),), Fraction(0))

    def affine_coefficients(self) -> Tuple[Dict[Symbol, Fraction], Fraction]:
        """Decompose an affine quasi-polynomial into coefficients + constant.

        Raises ``ValueError`` if the polynomial is not affine.
        """
        if not self.is_affine():
            raise ValueError(f"not an affine expression: {self}")
        coeffs: Dict[Symbol, Fraction] = {}
        const = Fraction(0)
        for monomial, coeff in self.terms.items():
            if monomial == ():
                const = coeff
            else:
                sym, exp = monomial[0]
                assert exp == 1
                coeffs[sym] = coeff
        return coeffs, const

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["QPoly", Number]) -> "QPoly":
        other_poly = other if isinstance(other, QPoly) else QPoly.constant(other)
        terms = dict(self.terms)
        for monomial, coeff in other_poly.terms.items():
            new = terms.get(monomial, Fraction(0)) + coeff
            if new:
                terms[monomial] = new
            elif monomial in terms:
                del terms[monomial]
        return QPoly(terms)

    __radd__ = __add__

    def __neg__(self) -> "QPoly":
        return QPoly({monomial: -coeff for monomial, coeff in self.terms.items()})

    def __sub__(self, other: Union["QPoly", Number]) -> "QPoly":
        other_poly = other if isinstance(other, QPoly) else QPoly.constant(other)
        return self + (-other_poly)

    def __rsub__(self, other: Number) -> "QPoly":
        return QPoly.constant(other) - self

    def __mul__(self, other: Union["QPoly", Number]) -> "QPoly":
        if not isinstance(other, QPoly):
            factor = _to_fraction(other)
            if not factor:
                return QPoly()
            return QPoly({monomial: coeff * factor for monomial, coeff in self.terms.items()})
        result: Dict[Monomial, Fraction] = {}
        for mono_a, coeff_a in self.terms.items():
            for mono_b, coeff_b in other.terms.items():
                monomial = _monomial_mul(mono_a, mono_b)
                new = result.get(monomial, Fraction(0)) + coeff_a * coeff_b
                if new:
                    result[monomial] = new
                elif monomial in result:
                    del result[monomial]
        return QPoly(result)

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = QPoly.constant(other)
        if not isinstance(other, QPoly):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self._canonical_items())

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coeff in self._canonical_items():
            if monomial == ():
                parts.append(str(coeff))
                continue
            factors = []
            for sym, exp in monomial:
                text = sym if isinstance(sym, str) else repr(sym)
                factors.append(text if exp == 1 else f"{text}^{exp}")
            body = "*".join(factors)
            if coeff == 1:
                parts.append(body)
            elif coeff == -1:
                parts.append(f"-{body}")
            else:
                parts.append(f"{coeff}*{body}")
        return " + ".join(parts).replace("+ -", "- ")

    # ------------------------------------------------------------------
    # Substitution and evaluation
    # ------------------------------------------------------------------
    def substitute(self, assignment: Mapping[str, Union["QPoly", Number]]) -> "QPoly":
        """Substitute variables by quasi-polynomials (or numbers).

        Divs whose arguments mention substituted variables are rebuilt (and
        simplified) after substitution.
        """
        if not assignment:
            return self
        result = QPoly()
        for monomial, coeff in self.terms.items():
            factor = QPoly.constant(coeff)
            for sym, exp in monomial:
                replacement = _substitute_symbol(sym, assignment)
                for _ in range(exp):
                    factor = factor * replacement
            result = result + factor
        return result

    def evaluate(self, assignment: Mapping[str, int]) -> Fraction:
        """Evaluate at an integer point.  Divs are evaluated with floor."""
        total = Fraction(0)
        for monomial, coeff in self.terms.items():
            value = coeff
            for sym, exp in monomial:
                value *= Fraction(_evaluate_symbol(sym, assignment)) ** exp
            total += value
        return total

    def evaluate_int(self, assignment: Mapping[str, int]) -> int:
        value = self.evaluate(assignment)
        if value.denominator != 1:
            raise ValueError(f"expected integral value, got {value} for {self} at {assignment}")
        return int(value)

    # ------------------------------------------------------------------
    # Symbolic summation (Faulhaber)
    # ------------------------------------------------------------------
    def sum_over(self, name: str, lower: "QPoly", upper: "QPoly") -> "QPoly":
        """Return ``sum_{name=lower}^{upper} self`` as a quasi-polynomial.

        ``self`` must be a polynomial in ``name`` (the variable must not occur
        inside div arguments); the caller is responsible for residue-splitting
        divs beforehand.  The result is valid whenever ``lower <= upper``.
        """
        if self.degree_in_divs(name):
            raise ValueError(f"cannot sum over {name}: it occurs inside a div argument")
        by_power: Dict[int, QPoly] = {}
        for monomial, coeff in self.terms.items():
            power = 0
            rest: List[Tuple[Symbol, int]] = []
            for sym, exp in monomial:
                if sym == name:
                    power = exp
                else:
                    rest.append((sym, exp))
            rest_mono = tuple(rest)
            partial = by_power.setdefault(power, QPoly())
            by_power[power] = partial + QPoly({rest_mono: coeff})
        total = QPoly()
        for power, factor in by_power.items():
            prefix_upper = power_sum_poly(power).substitute({"n": upper})
            prefix_lower = power_sum_poly(power).substitute({"n": lower - 1})
            total = total + factor * (prefix_upper - prefix_lower)
        return total

    def degree_in_divs(self, name: str) -> bool:
        for monomial in self.terms:
            for sym, _ in monomial:
                if isinstance(sym, Div) and _div_involves(sym, name):
                    return True
        return False


def _div_involves(div: Div, name: str) -> bool:
    for monomial, _ in div.items:
        for sym, _exp in monomial:
            if sym == name:
                return True
            if isinstance(sym, Div) and _div_involves(sym, name):
                return True
    return False


def _substitute_symbol(sym: Symbol, assignment: Mapping[str, Union[QPoly, Number]]) -> QPoly:
    if isinstance(sym, str):
        if sym in assignment:
            value = assignment[sym]
            return value if isinstance(value, QPoly) else QPoly.constant(value)
        return QPoly.variable(sym)
    argument = sym.argument().substitute(assignment)
    return floor_div(argument, sym.denominator)


def _evaluate_symbol(sym: Symbol, assignment: Mapping[str, int]) -> int:
    if isinstance(sym, str):
        if sym not in assignment:
            raise KeyError(f"no value for variable {sym!r}")
        return assignment[sym]
    value = sym.argument().evaluate(assignment)
    return _floor_fraction(value, sym.denominator)


def _floor_fraction(value: Fraction, denominator: int) -> int:
    scaled = value / denominator
    return scaled.numerator // scaled.denominator


def floor_div(argument: QPoly, denominator: int) -> QPoly:
    """Construct ``floor(argument / denominator)`` with light simplification.

    * constant arguments are folded;
    * integer multiples of the denominator are pulled out of the floor
      (``floor((d*q + r)/d) == q + floor(r/d)``), which keeps div arguments
      small and maximises sharing between accesses to the same cache line.
    """
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    if denominator == 1:
        return argument
    if argument.is_constant():
        value = argument.constant_value()
        return QPoly.constant(_floor_fraction(value, denominator))
    pulled = QPoly()
    remainder = QPoly()
    for monomial, coeff in argument.terms.items():
        if coeff.denominator == 1 and coeff.numerator % denominator == 0:
            pulled = pulled + QPoly({monomial: Fraction(coeff.numerator // denominator)})
        else:
            remainder = remainder + QPoly({monomial: coeff})
    if remainder.is_zero():
        return pulled
    if remainder.is_constant():
        return pulled + QPoly.constant(_floor_fraction(remainder.constant_value(), denominator))
    # Reduce by the gcd of the coefficients and the denominator so that the
    # smallest possible modulus is used (e.g. floor(8*i/64) becomes
    # floor(i/8)); this keeps residue splits during counting small.
    gcd = denominator
    integral = True
    for coeff in remainder.terms.values():
        if coeff.denominator != 1:
            integral = False
            break
        gcd = _gcd_int(gcd, abs(coeff.numerator))
    if integral and gcd > 1:
        remainder = remainder * Fraction(1, gcd)
        denominator //= gcd
        if denominator == 1:
            return pulled + remainder
    div = Div(remainder._canonical_items(), denominator)
    return pulled + QPoly.variable(div)


#: ``math.gcd`` is C-implemented; ``floor_div`` runs once per floor built by
#: the stack-distance pipeline, which makes this a measurable hot path.
_gcd_int = math.gcd


# ----------------------------------------------------------------------
# Faulhaber / Bernoulli machinery
# ----------------------------------------------------------------------
_BERNOULLI_CACHE: List[Fraction] = []
_POWER_SUM_CACHE: Dict[int, QPoly] = {}


def bernoulli_numbers(count: int) -> List[Fraction]:
    """First ``count`` Bernoulli numbers in the standard B1 = -1/2 convention."""
    global _BERNOULLI_CACHE
    while len(_BERNOULLI_CACHE) < count:
        m = len(_BERNOULLI_CACHE)
        if m == 0:
            _BERNOULLI_CACHE.append(Fraction(1))
            continue
        total = Fraction(0)
        for k in range(m):
            total += Fraction(_binomial(m + 1, k)) * _BERNOULLI_CACHE[k]
        _BERNOULLI_CACHE.append(-total / (m + 1))
    return _BERNOULLI_CACHE[:count]


def _binomial(n: int, k: int) -> int:
    if k < 0 or k > n:
        return 0
    result = 1
    for i in range(min(k, n - k)):
        result = result * (n - i) // (i + 1)
    return result


def power_sum_poly(power: int) -> QPoly:
    """Polynomial ``F_k(n) = sum_{v=1}^{n} v^k`` in the variable ``n``.

    The polynomial identity extends to all integers ``n`` (for ``n <= 0`` it
    equals the signed analytic continuation), so differences
    ``F_k(U) - F_k(L-1)`` telescope correctly for every integer range.
    """
    if power < 0:
        raise ValueError("power must be non-negative")
    if power in _POWER_SUM_CACHE:
        return _POWER_SUM_CACHE[power]
    n = QPoly.variable("n")
    bernoullis = bernoulli_numbers(power + 1)
    total = QPoly()
    for j in range(power + 1):
        # Faulhaber's formula for sum_{v=1}^{n} v^k needs the B1 = +1/2
        # convention; the cache stores the standard B1 = -1/2, so flip j == 1.
        bern = -bernoullis[j] if j == 1 else bernoullis[j]
        coeff = Fraction(_binomial(power + 1, j)) * bern
        total = total + QPoly.constant(coeff) * _poly_power(n, power + 1 - j)
    result = total * Fraction(1, power + 1)
    _POWER_SUM_CACHE[power] = result
    return result


def _poly_power(poly: QPoly, exponent: int) -> QPoly:
    result = QPoly.constant(1)
    for _ in range(exponent):
        result = result * poly
    return result


# ----------------------------------------------------------------------
# Small convenience constructors used throughout the code base
# ----------------------------------------------------------------------
def constant(value: Number) -> QPoly:
    return QPoly.constant(value)


def variable(name: Symbol) -> QPoly:
    return QPoly.variable(name)


def affine_expr(coeffs: Mapping[Symbol, Number], const: Number = 0) -> QPoly:
    return QPoly.from_affine(coeffs, const)
