"""Deterministic work accounting for the symbolic kernel primitives.

The polyhedral substrate can blow up combinatorially (residue splits,
Fourier-Motzkin pair products, chamber decompositions).  :class:`WorkBudget`
bounds that work with a *deterministic* unit count instead of wall-clock
time.  The direct charge points are rational feasibility checks
(:func:`repro.isl.constraints.feasible_rational`, charged before the memo
lookup) and counting recursion steps
(:meth:`repro.isl.counting._CountState.count`); lexicographic optimisation
and point enumeration charge indirectly through the feasibility checks they
issue per candidate.  All of these are invocation counts that depend only on
the analyzed program — not on cache warmth, machine speed, or worker
scheduling.  A budgeted analysis
therefore trips at exactly the same point on every run and on every worker
of a batch, which keeps parallel results byte-identical to sequential ones.

The budget is activated per analysis job via :func:`active_budget`; the
primitives call the module-level :func:`charge`, which is a no-op when no
budget is active (the default, and the library behaviour).  The active
budget is process-global state: one analysis per process at a time, which
matches both the CLI and the batch engine's worker processes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["BudgetExhausted", "WorkBudget", "active_budget", "charge"]


class BudgetExhausted(Exception):
    """Raised when a symbolic analysis exceeds its deterministic work budget."""


class WorkBudget:
    """Counts abstract work units and trips once the limit is exceeded."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError(f"work budget must be positive or None, got {limit}")
        self.limit = limit
        self.used = 0

    def charge(self, amount: int = 1) -> None:
        """Consume ``amount`` units; raise :class:`BudgetExhausted` when spent."""
        self.used += amount
        if self.limit is not None and self.used > self.limit:
            raise BudgetExhausted(
                f"symbolic work budget exhausted ({self.used} > {self.limit} units)"
            )

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.used > self.limit

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WorkBudget(used={self.used}, limit={self.limit})"


_ACTIVE: Optional[WorkBudget] = None


def charge(amount: int = 1) -> None:
    """Charge the active budget, if any (hot path: cheap no-op otherwise)."""
    budget = _ACTIVE
    if budget is not None:
        budget.charge(amount)


@contextmanager
def active_budget(budget: Optional[WorkBudget]) -> Iterator[Optional[WorkBudget]]:
    """Make ``budget`` the active budget for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = budget
    try:
        yield budget
    finally:
        _ACTIVE = previous
