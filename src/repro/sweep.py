"""The one sweep-spec parser: byte sizes, ``MIN:MAX[:POINTS]`` ranges, axes.

Every surface that accepts a sweep — ``repro-haystack curve --sweep``,
``repro-haystack explore``, :meth:`repro.api.Session.sweep`, the server's
``capacities`` field, the design-space axes of :mod:`repro.explore`, and the
bench harness's grid builders — parses through this module.  There is
deliberately no second implementation: a grep gate in ``tests/test_sweep.py``
fails if the size regex or the log-spacing formula reappears anywhere else,
so the accepted syntax can never fork between the CLI, the API, and the
server.

Three layers, smallest first:

* :func:`parse_size` — one byte size: ``4096``, ``32K``, ``1MiB``;
* :func:`expand_range` — a log-spaced ``MIN:MAX[:POINTS]`` range;
* :class:`Sweep` — a whole axis from any spelling: a range string, a CSV
  string mixing sizes and ranges, an int, or an iterable of any of those.

All values are plain positive ints; validation failures raise
:class:`SweepError` (a ``ValueError``) with a message that names the axis.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_SWEEP_POINTS",
    "Sweep",
    "SweepError",
    "expand_range",
    "log_spaced",
    "parse_size",
]

#: Default number of points when a ``MIN:MAX`` range omits the count.
DEFAULT_SWEEP_POINTS = 16

#: Byte sizes accept power-of-two suffixes: ``4096``, ``32K``, ``1MiB``, ...
_SIZE_PATTERN = re.compile(r"^(\d+)\s*(K|M|G)?(I?B)?$")
_SIZE_SCALES = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3}

#: Spec value a :class:`Sweep` accepts: range/CSV string, int, or iterable.
SweepSpec = Union[str, int, Iterable[Union[str, int]], "Sweep", None]


class SweepError(ValueError):
    """A sweep spec that cannot be parsed or validated."""


def parse_size(text: str, *, label: str = "size") -> int:
    """Parse one byte size like ``4096``, ``32K``, or ``1MiB``."""
    match = _SIZE_PATTERN.match(text.strip().upper())
    if not match:
        raise SweepError(f"cannot parse {label} {text!r} (use bytes or K/M/G suffixes)")
    value = int(match.group(1))
    if value <= 0:
        raise SweepError(f"{label}s must be positive, got {text!r}")
    return value * _SIZE_SCALES[match.group(2) or ""]


def log_spaced(low: int, high: int, points: int) -> List[int]:
    """``points`` log-spaced integers from ``low`` to ``high``, deduplicated.

    The exact rounding recipe is part of the output contract: baselines and
    byte-identity gates depend on it, so both endpoints are always present
    and every intermediate value is ``round(low * ratio ** (i / (points-1)))``.
    """
    if points < 2:
        raise SweepError(f"a sweep needs at least 2 points, got {points}")
    if high <= low:
        raise SweepError(f"sweep MAX must exceed MIN, got {low}:{high}")
    ratio = high / low
    sizes = {round(low * ratio ** (index / (points - 1))) for index in range(points)}
    return sorted(sizes)


def expand_range(
    spec: str, *, default_points: int = DEFAULT_SWEEP_POINTS, label: str = "sweep"
) -> List[int]:
    """Expand ``MIN:MAX[:POINTS]`` into a log-spaced list of byte sizes."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise SweepError(f"{label} takes MIN:MAX[:POINTS], got {spec!r}")
    low = parse_size(parts[0], label=label)
    high = parse_size(parts[1], label=label)
    points = default_points
    if len(parts) == 3:
        try:
            points = int(parts[2])
        except ValueError:
            raise SweepError(
                f"{label} point count must be an integer, got {parts[2]!r}"
            ) from None
    if points < 2:
        raise SweepError(f"{label} needs at least 2 points, got {points}")
    if high <= low:
        raise SweepError(f"{label} MAX must exceed MIN, got {spec!r}")
    return log_spaced(low, high, points)


def _parse_fragment(fragment: str, *, default_points: int, label: str) -> List[int]:
    """One comma-separated fragment: a single size or a ``MIN:MAX`` range."""
    if ":" in fragment:
        return expand_range(fragment, default_points=default_points, label=label)
    return [parse_size(fragment, label=label)]


@dataclass(frozen=True)
class Sweep:
    """One immutable sweep axis: sorted, deduplicated, positive ints.

    Build with :meth:`parse`, which accepts every spelling the project's
    surfaces use::

        Sweep.parse("64:16K:12")            # log-spaced range
        Sweep.parse("1K,32K,1M")            # CSV of sizes
        Sweep.parse("64,1K:8K:4")           # CSV mixing sizes and ranges
        Sweep.parse(4096)                   # single value
        Sweep.parse([64, "32K", range(1, 4)])  # iterable, nested ranges ok
    """

    values: Tuple[int, ...]

    @classmethod
    def parse(
        cls,
        spec: SweepSpec,
        *,
        default_points: int = DEFAULT_SWEEP_POINTS,
        label: str = "sweep",
    ) -> "Sweep":
        """Parse any supported spelling into a sweep axis.

        ``None`` parses to the empty axis so optional config plumbs through
        unconditionally.  Booleans are rejected (``True`` is not capacity 1).
        """
        if spec is None:
            return cls(())
        if isinstance(spec, Sweep):
            return spec
        collected: List[int] = []
        for item in _iter_spec(spec):
            if isinstance(item, str):
                for fragment in item.split(","):
                    if fragment.strip():
                        collected.extend(
                            _parse_fragment(
                                fragment, default_points=default_points, label=label
                            )
                        )
            else:
                if isinstance(item, bool) or not isinstance(item, int):
                    try:
                        item = _coerce_int(item)
                    except TypeError:
                        raise SweepError(
                            f"{label} values must be ints or size strings, got {item!r}"
                        ) from None
                if item <= 0:
                    raise SweepError(f"{label} values must be positive, got {item}")
                collected.append(item)
        return cls(tuple(sorted(set(collected))))

    def union(self, other: "Sweep") -> "Sweep":
        return Sweep(tuple(sorted(set(self.values) | set(other.values))))

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __bool__(self) -> bool:
        return bool(self.values)


def _iter_spec(spec: Union[str, int, Iterable]) -> Iterable:
    """Yield the scalar items of a spec: strings stay whole, iterables flatten."""
    if isinstance(spec, (str, int)):
        yield spec
        return
    if isinstance(spec, Sequence) or isinstance(spec, (range, set, frozenset, tuple)):
        for item in spec:
            if isinstance(item, (tuple, list, range, set, frozenset)):
                yield from item
            else:
                yield item
        return
    try:
        iterator = iter(spec)
    except TypeError:
        yield spec
        return
    for item in iterator:
        if isinstance(item, (tuple, list, range, set, frozenset)):
            yield from item
        else:
            yield item


def _coerce_int(value) -> int:
    """``operator.index`` semantics: int-likes pass, bools and floats do not."""
    import operator

    if isinstance(value, bool):
        raise TypeError(f"booleans are not sweep values: {value!r}")
    return operator.index(value)
