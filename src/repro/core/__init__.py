"""The HayStack analytical cache model (the paper's primary contribution)."""

from .capacity import CapacityCounter, CapacityCountStats, CounterOptions
from .config import KIB, MIB, CacheLevelSpec, MachineModel
from .curve import MissCurve
from .distance import AccessDistances, DistancePiece, StackDistanceAnalysis
from .model import CacheModel, ModelOptions
from .prevmap import ModelFallbackRequired, PrevMapBuilder, PrevRegion
from .results import AccessMissCounts, LevelMissCounts, ModelResult, TimingBreakdown

__all__ = [
    "AccessDistances",
    "AccessMissCounts",
    "CacheLevelSpec",
    "CacheModel",
    "CapacityCountStats",
    "CapacityCounter",
    "CounterOptions",
    "DistancePiece",
    "KIB",
    "LevelMissCounts",
    "MIB",
    "MachineModel",
    "MissCurve",
    "ModelFallbackRequired",
    "ModelOptions",
    "ModelResult",
    "PrevMapBuilder",
    "PrevRegion",
    "StackDistanceAnalysis",
    "TimingBreakdown",
]
