"""Utilities for manipulating disjoint unions of constraint-system regions.

The cache model splits iteration domains into *pieces* (regions with an
attached payload such as a previous-access candidate or a partially
accumulated stack-distance polynomial).  This module provides the three
operations the pipeline needs:

* :func:`subtract` — relative complement of a conjunctive region and another
  conjunctive region, returned as a disjoint union,
* :func:`lex_compare_exprs` — piecewise lexicographic comparison of two
  schedule-value expression tuples, and
* :func:`lex_order_disjuncts` — the disjuncts of ``a (<|<=) b`` used to build
  the reuse-window constraints.

All functions prune regions that are (rationally) infeasible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..isl.constraints import Constraint, ConstraintSystem, eq, feasible_rational, ge
from ..isl.qpoly import QPoly

__all__ = [
    "feasible",
    "lex_compare_exprs",
    "lex_order_disjuncts",
    "subtract",
]


def feasible(system: ConstraintSystem) -> bool:
    """Cheap emptiness pruning (rational relaxation)."""
    if system.has_trivially_false():
        return False
    return feasible_rational(system)


def subtract(region: ConstraintSystem, removed: ConstraintSystem) -> List[ConstraintSystem]:
    """Return ``region \\ removed`` as a list of disjoint conjunctive regions.

    The classic decomposition is used: for constraints ``c1 .. cn`` of the
    subtrahend the difference is the disjoint union of
    ``region & !c1``, ``region & c1 & !c2``, ...  Equalities negate into two
    branches (``< / >``), handled by :meth:`Constraint.negate`.
    """
    pieces: List[ConstraintSystem] = []
    accumulated = region
    for constraint in removed.constraints:
        for negated in constraint.negate():
            candidate = accumulated.conjoin([negated])
            if feasible(candidate):
                pieces.append(candidate)
        accumulated = accumulated.conjoin([constraint])
        if not feasible(accumulated):
            break
    return pieces


def lex_compare_exprs(
    a: Sequence[QPoly],
    b: Sequence[QPoly],
    domain: ConstraintSystem,
) -> Tuple[List[ConstraintSystem], List[ConstraintSystem]]:
    """Split ``domain`` into the regions where ``a > b`` and where ``a < b``.

    ``a`` and ``b`` are schedule-value expression tuples of equal length.  The
    region where the tuples are equal is not returned (for schedules of
    distinct accesses it is empty).  The returned regions are pairwise
    disjoint.
    """
    a_wins: List[ConstraintSystem] = []
    b_wins: List[ConstraintSystem] = []
    prefix = domain
    for expr_a, expr_b in zip(a, b):
        difference = expr_a - expr_b
        if difference.is_constant():
            value = difference.constant_value()
            if value > 0:
                if feasible(prefix):
                    a_wins.append(prefix)
                return a_wins, b_wins
            if value < 0:
                if feasible(prefix):
                    b_wins.append(prefix)
                return a_wins, b_wins
            continue
        gt_region = prefix.conjoin([ge(difference - 1, 0)])
        if feasible(gt_region):
            a_wins.append(gt_region)
        lt_region = prefix.conjoin([ge(-difference - 1, 0)])
        if feasible(lt_region):
            b_wins.append(lt_region)
        prefix = prefix.conjoin([eq(difference, 0)])
        if not feasible(prefix):
            return a_wins, b_wins
    return a_wins, b_wins


def lex_order_disjuncts(
    a: Sequence[QPoly],
    b: Sequence[QPoly],
    *,
    strict: bool,
) -> List[List[Constraint]]:
    """Constraint lists whose union describes ``a < b`` (or ``a <= b``).

    Each disjunct asserts equality on a prefix and strict inequality at the
    first differing position; for the non-strict comparison an "all equal"
    disjunct is appended.  Disjuncts that are statically impossible (two
    different constants) are dropped, which keeps the number of pieces the
    cache-miss counting has to handle small.
    """
    disjuncts: List[List[Constraint]] = []
    prefix: List[Constraint] = []
    prefix_alive = True
    for expr_a, expr_b in zip(a, b):
        difference = expr_b - expr_a
        if difference.is_constant():
            value = difference.constant_value()
            if value > 0:
                # a < b decided here; the rest of the prefix must only be equal.
                disjuncts.append(list(prefix))
                prefix_alive = False
                break
            if value < 0:
                prefix_alive = False
                break
            continue
        disjuncts.append(prefix + [ge(difference - 1, 0)])
        prefix = prefix + [eq(difference, 0)]
    if not strict and prefix_alive:
        disjuncts.append(prefix)
    return disjuncts
