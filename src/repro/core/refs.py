"""Access-reference helpers: schedule values, cache-line maps and renaming.

The cache model reasons about *access instances*: a statement instance plus
the position of one of its array references.  This module computes, for a
given reference,

* the global schedule value of the access (the statement's ``2d+1`` schedule
  extended by the access position, paper Section 3.1 "multiple memory
  accesses per statement"), and
* the accessed **cache line** as a tuple of quasi-affine expressions: the
  outer array indices stay unchanged while the innermost index is replaced by
  ``floor(index * element_size / line_size)`` (paper Section 3.1 "cache lines
  and multi-dimensional arrays").

Joint constraint systems over two statements rename one side's loop
variables with a prefix so that systems over (target, source) pairs are
well-formed even when both sides are instances of the same statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..isl.constraints import ConstraintSystem
from ..isl.qpoly import QPoly, floor_div
from ..scop.scop import AccessRef, Scop, Statement

__all__ = ["AccessInstance", "line_exprs", "rename_map", "renamed_vars"]


def rename_map(statement: Statement, prefix: str) -> Dict[str, QPoly]:
    """Substitution mapping every loop variable ``v`` to ``<prefix>v``."""
    return {var: QPoly.variable(prefix + var) for var in statement.loop_vars}


def renamed_vars(statement: Statement, prefix: str) -> List[str]:
    return [prefix + var for var in statement.loop_vars]


def line_exprs(ref: AccessRef, line_size: int) -> Tuple[QPoly, ...]:
    """Cache-line coordinates accessed by ``ref``.

    The first coordinate identifies the array (a unique integer id would do;
    the model never mixes arrays because accesses to different arrays are
    never related by the line-equality constraints).  The remaining
    coordinates are the outer array indices followed by the cache-line index
    within the innermost (padded) dimension.
    """
    element_size = ref.array.element_size
    inner = ref.indices[-1] * element_size
    line_index = floor_div(inner, line_size)
    return tuple(ref.indices[:-1]) + (line_index,)


@dataclass
class AccessInstance:
    """One array reference of a statement, with pipeline-friendly accessors."""

    statement: Statement
    position: int
    ref: AccessRef

    @property
    def key(self) -> Tuple[str, int]:
        return (self.statement.name, self.position)

    def domain(self, prefix: str = "") -> ConstraintSystem:
        if not prefix:
            return self.statement.domain.copy()
        return self.statement.domain.substitute(rename_map(self.statement, prefix))

    def loop_vars(self, prefix: str = "") -> List[str]:
        if not prefix:
            return list(self.statement.loop_vars)
        return renamed_vars(self.statement, prefix)

    def schedule_exprs(self, length: int, prefix: str = "") -> Tuple[QPoly, ...]:
        """Global schedule value of this access, padded to ``length`` + 1.

        The access position is appended as the final schedule dimension so
        that the accesses of one statement instance are totally ordered in
        program order.
        """
        exprs = list(self.statement.schedule_exprs(length))
        exprs.append(QPoly.constant(self.position))
        if prefix:
            mapping = rename_map(self.statement, prefix)
            exprs = [expr.substitute(mapping) for expr in exprs]
        return tuple(exprs)

    def line_exprs(self, line_size: int, prefix: str = "") -> Tuple[QPoly, ...]:
        exprs = line_exprs(self.ref, line_size)
        if prefix:
            mapping = rename_map(self.statement, prefix)
            exprs = tuple(expr.substitute(mapping) for expr in exprs)
        return exprs

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "write" if self.ref.is_write else "read"
        return f"{self.statement.name}@{self.position}:{kind} {self.ref.array.name}"


def all_access_instances(scop: Scop) -> List[AccessInstance]:
    """Every access of the program as an :class:`AccessInstance`."""
    return [AccessInstance(statement, position, ref) for statement, position, ref in scop.all_accesses()]
