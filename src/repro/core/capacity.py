"""Counting the capacity misses (Algorithm 1 of the paper).

Given the distance pieces of an access, the capacity misses for a cache of
``C`` lines are the iteration-domain points whose stack distance exceeds
``C``.  Affine (degree <= 1) pieces are counted symbolically; non-affine
pieces first go through the floor-elimination rewrites (equalization,
rasterization) and finally through *partial enumeration*: only the dimensions
that make the polynomial non-affine are enumerated explicitly while the
remaining dimensions are still counted symbolically.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..isl.constraints import ConstraintSystem, enumerate_points, ge
from ..isl.counting import CountingError, Piece, cardinality, count_points, piecewise_values
from ..isl.qpoly import Div, QPoly
from ..isl.veceval import resolve_backend
from .distance import DistancePiece
from .elimination import equalize, rasterize
from .prevmap import ModelFallbackRequired
from .regions import feasible

__all__ = ["CAPACITY_PARAM", "CapacityCounter", "CapacityCountStats", "CounterOptions"]

#: Fresh parameter name standing for the cache capacity (in lines) in the
#: parametric miss counts behind :meth:`CapacityCounter.count_curve`.  The
#: ``$`` keeps it disjoint from loop variables, like ``cnt$`` in
#: :mod:`repro.core.distance`.
CAPACITY_PARAM = "cap$"


@dataclass
class CounterOptions:
    """Feature toggles for the ablation study of Figure 14."""

    equalization: bool = True
    rasterization: bool = True
    partial_enumeration: bool = True
    #: Hard limit on the number of explicitly enumerated points before the
    #: counter gives up and requests a model-level fallback.
    max_enumerated_points: int = 2_000_000


@dataclass
class CapacityCountStats:
    """Statistics of one counting run (pieces, splits, enumerated points)."""

    pieces_counted: int = 0
    affine_pieces: int = 0
    nonaffine_pieces: int = 0
    equalized_pieces: int = 0
    rasterized_pieces: int = 0
    enumerated_points: int = 0
    #: Curve building: pieces whose full capacity axis was covered by one
    #: parametric count, and pieces that fell back to per-capacity counting.
    parametric_pieces: int = 0
    parametric_fallbacks: int = 0
    #: For every non-affine polynomial encountered: the number of dimensions
    #: that could still be counted symbolically (Table 1 of the paper).
    nonaffine_affine_dims: List[int] = field(default_factory=list)

    def merge(self, other: "CapacityCountStats") -> None:
        self.pieces_counted += other.pieces_counted
        self.affine_pieces += other.affine_pieces
        self.nonaffine_pieces += other.nonaffine_pieces
        self.equalized_pieces += other.equalized_pieces
        self.rasterized_pieces += other.rasterized_pieces
        self.enumerated_points += other.enumerated_points
        self.parametric_pieces += other.parametric_pieces
        self.parametric_fallbacks += other.parametric_fallbacks
        self.nonaffine_affine_dims.extend(other.nonaffine_affine_dims)


class CapacityCounter:
    """Counts cache misses of distance pieces against a cache capacity.

    Results are **exact**: every public method returns the precise number of
    iteration-domain points whose stack distance exceeds the capacity, or
    raises :class:`~repro.core.prevmap.ModelFallbackRequired` when the
    symbolic machinery cannot produce it — the counter never approximates.

    ``cardinality_cache`` (see :class:`repro.engine.cache.CardinalityCache`)
    memoizes the symbolic counts; sharing one cache across the hierarchy
    levels of an access means e.g. a constant-distance piece whose domain is
    counted for L1 is served from the cache for L2 and L3.  The counter also
    memoizes per-piece rewrites, partial-enumeration expansions and
    parametric chambers internally (keyed by piece identity), so asking for
    several capacities or grids reuses the capacity-independent work.

    ``budget`` (a :class:`~repro.core.budget.WorkBudget`) is charged one unit
    per piece visited by :meth:`count_misses`/:meth:`count_curve`; the
    symbolic primitives underneath (feasibility checks, counting recursion)
    charge the process-global active budget themselves.  Charges depend only
    on the pieces and options — never on cache warmth or the ``backend``.

    ``backend`` (``"auto"|"numpy"|"python"``, see
    :func:`repro.isl.veceval.resolve_backend`) selects how parametric
    chamber counts are evaluated over capacity grids; both backends produce
    byte-identical results, NumPy just does it in bulk array ops.
    """

    #: Partial-enumeration expansions above this many points are not memoized
    #: across hierarchy levels (memory guard; they are recomputed instead).
    MAX_CACHED_ENUMERATION = 100_000

    def __init__(
        self,
        loop_vars: Sequence[str],
        options: Optional[CounterOptions] = None,
        *,
        cardinality_cache=None,
        budget=None,
        backend: str = "auto",
    ) -> None:
        self.loop_vars = list(loop_vars)
        self.options = options or CounterOptions()
        self.stats = CapacityCountStats()
        self.cardinality_cache = cardinality_cache
        #: Optional :class:`repro.core.budget.WorkBudget`, charged per piece.
        self.budget = budget
        #: Resolved evaluation backend for parametric chamber grids.
        self.backend = resolve_backend(backend)
        # The same distance pieces are counted once per hierarchy level, but
        # the floor-elimination rewrites and the partial-enumeration point
        # expansion do not depend on the capacity — memoize them per piece
        # object so L2/L3 reuse the work done for L1.  Keyed by id() with the
        # piece kept in the value so identity cannot be recycled.
        self._rewrite_cache: Dict[int, tuple] = {}
        self._enumeration_cache: Dict[int, tuple] = {}
        #: Memoized parametric miss counts per affine piece (the chambers of
        #: the capacity axis); ``None`` records a failed parametric attempt
        #: so later grids go straight to the per-capacity fallback.
        self._chamber_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def count_misses(self, pieces: Sequence[DistancePiece], capacity_lines: int) -> int:
        """Total number of accesses whose stack distance exceeds the capacity."""
        total = 0
        for piece in pieces:
            total += self._count_piece(piece, capacity_lines)
        return total

    def count_curve(self, pieces: Sequence[DistancePiece], capacities: Sequence[int]) -> List[int]:
        """Miss counts for *every* capacity of a sorted grid in one pass.

        This is the symbolic half of the miss-curve layer (see
        :mod:`repro.core.curve`): instead of re-walking the pieces once per
        capacity, every piece is partitioned along the capacity axis exactly
        once —

        * a **constant** piece of value ``v`` misses all capacities below
          ``v``; one (memoized) domain cardinality covers the whole grid;
        * an **affine** piece is counted *parametrically*: the capacity
          becomes a fresh parameter (:data:`CAPACITY_PARAM`) and one
          :func:`~repro.isl.counting.count_points` call yields the chambers
          of the capacity axis with a count polynomial each, evaluated at
          every grid point by plain arithmetic.  If the parametric count
          fails (or produces a non-monotone artefact) the piece degrades to
          exact per-capacity counting;
        * a **non-affine** piece goes through the same memoized
          equalization/rasterization rewrites and partial-enumeration point
          expansion as :meth:`count_misses`, with the bound sub-pieces
          handled as above.

        Returns one miss count per entry of ``capacities`` — identical to
        ``[count_misses(pieces, c) for c in capacities]``, at a cost that is
        nearly independent of the grid size.
        """
        grid = list(capacities)
        if not grid:
            raise ValueError("count_curve needs at least one capacity")
        if grid[0] < 0:
            raise ValueError(f"capacities must be >= 0 lines, got {grid[0]}")
        if any(b <= a for a, b in zip(grid, grid[1:])):
            raise ValueError(f"capacities must be strictly ascending: {grid}")
        totals = [0] * len(grid)
        for piece in pieces:
            self._curve_piece(piece, grid, totals)
        return totals

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _count_piece(self, piece: DistancePiece, capacity_lines: int) -> int:
        if self.budget is not None:
            self.budget.charge()
        self.stats.pieces_counted += 1
        polynomial = piece.polynomial
        if polynomial.is_constant():
            self.stats.affine_pieces += 1
            if polynomial.constant_value() > capacity_lines:
                return self._cardinality(piece.domain)
            return 0
        if polynomial.is_affine():
            self.stats.affine_pieces += 1
            return self._count_affine(piece, capacity_lines)

        # Non-affine piece: try the floor-elimination rewrites first.  The
        # rewrite result is capacity-independent and memoized, so only the
        # first hierarchy level pays for it; the statistics still count one
        # (cached) rewrite per level, exactly like the uncached code did.
        kind, rewritten = self._nonaffine_rewrite(piece)
        if kind == "equalized":
            self.stats.equalized_pieces += 1
            return sum(self._count_piece(sub, capacity_lines) for sub in rewritten)
        if kind == "rasterized":
            self.stats.rasterized_pieces += 1
            return sum(self._count_piece(sub, capacity_lines) for sub in rewritten)

        self.stats.nonaffine_pieces += 1
        return self._count_partial_enumeration(piece, capacity_lines)

    def _nonaffine_rewrite(self, piece: DistancePiece):
        """Memoized equalization/rasterization of one non-affine piece.

        Returns ``(kind, sub_pieces)`` with ``kind`` in ``"equalized"``,
        ``"rasterized"`` or ``None`` (no rewrite applies).  Caching the sub
        pieces also makes their *own* nested rewrites cache hits on later
        levels, because the recursion sees the identical objects again.
        """
        cached = self._rewrite_cache.get(id(piece))
        if cached is not None and cached[0] is piece:
            return cached[1], cached[2]
        kind = None
        rewritten = None
        if self.options.equalization:
            rewritten = equalize(piece)
            if rewritten is not None:
                kind = "equalized"
        if kind is None and self.options.rasterization:
            rewritten = rasterize(piece)
            if rewritten is not None:
                kind = "rasterized"
        self._rewrite_cache[id(piece)] = (piece, kind, rewritten)
        return kind, rewritten

    # ------------------------------------------------------------------
    # Curve construction (Algorithm 1 along the whole capacity axis)
    # ------------------------------------------------------------------
    def _curve_piece(self, piece: DistancePiece, grid: List[int], totals: List[int]) -> None:
        if self.budget is not None:
            self.budget.charge()
        self.stats.pieces_counted += 1
        polynomial = piece.polynomial
        if polynomial.is_constant():
            self.stats.affine_pieces += 1
            self._curve_constant(piece, grid, totals)
            return
        if polynomial.is_affine():
            self.stats.affine_pieces += 1
            self._curve_affine(piece, grid, totals)
            return
        kind, rewritten = self._nonaffine_rewrite(piece)
        if kind == "equalized":
            self.stats.equalized_pieces += 1
            for sub in rewritten:
                self._curve_piece(sub, grid, totals)
            return
        if kind == "rasterized":
            self.stats.rasterized_pieces += 1
            for sub in rewritten:
                self._curve_piece(sub, grid, totals)
            return
        self.stats.nonaffine_pieces += 1
        self._curve_partial_enumeration(piece, grid, totals)

    def _curve_constant(self, piece: DistancePiece, grid: List[int], totals: List[int]) -> None:
        """A constant distance ``v`` misses exactly the capacities below ``v``."""
        value = piece.polynomial.constant_value()
        split = bisect_left(grid, value)
        if split == 0:
            return
        count = self._cardinality(piece.domain)
        for index in range(split):
            totals[index] += count

    def _curve_affine(
        self, piece: DistancePiece, grid: List[int], totals: List[int], *, memoize: bool = True
    ) -> None:
        """One parametric count covers the grid; per-capacity on failure."""
        chambers = self._parametric_chambers(piece, memoize=memoize)
        if chambers is not None:
            values = piecewise_values(chambers, {CAPACITY_PARAM: grid}, backend=self.backend)
            # Exactness guard: the true per-piece curve is non-negative and
            # non-increasing, so any parametric artefact (however unlikely)
            # degrades to the exact per-capacity path instead of corrupting
            # the result.
            if values is not None and _is_monotone_curve(values):
                self.stats.parametric_pieces += 1
                for index, value in enumerate(values):
                    totals[index] += value
                return
        self.stats.parametric_fallbacks += 1
        for index, capacity_lines in enumerate(grid):
            totals[index] += self._count_affine(piece, capacity_lines)

    def _parametric_chambers(
        self, piece: DistancePiece, *, memoize: bool = True
    ) -> Optional[List[Piece]]:
        """Chambers of ``|{x in domain : poly(x) > C}|`` over the capacity C.

        Memoized per piece object (like the rewrite and enumeration caches);
        a failed attempt is memoized as ``None`` so later grids skip straight
        to the per-capacity fallback.  Partial-enumeration bound sub-pieces
        pass ``memoize=False``: they are fresh objects per expansion replay
        (never cache hits) and there can be up to ``max_enumerated_points``
        of them, so pinning their chambers would defeat the
        :attr:`MAX_CACHED_ENUMERATION` memory guard.

        Chambers that still involve a variable other than the capacity (a
        free parameter the per-capacity path maps to a model fallback) are
        rejected here, so evaluation stays pure arithmetic over ``cap$``.
        """
        if memoize:
            cached = self._chamber_cache.get(id(piece))
            if cached is not None and cached[0] is piece:
                return cached[1]
        capacity = QPoly.variable(CAPACITY_PARAM)
        system = piece.domain.conjoin(
            [ge(piece.polynomial - capacity - 1, 0), ge(capacity, 0)]
        )
        count_vars = [v for v in self.loop_vars if system.involves(v)]
        chambers: Optional[List[Piece]]
        try:
            chambers = count_points(system, count_vars)
        except CountingError:
            chambers = None
        if chambers is not None and any(
            (domain.variables() | polynomial.free_variables()) - {CAPACITY_PARAM}
            for domain, polynomial in chambers
        ):
            chambers = None
        if memoize:
            self._chamber_cache[id(piece)] = (piece, chambers)
        return chambers

    def _curve_partial_enumeration(
        self, piece: DistancePiece, grid: List[int], totals: List[int]
    ) -> None:
        """Point expansion once, then every bound sub-piece covers the grid."""
        enumeration_vars = self._enumeration_variables(piece.polynomial)
        symbolic_dims = len([v for v in self.loop_vars if v not in enumeration_vars])
        self.stats.nonaffine_affine_dims.append(symbolic_dims)
        if not self.options.partial_enumeration:
            enumeration_vars = [
                v for v in self.loop_vars if piece.domain.involves(v) or piece.polynomial.involves(v)
            ]
        if not enumeration_vars:
            raise ModelFallbackRequired("non-affine piece without enumerable dimensions")
        for bound_piece in self._bound_pieces(piece, enumeration_vars):
            self.stats.enumerated_points += 1
            if self.stats.enumerated_points > self.options.max_enumerated_points:
                raise ModelFallbackRequired("partial enumeration exceeded the point budget")
            bound_poly = bound_piece.polynomial
            if bound_poly.is_constant():
                self._curve_constant(bound_piece, grid, totals)
            elif bound_poly.is_affine():
                self._curve_affine(bound_piece, grid, totals, memoize=False)
            else:
                raise ModelFallbackRequired("partial enumeration left a non-affine polynomial")

    def _count_affine(self, piece: DistancePiece, capacity_lines: int) -> int:
        miss_set = piece.domain.conjoin([ge(piece.polynomial - (capacity_lines + 1), 0)])
        if not feasible(miss_set):
            return 0
        return self._cardinality(miss_set)

    def _count_partial_enumeration(self, piece: DistancePiece, capacity_lines: int) -> int:
        """Enumerate the non-affine dimensions, count the rest symbolically."""
        enumeration_vars = self._enumeration_variables(piece.polynomial)
        symbolic_dims = len([v for v in self.loop_vars if v not in enumeration_vars])
        self.stats.nonaffine_affine_dims.append(symbolic_dims)
        if not self.options.partial_enumeration:
            # Explicit enumeration of all dimensions (the Figure 14 baseline).
            enumeration_vars = [v for v in self.loop_vars if piece.domain.involves(v) or piece.polynomial.involves(v)]
        if not enumeration_vars:
            raise ModelFallbackRequired("non-affine piece without enumerable dimensions")
        total = 0
        for bound_piece in self._bound_pieces(piece, enumeration_vars):
            self.stats.enumerated_points += 1
            if self.stats.enumerated_points > self.options.max_enumerated_points:
                raise ModelFallbackRequired("partial enumeration exceeded the point budget")
            bound_poly = bound_piece.polynomial
            if bound_poly.is_affine():
                if bound_poly.is_constant():
                    if bound_poly.constant_value() > capacity_lines:
                        total += self._cardinality(bound_piece.domain)
                else:
                    total += self._count_affine(bound_piece, capacity_lines)
            else:
                # Should not happen: binding the selected dimensions makes the
                # polynomial affine by construction; guard for safety.
                raise ModelFallbackRequired("partial enumeration left a non-affine polynomial")
        return total

    def _bound_pieces(self, piece: DistancePiece, enumeration_vars: List[str]):
        """Capacity-independent point expansion of a non-affine piece.

        Enumerating the selected dimensions and substituting each point into
        domain and polynomial is the expensive half of partial enumeration
        and does not depend on the cache size, so the expanded sub-pieces are
        memoized per piece and replayed for the remaining hierarchy levels
        (subject to a size guard — gigantic expansions are recomputed rather
        than held in memory).
        """
        cached = self._enumeration_cache.get(id(piece))
        if cached is not None and cached[0] is piece and cached[1] == enumeration_vars:
            yield from cached[2]
            return
        collected: Optional[List[DistancePiece]] = []
        for point in enumerate_points(piece.domain, enumeration_vars):
            bound = DistancePiece(piece.domain.substitute(point), piece.polynomial.substitute(point))
            if collected is not None:
                collected.append(bound)
                if len(collected) > self.MAX_CACHED_ENUMERATION:
                    collected = None
            yield bound
        if collected is not None:
            self._enumeration_cache[id(piece)] = (piece, list(enumeration_vars), collected)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _cardinality(self, domain: ConstraintSystem) -> int:
        count_vars = [v for v in self.loop_vars if domain.involves(v)]
        try:
            if self.cardinality_cache is not None:
                return self.cardinality_cache.cardinality(domain, count_vars)
            return cardinality(domain, count_vars)
        except CountingError as exc:
            raise ModelFallbackRequired(f"symbolic cardinality failed: {exc}") from exc

    def _enumeration_variables(self, polynomial: QPoly) -> List[str]:
        """Greedy choice of dimensions whose binding makes the poly affine."""
        selected: List[str] = []
        while not _is_affine_given(polynomial, set(selected)):
            counts: Dict[str, int] = {}
            for monomial in polynomial.terms:
                if _monomial_degree_given(monomial, set(selected)) <= 1:
                    continue
                for name in _monomial_variables(monomial):
                    if name not in selected:
                        counts[name] = counts.get(name, 0) + 1
            if not counts:
                break
            best = max(sorted(counts), key=lambda name: counts[name])
            selected.append(best)
        return selected


def _is_monotone_curve(values: Sequence[int]) -> bool:
    """Non-negative and non-increasing — every true per-piece curve is."""
    return all(value >= 0 for value in values) and all(
        later <= earlier for earlier, later in zip(values, values[1:])
    )


def _monomial_variables(monomial) -> Set[str]:
    names: Set[str] = set()
    for sym, _ in monomial:
        if isinstance(sym, Div):
            names |= {v for v in sym.argument().free_variables()}
        else:
            names.add(sym)
    return names


def _monomial_degree_given(monomial, fixed: Set[str]) -> int:
    degree = 0
    for sym, exp in monomial:
        if isinstance(sym, Div):
            free = sym.argument().free_variables()
            if free and free.issubset(fixed):
                continue
        elif sym in fixed:
            continue
        degree += exp
    return degree


def _is_affine_given(polynomial: QPoly, fixed: Set[str]) -> bool:
    return all(_monomial_degree_given(monomial, fixed) <= 1 for monomial in polynomial.terms)
