"""Counting the capacity misses (Algorithm 1 of the paper).

Given the distance pieces of an access, the capacity misses for a cache of
``C`` lines are the iteration-domain points whose stack distance exceeds
``C``.  Affine (degree <= 1) pieces are counted symbolically; non-affine
pieces first go through the floor-elimination rewrites (equalization,
rasterization) and finally through *partial enumeration*: only the dimensions
that make the polynomial non-affine are enumerated explicitly while the
remaining dimensions are still counted symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..isl.constraints import ConstraintSystem, enumerate_points, ge
from ..isl.counting import CountingError, cardinality
from ..isl.qpoly import Div, QPoly
from .distance import DistancePiece
from .elimination import equalize, rasterize
from .prevmap import ModelFallbackRequired
from .regions import feasible

__all__ = ["CapacityCounter", "CapacityCountStats", "CounterOptions"]


@dataclass
class CounterOptions:
    """Feature toggles for the ablation study of Figure 14."""

    equalization: bool = True
    rasterization: bool = True
    partial_enumeration: bool = True
    #: Hard limit on the number of explicitly enumerated points before the
    #: counter gives up and requests a model-level fallback.
    max_enumerated_points: int = 2_000_000


@dataclass
class CapacityCountStats:
    """Statistics of one counting run (pieces, splits, enumerated points)."""

    pieces_counted: int = 0
    affine_pieces: int = 0
    nonaffine_pieces: int = 0
    equalized_pieces: int = 0
    rasterized_pieces: int = 0
    enumerated_points: int = 0
    #: For every non-affine polynomial encountered: the number of dimensions
    #: that could still be counted symbolically (Table 1 of the paper).
    nonaffine_affine_dims: List[int] = field(default_factory=list)

    def merge(self, other: "CapacityCountStats") -> None:
        self.pieces_counted += other.pieces_counted
        self.affine_pieces += other.affine_pieces
        self.nonaffine_pieces += other.nonaffine_pieces
        self.equalized_pieces += other.equalized_pieces
        self.rasterized_pieces += other.rasterized_pieces
        self.enumerated_points += other.enumerated_points
        self.nonaffine_affine_dims.extend(other.nonaffine_affine_dims)


class CapacityCounter:
    """Counts cache misses of distance pieces against a cache capacity.

    ``cardinality_cache`` (see :class:`repro.engine.cache.CardinalityCache`)
    memoizes the symbolic counts; sharing one cache across the hierarchy
    levels of an access means e.g. a constant-distance piece whose domain is
    counted for L1 is served from the cache for L2 and L3.
    """

    #: Partial-enumeration expansions above this many points are not memoized
    #: across hierarchy levels (memory guard; they are recomputed instead).
    MAX_CACHED_ENUMERATION = 100_000

    def __init__(
        self,
        loop_vars: Sequence[str],
        options: Optional[CounterOptions] = None,
        *,
        cardinality_cache=None,
        budget=None,
    ) -> None:
        self.loop_vars = list(loop_vars)
        self.options = options or CounterOptions()
        self.stats = CapacityCountStats()
        self.cardinality_cache = cardinality_cache
        #: Optional :class:`repro.core.budget.WorkBudget`, charged per piece.
        self.budget = budget
        # The same distance pieces are counted once per hierarchy level, but
        # the floor-elimination rewrites and the partial-enumeration point
        # expansion do not depend on the capacity — memoize them per piece
        # object so L2/L3 reuse the work done for L1.  Keyed by id() with the
        # piece kept in the value so identity cannot be recycled.
        self._rewrite_cache: Dict[int, tuple] = {}
        self._enumeration_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def count_misses(self, pieces: Sequence[DistancePiece], capacity_lines: int) -> int:
        """Total number of accesses whose stack distance exceeds the capacity."""
        total = 0
        for piece in pieces:
            total += self._count_piece(piece, capacity_lines)
        return total

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _count_piece(self, piece: DistancePiece, capacity_lines: int) -> int:
        if self.budget is not None:
            self.budget.charge()
        self.stats.pieces_counted += 1
        polynomial = piece.polynomial
        if polynomial.is_constant():
            self.stats.affine_pieces += 1
            if polynomial.constant_value() > capacity_lines:
                return self._cardinality(piece.domain)
            return 0
        if polynomial.is_affine():
            self.stats.affine_pieces += 1
            return self._count_affine(piece, capacity_lines)

        # Non-affine piece: try the floor-elimination rewrites first.  The
        # rewrite result is capacity-independent and memoized, so only the
        # first hierarchy level pays for it; the statistics still count one
        # (cached) rewrite per level, exactly like the uncached code did.
        kind, rewritten = self._nonaffine_rewrite(piece)
        if kind == "equalized":
            self.stats.equalized_pieces += 1
            return sum(self._count_piece(sub, capacity_lines) for sub in rewritten)
        if kind == "rasterized":
            self.stats.rasterized_pieces += 1
            return sum(self._count_piece(sub, capacity_lines) for sub in rewritten)

        self.stats.nonaffine_pieces += 1
        return self._count_partial_enumeration(piece, capacity_lines)

    def _nonaffine_rewrite(self, piece: DistancePiece):
        """Memoized equalization/rasterization of one non-affine piece.

        Returns ``(kind, sub_pieces)`` with ``kind`` in ``"equalized"``,
        ``"rasterized"`` or ``None`` (no rewrite applies).  Caching the sub
        pieces also makes their *own* nested rewrites cache hits on later
        levels, because the recursion sees the identical objects again.
        """
        cached = self._rewrite_cache.get(id(piece))
        if cached is not None and cached[0] is piece:
            return cached[1], cached[2]
        kind = None
        rewritten = None
        if self.options.equalization:
            rewritten = equalize(piece)
            if rewritten is not None:
                kind = "equalized"
        if kind is None and self.options.rasterization:
            rewritten = rasterize(piece)
            if rewritten is not None:
                kind = "rasterized"
        self._rewrite_cache[id(piece)] = (piece, kind, rewritten)
        return kind, rewritten

    def _count_affine(self, piece: DistancePiece, capacity_lines: int) -> int:
        miss_set = piece.domain.conjoin([ge(piece.polynomial - (capacity_lines + 1), 0)])
        if not feasible(miss_set):
            return 0
        return self._cardinality(miss_set)

    def _count_partial_enumeration(self, piece: DistancePiece, capacity_lines: int) -> int:
        """Enumerate the non-affine dimensions, count the rest symbolically."""
        enumeration_vars = self._enumeration_variables(piece.polynomial)
        symbolic_dims = len([v for v in self.loop_vars if v not in enumeration_vars])
        self.stats.nonaffine_affine_dims.append(symbolic_dims)
        if not self.options.partial_enumeration:
            # Explicit enumeration of all dimensions (the Figure 14 baseline).
            enumeration_vars = [v for v in self.loop_vars if piece.domain.involves(v) or piece.polynomial.involves(v)]
        if not enumeration_vars:
            raise ModelFallbackRequired("non-affine piece without enumerable dimensions")
        total = 0
        for bound_piece in self._bound_pieces(piece, enumeration_vars):
            self.stats.enumerated_points += 1
            if self.stats.enumerated_points > self.options.max_enumerated_points:
                raise ModelFallbackRequired("partial enumeration exceeded the point budget")
            bound_poly = bound_piece.polynomial
            if bound_poly.is_affine():
                if bound_poly.is_constant():
                    if bound_poly.constant_value() > capacity_lines:
                        total += self._cardinality(bound_piece.domain)
                else:
                    total += self._count_affine(bound_piece, capacity_lines)
            else:
                # Should not happen: binding the selected dimensions makes the
                # polynomial affine by construction; guard for safety.
                raise ModelFallbackRequired("partial enumeration left a non-affine polynomial")
        return total

    def _bound_pieces(self, piece: DistancePiece, enumeration_vars: List[str]):
        """Capacity-independent point expansion of a non-affine piece.

        Enumerating the selected dimensions and substituting each point into
        domain and polynomial is the expensive half of partial enumeration
        and does not depend on the cache size, so the expanded sub-pieces are
        memoized per piece and replayed for the remaining hierarchy levels
        (subject to a size guard — gigantic expansions are recomputed rather
        than held in memory).
        """
        cached = self._enumeration_cache.get(id(piece))
        if cached is not None and cached[0] is piece and cached[1] == enumeration_vars:
            yield from cached[2]
            return
        collected: Optional[List[DistancePiece]] = []
        for point in enumerate_points(piece.domain, enumeration_vars):
            bound = DistancePiece(piece.domain.substitute(point), piece.polynomial.substitute(point))
            if collected is not None:
                collected.append(bound)
                if len(collected) > self.MAX_CACHED_ENUMERATION:
                    collected = None
            yield bound
        if collected is not None:
            self._enumeration_cache[id(piece)] = (piece, list(enumeration_vars), collected)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _cardinality(self, domain: ConstraintSystem) -> int:
        count_vars = [v for v in self.loop_vars if domain.involves(v)]
        try:
            if self.cardinality_cache is not None:
                return self.cardinality_cache.cardinality(domain, count_vars)
            return cardinality(domain, count_vars)
        except CountingError as exc:
            raise ModelFallbackRequired(f"symbolic cardinality failed: {exc}") from exc

    def _enumeration_variables(self, polynomial: QPoly) -> List[str]:
        """Greedy choice of dimensions whose binding makes the poly affine."""
        selected: List[str] = []
        while not _is_affine_given(polynomial, set(selected)):
            counts: Dict[str, int] = {}
            for monomial in polynomial.terms:
                if _monomial_degree_given(monomial, set(selected)) <= 1:
                    continue
                for name in _monomial_variables(monomial):
                    if name not in selected:
                        counts[name] = counts.get(name, 0) + 1
            if not counts:
                break
            best = max(sorted(counts), key=lambda name: counts[name])
            selected.append(best)
        return selected


def _monomial_variables(monomial) -> Set[str]:
    names: Set[str] = set()
    for sym, _ in monomial:
        if isinstance(sym, Div):
            names |= {v for v in sym.argument().free_variables()}
        else:
            names.add(sym)
    return names


def _monomial_degree_given(monomial, fixed: Set[str]) -> int:
    degree = 0
    for sym, exp in monomial:
        if isinstance(sym, Div):
            free = sym.argument().free_variables()
            if free and free.issubset(fixed):
                continue
        elif sym in fixed:
            continue
        degree += exp
    return degree


def _is_affine_given(polynomial: QPoly, fixed: Set[str]) -> bool:
    return all(_monomial_degree_given(monomial, fixed) <= 1 for monomial in polynomial.terms)
