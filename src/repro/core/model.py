"""HayStack: the analytical cache model (public entry point).

:class:`CacheModel` ties the pipeline together:

1. symbolic backward stack distances for every access
   (:mod:`repro.core.distance`),
2. compulsory misses = first touches of a cache line
   (:mod:`repro.core.prevmap`),
3. capacity misses = accesses whose stack distance exceeds the cache
   capacity, counted per hierarchy level with Algorithm 1
   (:mod:`repro.core.capacity`).

Stack distances are computed once and re-used for every cache level, exactly
like the paper (Section 4.3, Figure 13) — and, through the miss-curve layer
(:mod:`repro.core.curve`), for every *other* capacity as well: each access's
distance pieces go through one :meth:`~repro.core.capacity.CapacityCounter.count_curve`
pass whose samples provide the per-level counts and aggregate into the
result's :class:`~repro.core.curve.MissCurve`.  If the symbolic pipeline cannot
handle a program exactly — or exceeds the configured deterministic work
budget (:mod:`repro.core.budget`) — the model optionally falls back to the
trace-based reference computation and flags the result, so callers always
receive exact miss counts.

Each analysis job runs with a fresh memoizing cardinality cache
(:mod:`repro.engine.cache`) shared across first-touch and capacity counts of
all hierarchy levels; its hit/miss statistics are reported in
:class:`~repro.core.results.TimingBreakdown`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.cache import CardinalityCache
from ..isl.counting import CountingError
from ..scop.scop import Scop
from .budget import BudgetExhausted, WorkBudget, active_budget
from .capacity import CapacityCounter, CounterOptions
from .config import MachineModel
from .curve import MissCurve
from .distance import StackDistanceAnalysis
from .prevmap import ModelFallbackRequired
from .results import AccessMissCounts, LevelMissCounts, ModelResult, TimingBreakdown

__all__ = ["CacheModel", "ModelOptions", "SymbolicProbe"]


@dataclass(frozen=True)
class SymbolicProbe:
    """Outcome of :meth:`CacheModel.symbolic_probe`.

    ``outcome`` is ``"ok"`` (the symbolic phase completed within budget),
    ``"budget"`` (the work budget tripped) or ``"fallback"`` (the pipeline
    cannot handle the program exactly); ``work_units`` is the deterministic
    cost charged up to that point.  On success ``result`` carries the full
    symbolic :class:`~repro.core.results.ModelResult` (piece statistics and
    all).
    """

    outcome: str
    work_units: int
    result: Optional["ModelResult"] = None
    reason: str = ""


@dataclass
class ModelOptions:
    """Behavioural switches of the analytical model."""

    equalization: bool = True
    rasterization: bool = True
    partial_enumeration: bool = True
    #: Fall back to trace-based computation when the symbolic pipeline cannot
    #: handle the program exactly (keeps results exact; sets ``used_fallback``).
    fallback_to_simulation: bool = True
    #: Cross-check the symbolic result against the trace-based reference
    #: (test-suite use only; requires enumerating the trace).
    cross_check: bool = False
    #: Deterministic bound on symbolic work units (see
    #: :class:`repro.core.budget.WorkBudget`); ``None`` = unlimited.  When the
    #: budget trips the model falls back to the exact trace computation (or
    #: raises, with ``fallback_to_simulation=False``).
    symbolic_work_budget: Optional[int] = None
    #: Root of the persistent analysis store
    #: (:class:`repro.engine.store.AnalysisStore`); ``None`` keeps the
    #: cardinality cache purely in-memory.  A path (not a store object) so
    #: options stay picklable — every worker opens its own store handle.
    store_path: Optional[str] = None
    #: Numeric-evaluation implementation for both pipelines: the trace
    #: fallback / cross-check reference (:mod:`repro.simulator.vectorized`)
    #: and the symbolic curve's bulk chamber evaluation
    #: (:mod:`repro.isl.veceval`).  ``"numpy"`` (vectorized), ``"python"``
    #: (reference), or ``"auto"`` (NumPy when installed, honouring
    #: ``$REPRO_BACKEND``).  Both produce identical :class:`ModelResult`
    #: payloads.
    backend: str = "auto"
    #: Intra-analysis parallelism: split the per-access capacity counts of a
    #: *single* analysis across this many worker processes (see
    #: :mod:`repro.core.parallel`).  ``None`` (default) keeps the sequential
    #: path with its shared cardinality cache; any count >= 1 switches to
    #: hermetic per-access tasks whose merged result — including the
    #: deterministic work accounting — is byte-identical for every worker
    #: count (1 runs the same tasks inline).
    piece_workers: Optional[int] = None
    #: Extra cache sizes (in bytes) to include as breakpoints of the
    #: result's :class:`~repro.core.curve.MissCurve` beyond the machine's
    #: hierarchy levels; ``None`` keeps just the hierarchy.  The curve shares
    #: the single counting pass, so sweep points are nearly free.
    curve_capacities: Optional[Tuple[int, ...]] = None
    #: Static verification pre-flight (:mod:`repro.verify`) before any
    #: analysis work: ``"off"`` (default) skips it, ``"warn"`` emits a
    #: :class:`~repro.verify.VerificationWarning` per error-severity finding,
    #: ``"error"`` raises :class:`~repro.verify.VerificationError` so
    #: analyze/curve/explore jobs refuse provably-broken inputs.
    verify: str = "off"

    def counter_options(self) -> CounterOptions:
        return CounterOptions(
            equalization=self.equalization,
            rasterization=self.rasterization,
            partial_enumeration=self.partial_enumeration,
        )


class CacheModel:
    """Fully associative LRU cache model for static control programs."""

    def __init__(self, machine: Optional[MachineModel] = None, options: Optional[ModelOptions] = None) -> None:
        self.machine = machine or MachineModel()
        self.options = options or ModelOptions()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def analyze(self, scop: Scop) -> ModelResult:
        """Compute compulsory and capacity misses for every cache level.

        The symbolic pipeline runs under the configured work budget (see
        :class:`repro.core.budget.WorkBudget`); both an exact-computation
        failure and budget exhaustion degrade to the trace-based fallback,
        which is exact and flagged on the result.

        With :attr:`ModelOptions.verify` set to ``"warn"`` or ``"error"``
        the static verifier (:mod:`repro.verify`) pre-flights the scop and
        warns about — or refuses — provably-broken inputs before any
        analysis work is spent.
        """
        self._preflight(scop)
        budget = WorkBudget(self.options.symbolic_work_budget)
        try:
            with active_budget(budget):
                result = self._analyze_symbolic_under_budget(scop, budget)
        except (ModelFallbackRequired, BudgetExhausted) as exc:
            # Callers that disable the built-in fallback (the CLI warns the
            # user before starting the trace) still want the symbolic cost of
            # the failed attempt.
            exc.work_units_charged = budget.used
            if not self.options.fallback_to_simulation:
                raise
            result = self._analyze_by_trace(scop, used_fallback=True)
            # Record the symbolic work spent before the pipeline gave up, so
            # bench reports see the true deterministic cost of the attempt.
            result.timing.work_units_charged = budget.used
        if self.options.cross_check:
            self._cross_check(scop, result)
        return result

    def analyze_by_trace(self, scop: Scop) -> ModelResult:
        """Exact trace-based analysis (the fallback path), flagged as such.

        Callers that want to react to a failed symbolic run *before* the
        (potentially long) trace enumeration starts — e.g. the CLI, which
        warns the user first — disable ``fallback_to_simulation``, catch the
        failure and invoke this method explicitly.
        """
        return self._analyze_by_trace(scop, used_fallback=True)

    def symbolic_probe(self, scop: Scop) -> "SymbolicProbe":
        """Run only the symbolic phase and report its deterministic cost.

        This is the measurement half of the ``repro.verify`` COST
        diagnostic: the probe executes the exact same budgeted pipeline as
        :meth:`analyze` — work-unit charges depend only on the program, not
        on cache warmth or backend — but never assembles a user-facing
        result and never falls back to the (potentially minutes-long)
        trace.  Its wall-clock cost is therefore bounded by the configured
        budget, and its trip/no-trip outcome is, by construction, the
        outcome a real analysis under the same options would see.
        """
        budget = WorkBudget(self.options.symbolic_work_budget)
        try:
            with active_budget(budget):
                result = self._analyze_symbolic_under_budget(scop, budget)
        except BudgetExhausted:
            return SymbolicProbe(outcome="budget", work_units=budget.used, result=None)
        except ModelFallbackRequired as exc:
            return SymbolicProbe(
                outcome="fallback", work_units=budget.used, result=None, reason=str(exc)
            )
        return SymbolicProbe(outcome="ok", work_units=budget.used, result=result)

    def _preflight(self, scop: Scop) -> None:
        """Static verification gate controlled by :attr:`ModelOptions.verify`."""
        mode = self.options.verify
        if mode == "off":
            return
        if mode not in ("warn", "error"):
            raise ValueError(f"verify must be 'off', 'warn' or 'error', got {mode!r}")
        from ..verify import VerificationError, VerificationWarning, check_scop

        findings = [diag for diag in check_scop(scop) if diag.severity == "error"]
        if not findings:
            return
        if mode == "error":
            raise VerificationError(findings)
        import warnings

        for diag in findings:
            warnings.warn(diag.render(), VerificationWarning, stacklevel=3)

    # ------------------------------------------------------------------
    # Symbolic pipeline
    # ------------------------------------------------------------------
    def _analyze_symbolic(self, scop: Scop) -> ModelResult:
        budget = WorkBudget(self.options.symbolic_work_budget)
        with active_budget(budget):
            return self._analyze_symbolic_under_budget(scop, budget)

    def _make_cardinality_cache(self) -> CardinalityCache:
        if self.options.store_path:
            from ..engine.store import AnalysisStore, PersistentCardinalityCache

            return PersistentCardinalityCache(AnalysisStore(self.options.store_path))
        return CardinalityCache()

    def _curve_grid_lines(self) -> List[int]:
        """Sorted capacity grid (in lines) of the result's miss curve.

        Always contains ``0`` and every hierarchy level; extra sweep points
        come from :attr:`ModelOptions.curve_capacities` (bytes, converted
        with the machine's line size exactly like
        :meth:`~repro.core.config.CacheLevelSpec.capacity_lines`).
        """
        grid = {0}
        grid.update(self.machine.capacities_in_lines())
        for size in self.options.curve_capacities or ():
            grid.add(max(1, int(size) // self.machine.line_size))
        return sorted(grid)

    def _analyze_symbolic_under_budget(self, scop: Scop, budget: WorkBudget) -> ModelResult:
        line_size = self.machine.line_size
        analysis = StackDistanceAnalysis(scop, line_size=line_size, budget=budget)
        distances = analysis.analyze()

        capacity_start = time.perf_counter()
        capacities = self.machine.capacities_in_lines()
        labels = self.machine.level_labels()
        # One counting pass serves every capacity: the per-level counts below
        # are read off the same per-access curves that aggregate into the
        # kernel-level MissCurve (fixed-capacity analysis is now a curve
        # sample, not a separate algorithm).
        grid = self._curve_grid_lines()
        level_slots = [grid.index(capacity) for capacity in capacities]
        if self.options.piece_workers is not None:
            phase = self._capacity_phase_parallel(distances, grid, level_slots, budget)
        else:
            phase = self._capacity_phase_sequential(distances, grid, level_slots, budget)
        capacity_seconds = time.perf_counter() - capacity_start
        per_access = phase["per_access"]

        level_results = self._aggregate_levels(per_access, labels)
        miss_curve = MissCurve(
            line_size=line_size,
            accesses=sum(entry.accesses for entry in per_access),
            compulsory=sum(entry.compulsory for entry in per_access),
            capacities=tuple(grid),
            counts=tuple(phase["curve_totals"]),
            exact=False,
        )
        timing = TimingBreakdown(
            stack_distance_seconds=analysis.elapsed_seconds,
            capacity_seconds=capacity_seconds,
            cardinality_cache_hits=phase["cache_hits"],
            cardinality_cache_misses=phase["cache_misses"],
            store_hits=phase["store_hits"],
            store_misses=phase["store_misses"],
            store_invalidations=phase["store_invalidations"],
            work_units_charged=budget.used,
        )
        return ModelResult(
            kernel=scop.name,
            level_results=level_results,
            per_access=per_access,
            timing=timing,
            piece_count=phase["piece_count"],
            nonaffine_pieces=phase["nonaffine_pieces"],
            nonaffine_affine_dims=phase["nonaffine_dims"],
            enumerated_points=phase["enumerated_points"],
            used_fallback=False,
            miss_curve=miss_curve,
        )

    def _capacity_phase_sequential(self, distances, grid, level_slots, budget: WorkBudget) -> Dict:
        """Per-access counting with one shared memoizing cardinality cache.

        Repeated first-touch and capacity counts (e.g. the same
        constant-distance domain counted for every hierarchy level) are
        served from memory instead of re-derived.  With a configured store
        path the cache gains a persistent disk tier shared across processes
        and runs.
        """
        cardinality_cache = self._make_cardinality_cache()
        curve_totals = [0] * len(grid)
        per_access: List[AccessMissCounts] = []
        piece_count = 0
        nonaffine_pieces = 0
        nonaffine_dims: List[int] = []
        enumerated_points = 0
        instance_counts: Dict[str, int] = {}

        for access_distances in distances:
            access = access_distances.access
            statement = access.statement
            if statement.name not in instance_counts:
                instance_counts[statement.name] = statement.instance_count()
            accesses = instance_counts[statement.name]

            compulsory = 0
            for domain in access_distances.first_touch_domains:
                compulsory += self._domain_cardinality(domain, statement.loop_vars, cardinality_cache)

            counter = CapacityCounter(
                statement.loop_vars,
                self.options.counter_options(),
                cardinality_cache=cardinality_cache,
                budget=budget,
                backend=self.options.backend,
            )
            access_curve = counter.count_curve(access_distances.pieces, grid)
            capacity_per_level = [access_curve[slot] for slot in level_slots]
            for index, count in enumerate(access_curve):
                curve_totals[index] += count
            piece_count += counter.stats.pieces_counted
            nonaffine_pieces += counter.stats.nonaffine_pieces
            nonaffine_dims.extend(counter.stats.nonaffine_affine_dims)
            enumerated_points += counter.stats.enumerated_points

            per_access.append(
                AccessMissCounts(
                    statement=statement.name,
                    position=access.position,
                    array=access.ref.array.name,
                    is_write=access.ref.is_write,
                    accesses=accesses,
                    compulsory=compulsory,
                    capacity=capacity_per_level,
                )
            )
        store = getattr(cardinality_cache, "store", None)
        store_stats = store.stats() if store is not None else None
        return {
            "per_access": per_access,
            "curve_totals": curve_totals,
            "piece_count": piece_count,
            "nonaffine_pieces": nonaffine_pieces,
            "nonaffine_dims": nonaffine_dims,
            "enumerated_points": enumerated_points,
            "cache_hits": cardinality_cache.stats.hits,
            "cache_misses": cardinality_cache.stats.misses,
            "store_hits": getattr(cardinality_cache, "store_hits", 0),
            "store_misses": getattr(cardinality_cache, "store_misses", 0),
            "store_invalidations": store_stats.invalidations if store_stats else 0,
        }

    def _capacity_phase_parallel(self, distances, grid, level_slots, budget: WorkBudget) -> Dict:
        """Per-access counting fanned out over hermetic worker tasks.

        See :mod:`repro.core.parallel` for the determinism argument.  The
        instance counts (which charge the analysis budget) stay in the
        parent, computed in access order *before* any task is sized, so the
        budget remainder handed to the tasks — and therefore every task's
        outcome — is a pure function of the program.  Outcomes are merged in
        access order: each task's units are replayed against the analysis
        budget (tripping deterministically on cumulative exhaustion), then
        its failure, if any, is re-raised.
        """
        from .parallel import AccessTask, run_access_tasks

        instance_counts: Dict[str, int] = {}
        for access_distances in distances:
            statement = access_distances.access.statement
            if statement.name not in instance_counts:
                instance_counts[statement.name] = statement.instance_count()

        remaining = None
        if budget.limit is not None:
            remaining = max(1, budget.limit - budget.used)
        tasks = [
            AccessTask(
                index=index,
                loop_vars=tuple(access_distances.access.statement.loop_vars),
                first_touch_domains=tuple(access_distances.first_touch_domains),
                pieces=tuple(access_distances.pieces),
                grid=tuple(grid),
                options=self.options.counter_options(),
                budget_limit=remaining,
                backend=self.options.backend,
            )
            for index, access_distances in enumerate(distances)
        ]
        outcomes = run_access_tasks(tasks, self.options.piece_workers)

        curve_totals = [0] * len(grid)
        per_access: List[AccessMissCounts] = []
        piece_count = 0
        nonaffine_pieces = 0
        nonaffine_dims: List[int] = []
        enumerated_points = 0
        cache_hits = 0
        cache_misses = 0
        for access_distances, outcome in zip(distances, outcomes):
            budget.charge(outcome.units)
            if outcome.status == "budget":
                raise BudgetExhausted(outcome.message or "symbolic work budget exhausted")
            if outcome.status == "fallback":
                raise ModelFallbackRequired(outcome.message)
            access = access_distances.access
            statement = access.statement
            capacity_per_level = [outcome.curve[slot] for slot in level_slots]
            for index, count in enumerate(outcome.curve):
                curve_totals[index] += count
            piece_count += outcome.pieces_counted
            nonaffine_pieces += outcome.nonaffine_pieces
            nonaffine_dims.extend(outcome.nonaffine_affine_dims)
            enumerated_points += outcome.enumerated_points
            cache_hits += outcome.cache_hits
            cache_misses += outcome.cache_misses
            per_access.append(
                AccessMissCounts(
                    statement=statement.name,
                    position=access.position,
                    array=access.ref.array.name,
                    is_write=access.ref.is_write,
                    accesses=instance_counts[statement.name],
                    compulsory=outcome.compulsory,
                    capacity=capacity_per_level,
                )
            )
        return {
            "per_access": per_access,
            "curve_totals": curve_totals,
            "piece_count": piece_count,
            "nonaffine_pieces": nonaffine_pieces,
            "nonaffine_dims": nonaffine_dims,
            "enumerated_points": enumerated_points,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "store_hits": 0,
            "store_misses": 0,
            "store_invalidations": 0,
        }

    def _aggregate_levels(self, per_access: Sequence[AccessMissCounts], labels: Sequence[str]) -> List[LevelMissCounts]:
        levels: List[LevelMissCounts] = []
        total_accesses = sum(entry.accesses for entry in per_access)
        for index, label in enumerate(labels):
            compulsory = sum(entry.compulsory for entry in per_access)
            capacity = sum(entry.capacity[index] for entry in per_access)
            levels.append(
                LevelMissCounts(
                    name=label,
                    cache_size=self.machine.levels[index].size,
                    accesses=total_accesses,
                    compulsory=compulsory,
                    capacity=capacity,
                )
            )
        return levels

    def _domain_cardinality(self, domain, loop_vars, cache: CardinalityCache) -> int:
        count_vars = [v for v in loop_vars if domain.involves(v)]
        try:
            return cache.cardinality(domain, count_vars)
        except CountingError as exc:
            raise ModelFallbackRequired(f"cardinality of first-touch domain failed: {exc}") from exc

    # ------------------------------------------------------------------
    # Trace-based fallback (exact, but cost proportional to the trace)
    # ------------------------------------------------------------------
    def _analyze_by_trace(self, scop: Scop, *, used_fallback: bool) -> ModelResult:
        from ..simulator.vectorized import resolve_backend

        start = time.perf_counter()
        labels = self.machine.level_labels()
        capacities = self.machine.capacities_in_lines()
        # The full distance histogram costs the same one profiling pass as
        # the per-level counts did, and its suffix sums are the entire miss
        # curve — exact at every capacity, so the fallback answers arbitrary
        # sweeps as cheaply as the hierarchy.
        if resolve_backend(self.options.backend) == "numpy":
            from ..simulator.vectorized import trace_model_curve

            histogram = trace_model_curve(scop, line_size=self.machine.line_size)
        else:
            from ..simulator.lru import StackDistanceProfiler
            from ..simulator.trace import TraceGenerator

            generator = TraceGenerator(scop, line_size=self.machine.line_size, padded=True)
            histogram = StackDistanceProfiler().histogram(generator.line_trace())
        miss_curve = MissCurve.from_histogram(
            histogram, line_size=self.machine.line_size, exact=True
        )

        level_results = []
        for index, label in enumerate(labels):
            level_results.append(
                LevelMissCounts(
                    name=label,
                    cache_size=self.machine.levels[index].size,
                    accesses=miss_curve.accesses,
                    compulsory=miss_curve.compulsory,
                    capacity=miss_curve.misses_at(capacities[index]),
                )
            )
        elapsed = time.perf_counter() - start
        timing = TimingBreakdown(stack_distance_seconds=elapsed, capacity_seconds=0.0)
        return ModelResult(
            kernel=scop.name,
            level_results=level_results,
            per_access=[],
            timing=timing,
            used_fallback=used_fallback,
            miss_curve=miss_curve,
        )

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _cross_check(self, scop: Scop, result: ModelResult) -> None:
        reference = self._analyze_by_trace(scop, used_fallback=False)
        for index in range(len(self.machine.levels)):
            model_level = result.level(index)
            reference_level = reference.level(index)
            if (model_level.compulsory, model_level.capacity) != (
                reference_level.compulsory,
                reference_level.capacity,
            ):
                raise AssertionError(
                    f"model disagrees with trace reference for {scop.name} at level {model_level.name}: "
                    f"model=({model_level.compulsory}, {model_level.capacity}) "
                    f"trace=({reference_level.compulsory}, {reference_level.capacity})"
                )

