"""Deterministic work budget for the symbolic pipeline (core-level API).

The budget machinery lives in :mod:`repro.isl.work` so the symbolic
primitives (feasibility checks, counting recursion, lexicographic
optimisation) can charge it without layering violations; this module
re-exports it for model-level callers.

The model already degrades gracefully via the exact trace-based fallback;
the budget gives callers a *deterministic* trigger for that degradation: a
bound on symbolic work units instead of wall-clock time, so a budgeted
analysis makes the identical fallback decision on every run and on every
worker of a batch — parallel results stay byte-identical to sequential ones.

A budget of ``None`` means unlimited (the library default).  The CLI applies
a finite default so interactive runs always terminate promptly; the result
is still exact (the fallback computes the same miss counts from the trace)
and is flagged via ``ModelResult.used_fallback``.
"""

from __future__ import annotations

from ..isl.work import BudgetExhausted, WorkBudget, active_budget

__all__ = ["BudgetExhausted", "WorkBudget", "active_budget"]
