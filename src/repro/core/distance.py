"""Symbolic backward stack distances for every access of a SCoP.

For a target access ``x`` with previous same-line access ``p(x)`` the backward
stack distance is the number of *distinct cache lines* touched in the reuse
window ``[p(x), x]`` (inclusive on both ends, exactly the quantity of the
paper's running example).  The reproduction counts it with the *first-touch*
identity::

    distance(x) = #{ accesses k in the window | k is the first access of its
                     cache line inside the window }

An access ``k`` is the first access of its line inside the window iff it has
no previous access at all or its previous access lies before the window
start.  Both conditions are affine once the previous-access map is available,
so each contribution is a parametric point count handled by
:mod:`repro.isl.counting`.  This formulation is mathematically identical to
the paper's ``|A ∘ (F ∩ B)|`` image count but avoids projection counting
(see DESIGN.md, substitutions).

The result for every access is a list of disjoint pieces ``(domain,
quasi-polynomial)`` over the statement's loop variables — the paper's
*distance set* D — plus the first-touch (compulsory) regions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..isl.constraints import ConstraintSystem
from ..isl.counting import CountingError, count_points
from ..isl.qpoly import QPoly
from ..scop.scop import Scop
from .prevmap import ModelFallbackRequired, PrevMapBuilder, PrevRegion
from .refs import AccessInstance, rename_map
from .regions import feasible, lex_order_disjuncts, subtract

__all__ = ["AccessDistances", "DistancePiece", "StackDistanceAnalysis"]

COUNT_PREFIX = "cnt$"


@dataclass
class DistancePiece:
    """Backward stack distance on a sub-domain of the target's iterations."""

    domain: ConstraintSystem
    polynomial: QPoly

    def is_affine(self) -> bool:
        return self.polynomial.is_affine()


@dataclass
class AccessDistances:
    """Distance information for one access instance."""

    access: AccessInstance
    #: Pieces with a defined backward stack distance.
    pieces: List[DistancePiece] = field(default_factory=list)
    #: Regions whose accesses touch their cache line for the first time.
    first_touch_domains: List[ConstraintSystem] = field(default_factory=list)

    def piece_count(self) -> int:
        return len(self.pieces)


class StackDistanceAnalysis:
    """Computes the symbolic stack distances of every access of a SCoP."""

    def __init__(self, scop: Scop, *, line_size: int = 64, budget=None) -> None:
        self.scop = scop
        self.line_size = line_size
        #: Optional :class:`repro.core.budget.WorkBudget` shared with the
        #: previous-access map; charged per reuse-window system so heavy
        #: kernels trip a deterministic fallback.
        self.budget = budget
        self.prev_builder = PrevMapBuilder(scop, line_size=line_size, budget=budget)
        self.schedule_length = scop.schedule_length()
        #: Wall-clock seconds spent in the stack-distance phase (Figure 11).
        self.elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def analyze(self) -> List[AccessDistances]:
        start = time.perf_counter()
        prev_maps = self.prev_builder.all_prev_regions()
        results = []
        for access in self.prev_builder.accesses:
            results.append(self._distances_for(access, prev_maps))
        self.elapsed_seconds = time.perf_counter() - start
        return results

    # ------------------------------------------------------------------
    # Per-access computation
    # ------------------------------------------------------------------
    def _distances_for(
        self,
        target: AccessInstance,
        prev_maps: Dict[Tuple[str, int], List[PrevRegion]],
    ) -> AccessDistances:
        result = AccessDistances(access=target)
        target_schedule = target.schedule_exprs(self.schedule_length)
        for region in prev_maps[target.key]:
            if region.is_first_touch:
                result.first_touch_domains.append(region.domain)
                continue
            window_start = region.candidate.schedule
            contributions = self._window_contributions(region, window_start, target_schedule, prev_maps)
            result.pieces.extend(self._accumulate(region.domain, contributions))
        return result

    def _window_contributions(
        self,
        region: PrevRegion,
        window_start: Sequence[QPoly],
        window_end: Sequence[QPoly],
        prev_maps: Dict[Tuple[str, int], List[PrevRegion]],
    ) -> List[Tuple[ConstraintSystem, QPoly]]:
        """First-touch counts contributed by every access of the program."""
        contributions: List[Tuple[ConstraintSystem, QPoly]] = []
        for witness in self.prev_builder.accesses:
            rename = rename_map(witness.statement, COUNT_PREFIX)
            witness_vars = witness.loop_vars(COUNT_PREFIX)
            witness_domain = witness.domain(COUNT_PREFIX)
            witness_schedule = witness.schedule_exprs(self.schedule_length, COUNT_PREFIX)

            lower_disjuncts = lex_order_disjuncts(window_start, witness_schedule, strict=False)
            upper_disjuncts = lex_order_disjuncts(witness_schedule, window_end, strict=False)
            if not lower_disjuncts or not upper_disjuncts:
                continue

            for witness_region in prev_maps[witness.key]:
                witness_piece_domain = witness_region.domain.substitute(rename)
                if witness_region.is_first_touch:
                    first_touch_disjuncts: List[List] = [[]]
                else:
                    witness_prev_schedule = tuple(
                        expr.substitute(rename) for expr in witness_region.candidate.schedule
                    )
                    first_touch_disjuncts = lex_order_disjuncts(witness_prev_schedule, window_start, strict=True)
                    if not first_touch_disjuncts:
                        continue

                for lower in lower_disjuncts:
                    for upper in upper_disjuncts:
                        for first_touch in first_touch_disjuncts:
                            if self.budget is not None:
                                self.budget.charge()
                            system = region.domain.conjoin(witness_domain)
                            system = system.conjoin(witness_piece_domain)
                            for constraint in lower + upper + first_touch:
                                system.add(constraint)
                            if not feasible(system):
                                continue
                            try:
                                pieces = count_points(system, witness_vars)
                            except CountingError as exc:
                                raise ModelFallbackRequired(
                                    f"cannot count reuse window of {witness!r}: {exc}"
                                ) from exc
                            contributions.extend(pieces)
        return contributions

    # ------------------------------------------------------------------
    # Piecewise accumulation
    # ------------------------------------------------------------------
    def _accumulate(
        self,
        base_domain: ConstraintSystem,
        contributions: List[Tuple[ConstraintSystem, QPoly]],
    ) -> List[DistancePiece]:
        """Sum overlapping contribution pieces into a disjoint partition."""
        grouped = self._group_by_domain(contributions)
        pieces: List[Tuple[ConstraintSystem, QPoly]] = [(base_domain, QPoly())]
        base_keys = _constraint_keys(base_domain)
        for domain, polynomial in grouped:
            extra = [c for c in domain.constraints if _constraint_key(c) not in base_keys]
            updated: List[Tuple[ConstraintSystem, QPoly]] = []
            for piece_domain, piece_poly in pieces:
                if self.budget is not None:
                    self.budget.charge()
                if not extra:
                    updated.append((piece_domain, piece_poly + polynomial))
                    continue
                piece_keys = _constraint_keys(piece_domain)
                novel = [c for c in extra if _constraint_key(c) not in piece_keys]
                if not novel:
                    updated.append((piece_domain, piece_poly + polynomial))
                    continue
                restriction = ConstraintSystem(novel)
                overlap = piece_domain.conjoin(restriction)
                if not feasible(overlap):
                    updated.append((piece_domain, piece_poly))
                    continue
                for part in subtract(piece_domain, restriction):
                    updated.append((part, piece_poly))
                updated.append((overlap, piece_poly + polynomial))
            pieces = updated
        return [DistancePiece(domain, poly) for domain, poly in pieces if feasible(domain)]

    @staticmethod
    def _group_by_domain(
        contributions: List[Tuple[ConstraintSystem, QPoly]],
    ) -> List[Tuple[ConstraintSystem, QPoly]]:
        """Merge contributions with syntactically identical domains."""
        merged: Dict[frozenset, Tuple[ConstraintSystem, QPoly]] = {}
        for domain, polynomial in contributions:
            key = frozenset(_constraint_keys(domain))
            if key in merged:
                existing_domain, existing_poly = merged[key]
                merged[key] = (existing_domain, existing_poly + polynomial)
            else:
                merged[key] = (domain, polynomial)
        return list(merged.values())


def _constraint_key(constraint) -> Tuple:
    return (constraint.kind, constraint.expr._canonical_items())


def _constraint_keys(system: ConstraintSystem) -> set:
    return {_constraint_key(c) for c in system.constraints}
