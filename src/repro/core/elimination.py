"""Elimination of non-affine floor terms: equalization and rasterization.

Stack-distance polynomials frequently contain products of floor expressions
with loop variables (the cache-line structure of the accesses).  The paper
introduces two rewrite strategies (Section 3.3) that specialise the
polynomials per cache-line offset so that they become affine and can be
counted symbolically:

* **equalization** — two floors whose arguments differ by a constant offset
  are equal on most of the cache line and differ by one on the remainder;
  the piece is split into those two regions.
* **rasterization** — a floor is specialised for every individual cache-line
  offset (``denominator`` regions), turning ``e - m*floor(e/m)`` patterns into
  constants.

Both rewrites are only kept when they actually reduce the degree of the
polynomial, exactly as in the paper.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isl.constraints import ConstraintSystem, _replace_div, eq, ge, le
from ..isl.qpoly import Div, QPoly
from .distance import DistancePiece
from .regions import feasible

__all__ = ["equalize", "rasterize"]


def _nonaffine_divs(poly: QPoly) -> List[Div]:
    """Divs that occur in monomials of total degree greater than one."""
    found: List[Div] = []
    for monomial in poly.terms:
        degree = sum(exp for _, exp in monomial)
        if degree <= 1:
            continue
        for sym, _ in monomial:
            if isinstance(sym, Div) and sym not in found:
                found.append(sym)
    return found


def equalize(piece: DistancePiece) -> Optional[List[DistancePiece]]:
    """Split ``piece`` so that two offset-shifted floors coincide.

    Searches for a pair of divs ``floor((e + c)/m)`` and ``floor(e/m)`` with
    ``0 < c < m``; on the sub-domain where ``e mod m < m - c`` the two floors
    are equal, on the rest they differ by one.  Returns ``None`` when no such
    pair exists or when the rewrite does not reduce the polynomial degree.
    """
    divs = _nonaffine_divs(piece.polynomial)
    original_degree = piece.polynomial.degree()
    for first in divs:
        for second in piece.polynomial.divs():
            if first == second or first.denominator != second.denominator:
                continue
            offset = first.argument() - second.argument()
            if not offset.is_constant():
                continue
            shift = offset.constant_value()
            if shift.denominator != 1 or not (0 < shift < first.denominator):
                continue
            modulus = first.denominator
            base = second  # the "lower" floor floor(e/m)
            remainder = second.argument() - QPoly.variable(base) * modulus
            equal_domain = piece.domain.conjoin([le(remainder, modulus - int(shift) - 1)])
            bigger_domain = piece.domain.conjoin([ge(remainder, modulus - int(shift))])
            equal_poly = _replace_div(piece.polynomial, first, QPoly.variable(base))
            bigger_poly = _replace_div(piece.polynomial, first, QPoly.variable(base) + 1)
            if min(equal_poly.degree(), bigger_poly.degree()) >= original_degree:
                continue
            pieces = []
            if feasible(equal_domain):
                pieces.append(DistancePiece(equal_domain, equal_poly))
            if feasible(bigger_domain):
                pieces.append(DistancePiece(bigger_domain, bigger_poly))
            return pieces
    return None


def rasterize(piece: DistancePiece) -> Optional[List[DistancePiece]]:
    """Specialise a non-affine floor for every cache-line offset.

    For a div ``floor(e/m)`` appearing in a non-affine monomial, the domain is
    split into ``m`` residue classes ``e ≡ r (mod m)``; in each class the div
    is replaced by the affine expression ``(e - r)/m``.  Patterns of the form
    ``e - m*floor(e/m)`` collapse to the constant ``r``, which is what reduces
    the degree.  Returns ``None`` if no div qualifies or the degree does not
    decrease for any resulting piece.
    """
    divs = _nonaffine_divs(piece.polynomial)
    original_degree = piece.polynomial.degree()
    for div in divs:
        modulus = div.denominator
        argument = div.argument()
        pieces: List[DistancePiece] = []
        improved = False
        for residue in range(modulus):
            replacement = (argument - residue) * _fraction(1, modulus)
            new_poly = _replace_div(piece.polynomial, div, replacement)
            residue_constraint = eq(argument - QPoly.variable(div) * modulus, residue)
            new_domain = piece.domain.conjoin([residue_constraint])
            if not feasible(new_domain):
                continue
            if new_poly.degree() < original_degree:
                improved = True
            pieces.append(DistancePiece(new_domain, new_poly))
        if improved:
            return pieces
    return None


def _fraction(numerator: int, denominator: int):
    from fractions import Fraction

    return Fraction(numerator, denominator)
