"""Computation of the previous-access map (the paper's ``next map`` N^-1).

For every access instance (statement instance + array reference) the
*previous access* is the schedule-latest earlier access that touches the same
cache line.  The paper obtains it as ``lexmin(L< ∩ E)`` with isl; here it is
computed per candidate source reference with the parametric lexicographic
optimisation of :mod:`repro.isl.lexopt` and the candidates are combined into
a disjoint piecewise map by comparing their schedule values.

The regions where no previous access exists are exactly the compulsory
misses (paper Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isl.constraints import ConstraintSystem, UnboundedSetError, eq
from ..isl.lexopt import LexOptError, lexmax
from ..isl.qpoly import QPoly
from ..scop.scop import Scop
from .refs import AccessInstance, all_access_instances
from .regions import feasible, lex_compare_exprs, lex_order_disjuncts, subtract

__all__ = ["ModelFallbackRequired", "PrevCandidate", "PrevRegion", "PrevMapBuilder"]

SOURCE_PREFIX = "src$"


class ModelFallbackRequired(Exception):
    """Raised when the symbolic pipeline cannot handle a program exactly.

    The top-level model catches this and falls back to the trace-based
    reference computation, mirroring the paper's philosophy of degrading to
    (partial) enumeration rather than approximating.
    """


@dataclass
class PrevCandidate:
    """One candidate previous access, valid on ``domain``."""

    domain: ConstraintSystem
    source: AccessInstance
    #: Source iteration vector as expressions over the target's loop variables.
    source_values: Tuple[QPoly, ...]
    #: Schedule value of the candidate access over the target's loop variables.
    schedule: Tuple[QPoly, ...]


@dataclass
class PrevRegion:
    """A region of the target's domain with its previous access (or none)."""

    domain: ConstraintSystem
    candidate: Optional[PrevCandidate]

    @property
    def is_first_touch(self) -> bool:
        return self.candidate is None


class PrevMapBuilder:
    """Builds and caches previous-access maps for all accesses of a SCoP."""

    def __init__(self, scop: Scop, *, line_size: int = 64, budget=None) -> None:
        self.scop = scop
        self.line_size = line_size
        self.schedule_length = scop.schedule_length()
        self.accesses = all_access_instances(scop)
        self._cache: Dict[Tuple[str, int], List[PrevRegion]] = {}
        #: Optional :class:`repro.core.budget.WorkBudget`; charged per
        #: candidate disjunct and per region merge so runaway kernels trip a
        #: deterministic fallback instead of running unbounded.
        self.budget = budget

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def prev_regions(self, target: AccessInstance) -> List[PrevRegion]:
        if target.key not in self._cache:
            self._cache[target.key] = self._compute(target)
        return self._cache[target.key]

    def all_prev_regions(self) -> Dict[Tuple[str, int], List[PrevRegion]]:
        for access in self.accesses:
            self.prev_regions(access)
        return dict(self._cache)

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _compute(self, target: AccessInstance) -> List[PrevRegion]:
        candidates: List[PrevCandidate] = []
        for source in self.accesses:
            if source.ref.array.name != target.ref.array.name:
                continue
            candidates.extend(self._candidates_from_source(target, source))
        return self._combine(target, candidates)

    def _candidates_from_source(self, target: AccessInstance, source: AccessInstance) -> List[PrevCandidate]:
        length = self.schedule_length
        src_vars = source.loop_vars(SOURCE_PREFIX)
        base = target.domain().conjoin(source.domain(SOURCE_PREFIX))
        target_lines = target.line_exprs(self.line_size)
        source_lines = source.line_exprs(self.line_size, SOURCE_PREFIX)
        for target_expr, source_expr in zip(target_lines, source_lines):
            base.add(eq(source_expr, target_expr))
        if not feasible(base):
            return []

        source_schedule = source.schedule_exprs(length, SOURCE_PREFIX)
        target_schedule = target.schedule_exprs(length)
        candidates: List[PrevCandidate] = []
        for disjunct in lex_order_disjuncts(source_schedule, target_schedule, strict=True):
            if self.budget is not None:
                self.budget.charge()
            system = base.conjoin(disjunct)
            if not feasible(system):
                continue
            try:
                pieces = lexmax(system, src_vars)
            except (LexOptError, UnboundedSetError) as exc:
                raise ModelFallbackRequired(
                    f"previous-access map of {target!r} from {source!r} is not exactly computable: {exc}"
                ) from exc
            for context, values in pieces:
                assignment = dict(zip(src_vars, values))
                schedule = tuple(expr.substitute(assignment) for expr in source_schedule)
                candidates.append(
                    PrevCandidate(
                        domain=context,
                        source=source,
                        source_values=tuple(values),
                        schedule=schedule,
                    )
                )
        return candidates

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def _combine(self, target: AccessInstance, candidates: List[PrevCandidate]) -> List[PrevRegion]:
        regions: List[PrevRegion] = [PrevRegion(target.domain(), None)]
        for candidate in candidates:
            regions = self._merge_candidate(regions, candidate)
        return [region for region in regions if feasible(region.domain)]

    def _merge_candidate(self, regions: List[PrevRegion], candidate: PrevCandidate) -> List[PrevRegion]:
        updated: List[PrevRegion] = []
        for region in regions:
            if self.budget is not None:
                self.budget.charge()
            overlap = region.domain.conjoin(candidate.domain)
            if not feasible(overlap):
                updated.append(region)
                continue
            for piece in subtract(region.domain, candidate.domain):
                updated.append(PrevRegion(piece, region.candidate))
            if region.candidate is None:
                updated.append(PrevRegion(overlap, candidate))
                continue
            old_wins, new_wins = lex_compare_exprs(region.candidate.schedule, candidate.schedule, overlap)
            for domain in old_wins:
                updated.append(PrevRegion(domain, region.candidate))
            for domain in new_wins:
                updated.append(PrevRegion(domain, candidate))
        return updated
