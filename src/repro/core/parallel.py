"""Deterministic intra-analysis parallelism for the capacity-counting phase.

The per-access capacity counts of a single analysis are independent of each
other: every access has its own distance pieces, its own first-touch
domains, and its own :class:`~repro.core.capacity.CapacityCounter`.  This
module fans those per-access units out over a worker pool (the same
``multiprocessing`` machinery the batch engine uses across *jobs*) while
keeping the result — including the deterministic work accounting — byte
identical for every worker count.

Determinism is achieved by making each task **hermetic**:

* every task runs with a *fresh in-memory*
  :class:`~repro.engine.cache.CardinalityCache` (no shared warmth, no
  persistent store tier), so the number of symbolic operations a task
  performs depends only on its own access — never on what another worker
  computed first;
* every task gets its own :class:`~repro.core.budget.WorkBudget` sized to
  the units remaining in the analysis budget, and reports how much it used;
* the parent merges outcomes in access order and **replays** each task's
  charge against the real analysis budget, so cumulative exhaustion trips at
  the same access index regardless of scheduling, and
  ``ModelResult.timing.work_units_charged`` is a pure function of the
  program and the options.

Compared to the sequential path (``piece_workers=None``) the hermetic
accounting can charge *more* units (per-access caches cannot share across
accesses), so the two modes are distinct configurations; within the parallel
mode, ``piece_workers`` 1, 2 and 4 produce identical
:meth:`~repro.core.results.ModelResult.to_dict` payloads up to wall-clock
fields.  ``piece_workers=1`` runs the same hermetic merge inline — no pool —
which is also what a daemonic batch worker degrades to (nested pools are
impossible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine.cache import CardinalityCache
from ..isl.counting import CountingError
from .budget import BudgetExhausted, WorkBudget, active_budget
from .capacity import CapacityCounter, CounterOptions
from .distance import DistancePiece
from .prevmap import ModelFallbackRequired

__all__ = ["AccessOutcome", "AccessTask", "run_access_tasks"]


@dataclass(frozen=True)
class AccessTask:
    """Everything one worker needs to count one access, picklable."""

    index: int
    loop_vars: Tuple[str, ...]
    first_touch_domains: Tuple
    pieces: Tuple[DistancePiece, ...]
    grid: Tuple[int, ...]
    options: CounterOptions
    #: Work units this task may spend (the analysis budget's remainder at
    #: dispatch time); ``None`` = unlimited.
    budget_limit: Optional[int]
    backend: str


@dataclass
class AccessOutcome:
    """What one task produced: a curve, a failure, or a budget trip."""

    index: int
    status: str  # "ok" | "budget" | "fallback"
    units: int
    message: str = ""
    compulsory: int = 0
    curve: Tuple[int, ...] = ()
    pieces_counted: int = 0
    nonaffine_pieces: int = 0
    nonaffine_affine_dims: Tuple[int, ...] = ()
    enumerated_points: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def _run_access_task(task: AccessTask) -> AccessOutcome:
    """Count one access hermetically (fresh cache, private budget)."""
    budget = WorkBudget(task.budget_limit)
    cache = CardinalityCache()
    try:
        with active_budget(budget):
            compulsory = 0
            for domain in task.first_touch_domains:
                count_vars = [v for v in task.loop_vars if domain.involves(v)]
                try:
                    compulsory += cache.cardinality(domain, count_vars)
                except CountingError as exc:
                    raise ModelFallbackRequired(
                        f"cardinality of first-touch domain failed: {exc}"
                    ) from exc
            counter = CapacityCounter(
                list(task.loop_vars),
                task.options,
                cardinality_cache=cache,
                budget=budget,
                backend=task.backend,
            )
            curve = counter.count_curve(list(task.pieces), list(task.grid))
    except BudgetExhausted as exc:
        return AccessOutcome(index=task.index, status="budget", units=budget.used, message=str(exc))
    except ModelFallbackRequired as exc:
        return AccessOutcome(index=task.index, status="fallback", units=budget.used, message=str(exc))
    return AccessOutcome(
        index=task.index,
        status="ok",
        units=budget.used,
        compulsory=compulsory,
        curve=tuple(curve),
        pieces_counted=counter.stats.pieces_counted,
        nonaffine_pieces=counter.stats.nonaffine_pieces,
        nonaffine_affine_dims=tuple(counter.stats.nonaffine_affine_dims),
        enumerated_points=counter.stats.enumerated_points,
        cache_hits=cache.stats.hits,
        cache_misses=cache.stats.misses,
    )


def run_access_tasks(tasks: Sequence[AccessTask], workers: int) -> List[AccessOutcome]:
    """Run the tasks on ``workers`` processes; outcomes in task order.

    The outcome list is index-aligned with ``tasks`` whatever the scheduling;
    ``workers=1`` (or a single task, or a daemonic caller that cannot spawn a
    pool) degrades to an inline loop over the *same* hermetic task function,
    so the merged result does not depend on the worker count.
    """
    if workers < 1:
        raise ValueError(f"piece_workers must be >= 1, got {workers}")
    from ..engine.batch import pool_map_ordered

    return pool_map_ordered(_run_access_task, list(tasks), workers)
