"""Cache hierarchy configuration for the analytical model."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

__all__ = ["CacheLevelSpec", "MachineModel", "KIB", "MIB"]

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class CacheLevelSpec:
    """One cache level as the fully associative LRU model sees it."""

    size: int
    name: str = ""
    #: Associativity is only used by the simulator-based comparisons (the
    #: analytical model is fully associative by design).
    associativity: Optional[int] = None

    def label(self, index: int) -> str:
        return self.name or f"L{index + 1}"

    def capacity_lines(self, line_size: int) -> int:
        return max(1, self.size // line_size)


@dataclass(frozen=True)
class MachineModel:
    """Cache line size and hierarchy levels of the modelled machine."""

    line_size: int = 64
    levels: Tuple[CacheLevelSpec, ...] = (
        CacheLevelSpec(32 * KIB, "L1", 8),
        CacheLevelSpec(1 * MIB, "L2", 16),
    )

    def __post_init__(self) -> None:
        if self.line_size <= 0:
            raise ValueError("line size must be positive")
        if not self.levels:
            raise ValueError("at least one cache level is required")
        sizes = [level.size for level in self.levels]
        if sizes != sorted(sizes):
            raise ValueError("cache levels must be ordered from smallest to largest")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def xeon_gold_6150(num_levels: int = 2) -> "MachineModel":
        """The paper's test system: 32KiB L1, 1MiB L2, 24.75MiB shared L3."""
        levels = (
            CacheLevelSpec(32 * KIB, "L1", 8),
            CacheLevelSpec(1 * MIB, "L2", 16),
            CacheLevelSpec(int(18 * 1.375 * MIB), "L3", 11),
        )[:num_levels]
        return MachineModel(line_size=64, levels=levels)

    @staticmethod
    def polycache_reference() -> "MachineModel":
        """Cache sizes used for the PolyCache comparison (Section 4.4)."""
        return MachineModel(
            line_size=64,
            levels=(CacheLevelSpec(32 * KIB, "L1", 4), CacheLevelSpec(256 * KIB, "L2", 4)),
        )

    @staticmethod
    def single_level(size: int, line_size: int = 64) -> "MachineModel":
        return MachineModel(line_size=line_size, levels=(CacheLevelSpec(size, "L1"),))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def capacities_in_lines(self) -> List[int]:
        return [level.capacity_lines(self.line_size) for level in self.levels]

    def level_labels(self) -> List[str]:
        return [level.label(index) for index, level in enumerate(self.levels)]

    def with_levels(self, num_levels: int) -> "MachineModel":
        return replace(self, levels=self.levels[:num_levels])
