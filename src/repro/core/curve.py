"""Miss curves: one stack-distance analysis answering every cache size.

The paper's central amortization (Section 4.3) is that symbolic stack
distances are computed *once* and re-used for every cache level.  This module
pushes the same move one layer up: a :class:`MissCurve` is a monotone step
function ``capacity (in cache lines) -> capacity misses`` materialized as a
sorted breakpoint table, so *any* capacity query — a hierarchy level, a
design-space sweep point, an ad-hoc what-if — is an ``O(log n)`` lookup
instead of a fresh counting pass.

Two producers build curves:

* the **symbolic pipeline** partitions every distance piece along the
  capacity axis (see :meth:`repro.core.capacity.CapacityCounter.count_curve`)
  and samples the partition at the requested capacity grid; the resulting
  curve is exact at each grid point and, by monotonicity, on every interval
  whose two surrounding grid points agree;
* the **concrete (trace) pipeline** gets the curve nearly for free from the
  per-access distance histogram (``np.bincount``/``searchsorted`` on the
  vectorized backend, a dictionary pass on the reference) — that curve has a
  breakpoint at every attained distance and is therefore exact at *every*
  capacity (``exact=True``).

Both representations serialize identically (see :meth:`MissCurve.to_dict`,
schema-versioned) and ride inside
:class:`~repro.core.results.ModelResult` payloads, so the persistent
analysis store caches the full curve alongside the per-level counts.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["CURVE_SCHEMA_VERSION", "MissCurve"]

#: JSON schema version of serialized :class:`MissCurve` payloads.
CURVE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class MissCurve:
    """Capacity misses as a monotone step function of the cache capacity.

    ``capacities`` holds the breakpoints in cache lines, sorted strictly
    ascending and starting at ``0``; ``counts[i]`` is the number of capacity
    misses of a fully associative LRU cache with ``capacities[i]`` lines.
    Between breakpoints the curve snaps *down* to the nearest smaller
    breakpoint, which is an exact answer whenever the two surrounding
    breakpoints agree (the true curve is monotone) and an upper bound
    otherwise; curves with ``exact=True`` carry a breakpoint at every
    attained stack distance, so every query is exact.
    """

    line_size: int
    accesses: int
    compulsory: int
    capacities: Tuple[int, ...]
    counts: Tuple[int, ...]
    #: True when every change point of the underlying distance distribution
    #: is a breakpoint (trace-derived curves), making all queries exact.
    exact: bool = False

    def __post_init__(self) -> None:
        if self.line_size <= 0:
            raise ValueError("line size must be positive")
        if len(self.capacities) != len(self.counts):
            raise ValueError(
                f"{len(self.capacities)} breakpoints but {len(self.counts)} counts"
            )
        if not self.capacities or self.capacities[0] != 0:
            raise ValueError("the breakpoint table must start at capacity 0")
        if any(b <= a for a, b in zip(self.capacities, self.capacities[1:])):
            raise ValueError(f"breakpoints must be strictly ascending: {self.capacities}")
        if any(count < 0 for count in self.counts):
            raise ValueError(f"miss counts must be non-negative: {self.counts}")
        if any(b > a for a, b in zip(self.counts, self.counts[1:])):
            raise ValueError(
                f"miss counts must be non-increasing in capacity: {self.counts}"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def misses_at(self, capacity_lines: int) -> int:
        """Capacity misses of a cache with ``capacity_lines`` lines.

        ``O(log n)`` in the number of breakpoints.  Exact at every
        breakpoint (and everywhere for ``exact`` curves); between
        breakpoints the value of the nearest smaller breakpoint is returned.
        """
        if capacity_lines < 0:
            raise ValueError(f"capacity must be >= 0 lines, got {capacity_lines}")
        return self.counts[bisect_right(self.capacities, capacity_lines) - 1]

    def misses_at_bytes(self, cache_size: int) -> int:
        """Capacity misses of a cache of ``cache_size`` bytes (>= one line)."""
        return self.misses_at(max(1, cache_size // self.line_size))

    def total_misses_at(self, capacity_lines: int) -> int:
        """Compulsory plus capacity misses at ``capacity_lines`` lines."""
        return self.compulsory + self.misses_at(capacity_lines)

    def miss_ratio_at(self, capacity_lines: int) -> float:
        total = self.total_misses_at(capacity_lines)
        return total / self.accesses if self.accesses else 0.0

    def sample(self, capacities_lines: Sequence[int]) -> List[int]:
        """Capacity misses at each of the given capacities (in lines)."""
        return [self.misses_at(capacity) for capacity in capacities_lines]

    def is_breakpoint(self, capacity_lines: int) -> bool:
        """True when the curve is exact at ``capacity_lines`` by construction."""
        index = bisect_left(self.capacities, capacity_lines)
        return index < len(self.capacities) and self.capacities[index] == capacity_lines

    def __len__(self) -> int:
        return len(self.capacities)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self.capacities, self.counts))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_histogram(
        cls,
        histogram: Mapping[Optional[int], int],
        *,
        line_size: int,
        exact: bool = True,
    ) -> "MissCurve":
        """Curve from a stack-distance histogram (``None`` = first touches).

        Accepts exactly the histograms the two concrete backends produce
        (:meth:`repro.simulator.lru.StackDistanceProfiler.histogram` and
        :func:`repro.simulator.vectorized.distance_histogram`); negative
        keys are treated like ``None`` for the vectorized ``-1`` convention.
        """
        compulsory = 0
        finite: Dict[int, int] = {}
        for distance, count in histogram.items():
            if count < 0:
                raise ValueError(f"negative histogram count {count} for {distance!r}")
            if distance is None or distance < 0:
                compulsory += count
            else:
                finite[int(distance)] = finite.get(int(distance), 0) + count
        ordered = sorted(finite.items())
        total = sum(finite.values())
        capacities = [0]
        counts = [total - sum(count for distance, count in ordered if distance == 0)]
        running = counts[0]
        for distance, count in ordered:
            if distance == 0:
                continue
            running -= count
            capacities.append(distance)
            counts.append(running)
        return cls(
            line_size=line_size,
            accesses=compulsory + total,
            compulsory=compulsory,
            capacities=tuple(capacities),
            counts=tuple(counts),
            exact=exact,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "schema_version": CURVE_SCHEMA_VERSION,
            "line_size": self.line_size,
            "accesses": self.accesses,
            "compulsory": self.compulsory,
            "capacities": list(self.capacities),
            "counts": list(self.counts),
            "exact": self.exact,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MissCurve":
        version = data.get("schema_version", 1)
        if isinstance(version, int) and version > CURVE_SCHEMA_VERSION:
            raise ValueError(
                f"miss curve payload has schema_version {version}; "
                f"this build reads <= {CURVE_SCHEMA_VERSION}"
            )
        return cls(
            line_size=data["line_size"],
            accesses=data["accesses"],
            compulsory=data["compulsory"],
            capacities=tuple(int(value) for value in data["capacities"]),
            counts=tuple(int(value) for value in data["counts"]),
            exact=bool(data.get("exact", False)),
        )
