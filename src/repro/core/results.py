"""Result containers of the analytical cache model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["AccessMissCounts", "LevelMissCounts", "ModelResult", "TimingBreakdown"]


@dataclass
class AccessMissCounts:
    """Miss breakdown for one array reference of one statement."""

    statement: str
    position: int
    array: str
    is_write: bool
    accesses: int
    compulsory: int
    #: Capacity misses per cache level (indexed like the machine levels).
    capacity: List[int] = field(default_factory=list)

    def misses(self, level: int) -> int:
        return self.compulsory + self.capacity[level]

    def hits(self, level: int) -> int:
        return self.accesses - self.misses(level)


@dataclass
class LevelMissCounts:
    """Aggregate miss counts of one cache level."""

    name: str
    cache_size: int
    accesses: int
    compulsory: int
    capacity: int

    @property
    def misses(self) -> int:
        return self.compulsory + self.capacity

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "name": self.name,
            "cache_size": self.cache_size,
            "accesses": self.accesses,
            "compulsory": self.compulsory,
            "capacity": self.capacity,
            "misses": self.misses,
            "hits": self.hits,
        }


@dataclass
class TimingBreakdown:
    """Wall-clock breakdown of the model phases (Figure 11)."""

    stack_distance_seconds: float = 0.0
    capacity_seconds: float = 0.0
    other_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.stack_distance_seconds + self.capacity_seconds + self.other_seconds


@dataclass
class ModelResult:
    """Full output of one analytical model run."""

    kernel: str
    level_results: List[LevelMissCounts]
    per_access: List[AccessMissCounts]
    timing: TimingBreakdown
    #: Number of separately counted pieces (Figure 11/12 solid lines).
    piece_count: int = 0
    nonaffine_pieces: int = 0
    #: Affine-dimension histogram of non-affine polynomials (Table 1).
    nonaffine_affine_dims: List[int] = field(default_factory=list)
    enumerated_points: int = 0
    #: True when the symbolic pipeline had to fall back to trace-based
    #: computation for this kernel.
    used_fallback: bool = False

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.level_results[0].accesses if self.level_results else 0

    def level(self, index: int) -> LevelMissCounts:
        return self.level_results[index]

    def misses(self, level: int = 0) -> int:
        return self.level_results[level].misses

    def hits(self, level: int = 0) -> int:
        return self.level_results[level].hits

    def compulsory(self, level: int = 0) -> int:
        return self.level_results[level].compulsory

    def capacity(self, level: int = 0) -> int:
        return self.level_results[level].capacity

    def miss_ratio(self, level: int = 0) -> float:
        return self.level_results[level].miss_ratio

    def prediction_error(self, measured_misses: int, level: int = 0) -> float:
        """Prediction error relative to the total number of accesses.

        This is the error metric of Figures 9 and 10: the absolute difference
        between predicted and measured misses divided by the total number of
        memory accesses of the kernel.
        """
        if not self.accesses:
            return 0.0
        return abs(self.misses(level) - measured_misses) / self.accesses

    def as_dict(self) -> Dict:
        return {
            "kernel": self.kernel,
            "levels": [level.as_dict() for level in self.level_results],
            "piece_count": self.piece_count,
            "nonaffine_pieces": self.nonaffine_pieces,
            "enumerated_points": self.enumerated_points,
            "used_fallback": self.used_fallback,
            "timing": {
                "stack_distance_seconds": self.timing.stack_distance_seconds,
                "capacity_seconds": self.timing.capacity_seconds,
                "total_seconds": self.timing.total_seconds,
            },
        }
