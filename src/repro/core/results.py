"""Result containers of the analytical cache model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .curve import MissCurve

__all__ = ["AccessMissCounts", "LevelMissCounts", "ModelResult", "SCHEMA_VERSION", "TimingBreakdown"]

#: JSON schema version of serialized :class:`ModelResult` payloads.
#: :meth:`ModelResult.from_dict` is tolerant: payloads without the field
#: (written before versioning existed) are accepted, unknown extra keys are
#: ignored, and only payloads declaring a *newer* version are rejected.
#: Version 2 added the ``miss_curve`` section (see
#: :class:`repro.core.curve.MissCurve`); readers treat a missing curve as
#: ``None``.
SCHEMA_VERSION = 2


@dataclass
class AccessMissCounts:
    """Miss breakdown for one array reference of one statement."""

    statement: str
    position: int
    array: str
    is_write: bool
    accesses: int
    compulsory: int
    #: Capacity misses per cache level (indexed like the machine levels).
    capacity: List[int] = field(default_factory=list)

    def misses(self, level: int) -> int:
        return self.compulsory + self.capacity[level]

    def hits(self, level: int) -> int:
        return self.accesses - self.misses(level)

    def to_dict(self) -> Dict:
        return {
            "statement": self.statement,
            "position": self.position,
            "array": self.array,
            "is_write": self.is_write,
            "accesses": self.accesses,
            "compulsory": self.compulsory,
            "capacity": list(self.capacity),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AccessMissCounts":
        return cls(
            statement=data["statement"],
            position=data["position"],
            array=data["array"],
            is_write=data["is_write"],
            accesses=data["accesses"],
            compulsory=data["compulsory"],
            capacity=list(data.get("capacity", [])),
        )


@dataclass
class LevelMissCounts:
    """Aggregate miss counts of one cache level."""

    name: str
    cache_size: int
    accesses: int
    compulsory: int
    capacity: int

    @property
    def misses(self) -> int:
        return self.compulsory + self.capacity

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "name": self.name,
            "cache_size": self.cache_size,
            "accesses": self.accesses,
            "compulsory": self.compulsory,
            "capacity": self.capacity,
            "misses": self.misses,
            "hits": self.hits,
        }

    #: JSON serialization alias (``misses``/``hits`` are derived and
    #: therefore ignored by :meth:`from_dict`).
    to_dict = as_dict

    @classmethod
    def from_dict(cls, data: Dict) -> "LevelMissCounts":
        return cls(
            name=data["name"],
            cache_size=data["cache_size"],
            accesses=data["accesses"],
            compulsory=data["compulsory"],
            capacity=data["capacity"],
        )


@dataclass
class TimingBreakdown:
    """Wall-clock breakdown of the model phases (Figure 11).

    Also carries the cardinality-cache counters of the run (see
    :class:`repro.engine.cache.CardinalityCache`): how often a first-touch or
    capacity count was served memoized instead of re-derived symbolically.
    When the run is backed by the persistent analysis store
    (:class:`repro.engine.store.AnalysisStore`), ``store_hits`` /
    ``store_misses`` count the disk-tier lookups (memory misses that were
    served from, or had to populate, the store), and ``store_invalidations``
    counts entries dropped for belonging to a different code version.
    ``work_units_charged`` is the deterministic symbolic work consumed (see
    :class:`repro.isl.work.WorkBudget`) — a machine-independent cost metric
    the bench harness compares across runs.
    """

    stack_distance_seconds: float = 0.0
    capacity_seconds: float = 0.0
    other_seconds: float = 0.0
    cardinality_cache_hits: int = 0
    cardinality_cache_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_invalidations: int = 0
    work_units_charged: int = 0

    @property
    def total_seconds(self) -> float:
        return self.stack_distance_seconds + self.capacity_seconds + self.other_seconds

    @property
    def cardinality_cache_lookups(self) -> int:
        return self.cardinality_cache_hits + self.cardinality_cache_misses

    @property
    def cardinality_cache_hit_rate(self) -> float:
        lookups = self.cardinality_cache_lookups
        return self.cardinality_cache_hits / lookups if lookups else 0.0

    @property
    def store_lookups(self) -> int:
        return self.store_hits + self.store_misses

    @property
    def store_hit_rate(self) -> float:
        lookups = self.store_lookups
        return self.store_hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict:
        return {
            "stack_distance_seconds": self.stack_distance_seconds,
            "capacity_seconds": self.capacity_seconds,
            "other_seconds": self.other_seconds,
            "total_seconds": self.total_seconds,
            "cardinality_cache_hits": self.cardinality_cache_hits,
            "cardinality_cache_misses": self.cardinality_cache_misses,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_invalidations": self.store_invalidations,
            "work_units_charged": self.work_units_charged,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TimingBreakdown":
        return cls(
            stack_distance_seconds=data.get("stack_distance_seconds", 0.0),
            capacity_seconds=data.get("capacity_seconds", 0.0),
            other_seconds=data.get("other_seconds", 0.0),
            cardinality_cache_hits=data.get("cardinality_cache_hits", 0),
            cardinality_cache_misses=data.get("cardinality_cache_misses", 0),
            store_hits=data.get("store_hits", 0),
            store_misses=data.get("store_misses", 0),
            store_invalidations=data.get("store_invalidations", 0),
            work_units_charged=data.get("work_units_charged", 0),
        )


@dataclass
class ModelResult:
    """Full output of one analytical model run."""

    kernel: str
    level_results: List[LevelMissCounts]
    per_access: List[AccessMissCounts]
    timing: TimingBreakdown
    #: Number of separately counted pieces (Figure 11/12 solid lines); each
    #: piece is counted once for the whole capacity axis, not once per level.
    piece_count: int = 0
    nonaffine_pieces: int = 0
    #: Affine-dimension histogram of non-affine polynomials (Table 1).
    nonaffine_affine_dims: List[int] = field(default_factory=list)
    enumerated_points: int = 0
    #: True when the symbolic pipeline had to fall back to trace-based
    #: computation for this kernel.
    used_fallback: bool = False
    #: Capacity-miss curve of the whole kernel (one counting pass answering
    #: every cache size); trace-derived curves are exact at every capacity,
    #: symbolic ones at their breakpoints (see :class:`MissCurve`).
    miss_curve: Optional[MissCurve] = None

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.level_results[0].accesses if self.level_results else 0

    def level(self, index: int) -> LevelMissCounts:
        return self.level_results[index]

    def misses(self, level: int = 0) -> int:
        return self.level_results[level].misses

    def hits(self, level: int = 0) -> int:
        return self.level_results[level].hits

    def compulsory(self, level: int = 0) -> int:
        return self.level_results[level].compulsory

    def capacity(self, level: int = 0) -> int:
        return self.level_results[level].capacity

    def miss_ratio(self, level: int = 0) -> float:
        return self.level_results[level].miss_ratio

    def prediction_error(self, measured_misses: int, level: int = 0) -> float:
        """Prediction error relative to the total number of accesses.

        This is the error metric of Figures 9 and 10: the absolute difference
        between predicted and measured misses divided by the total number of
        memory accesses of the kernel.
        """
        if not self.accesses:
            return 0.0
        return abs(self.misses(level) - measured_misses) / self.accesses

    def to_dict(self) -> Dict:
        """Full JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kernel": self.kernel,
            "levels": [level.to_dict() for level in self.level_results],
            "per_access": [entry.to_dict() for entry in self.per_access],
            "piece_count": self.piece_count,
            "nonaffine_pieces": self.nonaffine_pieces,
            "nonaffine_affine_dims": list(self.nonaffine_affine_dims),
            "enumerated_points": self.enumerated_points,
            "used_fallback": self.used_fallback,
            "miss_curve": self.miss_curve.to_dict() if self.miss_curve is not None else None,
            "timing": self.timing.to_dict(),
        }

    #: Backward-compatible alias of :meth:`to_dict`.
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: Dict) -> "ModelResult":
        version = data.get("schema_version", 1)
        if isinstance(version, int) and version > SCHEMA_VERSION:
            raise ValueError(
                f"model result payload has schema_version {version}; "
                f"this build reads <= {SCHEMA_VERSION}"
            )
        return cls(
            kernel=data["kernel"],
            level_results=[LevelMissCounts.from_dict(entry) for entry in data.get("levels", [])],
            per_access=[AccessMissCounts.from_dict(entry) for entry in data.get("per_access", [])],
            timing=TimingBreakdown.from_dict(data.get("timing", {})),
            piece_count=data.get("piece_count", 0),
            nonaffine_pieces=data.get("nonaffine_pieces", 0),
            nonaffine_affine_dims=list(data.get("nonaffine_affine_dims", [])),
            enumerated_points=data.get("enumerated_points", 0),
            used_fallback=data.get("used_fallback", False),
            miss_curve=(
                MissCurve.from_dict(data["miss_curve"])
                if data.get("miss_curve") is not None
                else None
            ),
        )
