"""A simple next-line hardware prefetcher model.

The paper notes that hardware prefetchers "may load more data than
necessary" and deliberately excludes them from the model; the surrogate can
enable this component to study how much overfetch shifts the measured miss
counts relative to the analytical prediction.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["NextLinePrefetcher"]


class NextLinePrefetcher:
    """On a miss, prefetch the next sequential cache line.

    Prefetches are inserted into the cache without being counted as demand
    accesses (they only perturb the replacement state), which mirrors how a
    hardware prefetcher changes the observable miss counts.
    """

    def __init__(self, cache, *, degree: int = 1) -> None:
        self.cache = cache
        self.degree = degree
        self.issued = 0

    def observe(self, line: int, hit: bool) -> None:
        if hit:
            return
        stats = self.cache.stats
        saved = (
            stats.accesses,
            stats.hits,
            stats.compulsory_misses,
            stats.conflict_misses,
            stats.capacity_misses,
            stats.writebacks,
        )
        for distance in range(1, self.degree + 1):
            self.cache.access_line(line + distance)
            self.issued += 1
        # Prefetches must not perturb the demand-access statistics — that
        # includes write-back counts: a line displaced by a prefetch is not
        # charged as demand write-back traffic.
        (
            stats.accesses,
            stats.hits,
            stats.compulsory_misses,
            stats.conflict_misses,
            stats.capacity_misses,
            stats.writebacks,
        ) = saved
