"""Hardware-measurement surrogate (stand-in for PAPI on the test system)."""

from .measurement import HardwareLevelConfig, HardwareSurrogate, MeasurementResult
from .prefetcher import NextLinePrefetcher

__all__ = ["HardwareLevelConfig", "HardwareSurrogate", "MeasurementResult", "NextLinePrefetcher"]
