"""Surrogate for the paper's hardware measurements (PAPI on a Xeon Gold 6150).

The reproduction has no access to the paper's test system or to hardware
performance counters, so the "measured" cache misses of Figures 9 and 10 are
produced by a deterministic micro-architectural simulation that includes
exactly the effects the paper names as the sources of model-vs-hardware
error:

* set associativity (8-way L1, 16-way L2 instead of full associativity),
* a tree pseudo-LRU replacement policy instead of true LRU, and
* optional next-line prefetching (overfetch).

See DESIGN.md (substitutions) for the rationale.  The surrogate is
deterministic, so "measurement noise" is zero; the paper's error metric
(misses relative to total accesses) is computed the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..scop.scop import Scop
from ..simulator.lru import CacheStatistics
from ..simulator.set_assoc import ReplacementPolicy, SetAssociativeCache
from ..simulator.trace import TraceGenerator
from .prefetcher import NextLinePrefetcher

__all__ = ["HardwareLevelConfig", "HardwareSurrogate", "MeasurementResult"]


@dataclass(frozen=True)
class HardwareLevelConfig:
    """Geometry of one real cache level."""

    cache_size: int
    associativity: int
    line_size: int = 64
    policy: str = ReplacementPolicy.TREE_PLRU
    name: str = ""


@dataclass
class MeasurementResult:
    """Miss counts observed by the hardware surrogate."""

    kernel: str
    accesses: int
    levels: List[CacheStatistics]

    def misses(self, level: int = 0) -> int:
        return self.levels[level].misses

    def hits(self, level: int = 0) -> int:
        return self.levels[level].hits


class HardwareSurrogate:
    """Deterministic stand-in for PAPI measurements on the test system."""

    #: The paper's test system: 32KiB 8-way L1 and 1MiB 16-way L2 per core.
    XEON_GOLD_6150 = (
        HardwareLevelConfig(32 * 1024, 8, name="L1"),
        HardwareLevelConfig(1024 * 1024, 16, name="L2"),
    )

    def __init__(
        self,
        levels: Sequence[HardwareLevelConfig] = XEON_GOLD_6150,
        *,
        prefetch: bool = False,
        padded_layout: bool = False,
    ) -> None:
        self.levels = list(levels)
        self.prefetch = prefetch
        #: Real hardware does not pad array rows to cache lines; keeping the
        #: natural layout is one of the error sources the model tolerates.
        self.padded_layout = padded_layout

    def measure(self, scop: Scop) -> MeasurementResult:
        line_size = self.levels[0].line_size
        generator = TraceGenerator(scop, line_size=line_size, padded=self.padded_layout)
        caches = [
            SetAssociativeCache(cfg.cache_size, cfg.line_size, cfg.associativity, policy=cfg.policy)
            for cfg in self.levels
        ]
        prefetchers = [NextLinePrefetcher(cache) if self.prefetch else None for cache in caches]
        accesses = 0
        for access in generator.accesses():
            accesses += 1
            line = access.address // line_size
            for cache, prefetcher in zip(caches, prefetchers):
                hit = cache.access_line(line, is_write=access.is_write)
                if prefetcher is not None:
                    prefetcher.observe(line, hit)
        return MeasurementResult(kernel=scop.name, accesses=accesses, levels=[c.stats for c in caches])
