"""Named machine-model presets, resolvable via the :mod:`repro.api` registry.

The CLI used to rebuild the same hierarchies from raw ``--l1/--l2/--l3``
byte counts in every invocation and every bench suite; these presets give
the recurring configurations stable names (``--machine paper-xeon``,
``Session().machine("l1-only")``).  Third-party distributions add their own
through the :data:`repro.api.registry.MACHINE_GROUP` entry-point group.
"""

from __future__ import annotations

from ..core.config import KIB, CacheLevelSpec, MachineModel
from .registry import register_machine

__all__ = []  # registration side effects only


@register_machine(
    "default",
    description="32KiB L1 + 1MiB L2 (the model's default hierarchy)",
    source="builtin",
)
def _default() -> MachineModel:
    return MachineModel()


@register_machine(
    "paper-xeon",
    description="Xeon Gold 6150, the paper's test system: 32KiB L1 + 1MiB L2 + 24.75MiB L3",
    source="builtin",
)
def _paper_xeon() -> MachineModel:
    return MachineModel.xeon_gold_6150(num_levels=3)


@register_machine(
    "paper-xeon-l2",
    description="Xeon Gold 6150 truncated to two levels (32KiB L1 + 1MiB L2)",
    source="builtin",
)
def _paper_xeon_l2() -> MachineModel:
    return MachineModel.xeon_gold_6150(num_levels=2)


@register_machine(
    "polycache",
    description="PolyCache comparison hierarchy (Section 4.4): 32KiB L1 + 256KiB L2",
    source="builtin",
)
def _polycache() -> MachineModel:
    return MachineModel.polycache_reference()


@register_machine(
    "l1-only",
    description="single 32KiB L1, 64B lines",
    source="builtin",
)
def _l1_only() -> MachineModel:
    return MachineModel(line_size=64, levels=(CacheLevelSpec(32 * KIB, "L1"),))


@register_machine(
    "l1-tiny",
    description="single 1KiB L1 (16 lines) for didactic runs and tests",
    source="builtin",
)
def _l1_tiny() -> MachineModel:
    return MachineModel(line_size=64, levels=(CacheLevelSpec(1 * KIB, "L1"),))
