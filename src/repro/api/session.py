"""The unified analysis façade: :class:`Session` and :class:`AnalysisRequest`.

One object owns everything a run needs — machine model, model options, work
budget, worker pool size, and analysis-store path — and every entry point
(single analysis, batch matrix, streaming batch) flows through it::

    from repro.api import Session

    batch = (
        Session()
        .machine("paper-xeon")
        .budget(10_000)
        .workers(4)
        .kernels("gemm", "jacobi-2d")
        .datasets("small", "large")
        .run()
    )

    for record in Session().kernels("gemm").datasets("mini").run_iter():
        ...  # records stream in as the pool completes them

Kernel and machine names resolve through :mod:`repro.api.registry`, so
plugin-contributed kernels work everywhere a builtin does.  Configuration
methods validate eagerly and return the session, so a typo fails at the call
site instead of deep inside a worker process.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from ..core.results import ModelResult
from ..engine.batch import BatchEngine, BatchResult, JobRecord, default_worker_count
from ..engine.jobs import JobSpec
from ..scop import Scop

__all__ = ["AnalysisRequest", "Session", "SessionConfigError"]

#: ModelOptions switches settable through :meth:`Session.options`.
_OPTION_NAMES = (
    "equalization",
    "rasterization",
    "partial_enumeration",
    "fallback",
    "cross_check",
)


class SessionConfigError(ValueError):
    """Invalid session or request configuration (raised at the call site)."""


#: Sentinel distinguishing ``store()`` (use the default path) from an
#: explicit ``store(None)`` (disable the store).
_USE_DEFAULT_STORE = object()


def _coerce_levels(levels) -> Tuple[int, ...]:
    if isinstance(levels, int):
        levels = (levels,)
    try:
        sizes = tuple(int(size) for size in levels)
    except TypeError:
        raise SessionConfigError(
            f"cache levels must be an int or a sequence of ints, got {levels!r}"
        ) from None
    if not sizes or any(size <= 0 for size in sizes):
        raise SessionConfigError(f"cache level sizes must be positive, got {sizes!r}")
    if list(sizes) != sorted(sizes):
        raise SessionConfigError(
            f"cache levels must be ordered from smallest to largest, got {sizes!r}"
        )
    return sizes


class Session:
    """Owns the full configuration of analysis runs; entry point of the API.

    All configuration methods mutate the session and return it, so calls
    chain fluently.  :meth:`kernels` / :meth:`scops` open an
    :class:`AnalysisRequest` that inherits the session's configuration.
    """

    def __init__(self, machine: Union[str, MachineModel, None] = None) -> None:
        from . import registry
        from ..simulator.vectorized import validate_backend_env

        # A bad $REPRO_BACKEND would otherwise leak through backend="auto"
        # into a deep ValueError at trace-fallback time, and a bad
        # $REPRO_STORE_PATH / $REPRO_STORE_BACKEND into a failure (or a
        # silently disabled store) mid-analysis; fail at session
        # construction instead, with the offending value named.
        from ..engine.store import validate_store_env

        try:
            validate_backend_env()
            validate_store_env()
        except ValueError as exc:
            raise SessionConfigError(str(exc)) from None
        self._registry = registry
        self._machine: MachineModel = (
            MachineModel() if machine is None else self._resolve_machine(machine)
        )
        self._budget: Optional[int] = None
        self._workers: int = 1
        self._piece_workers: Optional[int] = None
        self._store_path: Optional[str] = None
        self._backend: str = "auto"
        self._capacities: Tuple[int, ...] = ()
        self._tiles: Tuple[int, ...] = ()
        self._line_sizes: Tuple[int, ...] = ()
        self._toggles = {
            "equalization": True,
            "rasterization": True,
            "partial_enumeration": True,
            "fallback": True,
            "cross_check": False,
        }

    # ------------------------------------------------------------------
    # Fluent configuration
    # ------------------------------------------------------------------
    def _resolve_machine(self, spec) -> MachineModel:
        if isinstance(spec, (tuple, list)):
            return MachineModel(
                levels=tuple(
                    CacheLevelSpec(size, f"L{index + 1}")
                    for index, size in enumerate(_coerce_levels(spec))
                )
            )
        return self._registry.resolve_machine(spec)

    def machine(self, spec: Union[str, MachineModel, Sequence[int]]) -> "Session":
        """Set the machine model: a registry name (``"paper-xeon"``), a
        :class:`MachineModel`, or a sequence of cache sizes in bytes."""
        self._machine = self._resolve_machine(spec)
        return self

    def budget(self, units: Optional[int]) -> "Session":
        """Deterministic symbolic work budget; ``None`` or ``0`` = unlimited."""
        if units is not None and units < 0:
            raise SessionConfigError(f"work budget must be >= 0 or None, got {units}")
        self._budget = units or None
        return self

    def backend(self, name: str) -> "Session":
        """Concrete-pipeline backend for trace fallback, cross-check, and
        simulator baselines: ``"numpy"`` (vectorized), ``"python"``
        (reference loops), or ``"auto"`` (NumPy when installed).  Validated
        eagerly; an explicit ``"numpy"`` without NumPy installed raises at
        the call site."""
        from ..simulator.vectorized import BackendUnavailableError, resolve_backend

        try:
            resolve_backend(name)
        except (ValueError, BackendUnavailableError) as exc:
            raise SessionConfigError(str(exc)) from None
        self._backend = name
        return self

    def sweep(self, capacities=None, *, tiles=None, line_sizes=None) -> "Session":
        """Configure sweep axes through the one shared parser (:mod:`repro.sweep`).

        Every axis accepts ints, iterables, ``"MIN:MAX[:POINTS]"`` range
        strings, and K/M/G-suffixed sizes — the same grammar as the CLI's
        ``--sweep`` and the server's ``capacities`` field.  ``capacities``
        become breakpoints of every result's :class:`~repro.core.MissCurve`
        (one counting pass serves the whole axis); ``tiles`` and
        ``line_sizes`` seed the default :class:`~repro.explore.DesignSpace`
        of :meth:`explore`.  ``None`` leaves an axis untouched; an empty
        spec (``()``) clears it.
        """
        if capacities is not None:
            self._capacities = self._clean_sizes(capacities, "capacities")
        if tiles is not None:
            cleaned = self._clean_sizes(tiles, "tiles")
            if any(tile < 1 for tile in cleaned):
                raise SessionConfigError(f"tiles must be >= 1, got {cleaned}")
            self._tiles = cleaned
        if line_sizes is not None:
            self._line_sizes = self._clean_sizes(line_sizes, "line_sizes")
        return self

    def capacities(self, *sizes: int) -> "Session":
        """Extra cache sizes in bytes to resolve on the result's miss curve.

        Thin alias for :meth:`sweep` with only the capacity axis: the sizes
        become breakpoints of every analysis result's
        :class:`~repro.core.MissCurve` alongside the machine's hierarchy
        levels — all served by the same single counting pass, so a wide
        sweep costs barely more than a fixed-capacity run.  Calling with no
        arguments clears a previously configured sweep.
        """
        return self.sweep(capacities=sizes)

    def _clean_sizes(self, sizes, label: str) -> Tuple[int, ...]:
        """Flatten, parse, and validate one sweep axis; sorted unique ints."""
        from ..sweep import Sweep, SweepError

        if not isinstance(sizes, (tuple, list, range, set, frozenset)):
            sizes = (sizes,)
        flat: List[int] = []
        for size in sizes:
            if isinstance(size, (tuple, list, range, set, frozenset)):
                flat.extend(size)
            else:
                flat.append(size)
        strings = [size for size in flat if isinstance(size, (str, Sweep))]
        numbers = [size for size in flat if not isinstance(size, (str, Sweep))]
        if any(isinstance(size, bool) for size in numbers):
            raise SessionConfigError(f"{label} must be cache sizes in bytes, got {sizes!r}")
        try:
            # operator.index rejects floats (no silent truncation of e.g.
            # 1.5 * KIB-style computed sizes) while accepting int-likes.
            cleaned = {operator.index(size) for size in numbers}
        except TypeError:
            raise SessionConfigError(
                f"{label} must be cache sizes in bytes, got {sizes!r}"
            ) from None
        for spec in strings:
            try:
                cleaned.update(Sweep.parse(spec, label=label).values)
            except SweepError as exc:
                raise SessionConfigError(str(exc)) from None
        ordered = sorted(cleaned)
        if ordered and ordered[0] <= 0:
            raise SessionConfigError(f"{label} must be positive byte sizes, got {ordered}")
        return tuple(ordered)

    def workers(self, count: Union[int, str]) -> "Session":
        """Worker-pool size for batch runs; ``"auto"`` picks a machine default."""
        if count == "auto":
            count = default_worker_count()
        if not isinstance(count, int) or count < 1:
            raise SessionConfigError(f"worker count must be >= 1 or 'auto', got {count!r}")
        self._workers = count
        return self

    def piece_workers(self, count: Union[int, str, None]) -> "Session":
        """Intra-analysis parallelism for single analyses (:meth:`analyze`).

        Splits the independent per-access capacity counts of *one* analysis
        across ``count`` worker processes (``"auto"`` picks the machine
        default, ``None`` restores the sequential path).  Results — including
        the deterministic work accounting — are byte-identical for every
        worker count; see :mod:`repro.core.parallel`.  Batch runs keep using
        :meth:`workers` (one process per job) and ignore this knob.
        """
        if count is None:
            self._piece_workers = None
            return self
        if count == "auto":
            count = default_worker_count()
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise SessionConfigError(
                f"piece worker count must be >= 1, 'auto', or None, got {count!r}"
            )
        self._piece_workers = count
        return self

    def store(self, path=_USE_DEFAULT_STORE, *, backend: Optional[str] = None) -> "Session":
        """Enable the persistent analysis store.

        ``store()`` uses the default path (``$REPRO_STORE_PATH`` or the user
        cache directory); ``store(path)`` uses that path.  An explicit
        ``store(None)`` disables the store — so configuration values of the
        form ``store_path or None`` pass through with their
        :class:`~repro.engine.batch.BatchEngine` meaning intact.

        ``backend`` selects the storage backend (``"dir"`` / ``"sqlite"``;
        default: ``$REPRO_STORE_BACKEND`` or the directory backend).  The
        location is validated eagerly — a path that exists with the wrong
        type or an unwritable parent raises here, at the call site, instead
        of disabling the store deep inside a worker.  The stored path is a
        normalized ``backend:path`` spec, so workers and the server open the
        same backend with no extra plumbing.
        """
        from ..engine.store import default_store_path, validate_store_path

        if path is _USE_DEFAULT_STORE:
            path = default_store_path()
        elif path is None:
            self._store_path = None
            return self
        try:
            self._store_path = validate_store_path(str(path), backend)
        except ValueError as exc:
            raise SessionConfigError(str(exc)) from None
        return self

    def no_store(self) -> "Session":
        self._store_path = None
        return self

    def options(self, **toggles: bool) -> "Session":
        """Set model switches: ``equalization``, ``rasterization``,
        ``partial_enumeration``, ``fallback`` (trace fallback on symbolic
        failure), ``cross_check``."""
        unknown = set(toggles) - set(_OPTION_NAMES)
        if unknown:
            raise SessionConfigError(
                f"unknown model options: {', '.join(sorted(unknown))}; "
                f"available: {', '.join(_OPTION_NAMES)}"
            )
        for name, value in toggles.items():
            self._toggles[name] = bool(value)
        return self

    def configure(self, options: ModelOptions) -> "Session":
        """Adopt the switches of an existing :class:`ModelOptions` (migration aid)."""
        self._toggles.update(
            equalization=options.equalization,
            rasterization=options.rasterization,
            partial_enumeration=options.partial_enumeration,
            fallback=options.fallback_to_simulation,
            cross_check=options.cross_check,
        )
        self._budget = options.symbolic_work_budget
        if options.store_path:
            self._store_path = options.store_path
        self._backend = options.backend
        self._piece_workers = options.piece_workers
        self._capacities = tuple(options.curve_capacities or ())
        return self

    # ------------------------------------------------------------------
    # Derived configuration
    # ------------------------------------------------------------------
    @property
    def machine_model(self) -> MachineModel:
        return self._machine

    @property
    def store_path(self) -> Optional[str]:
        return self._store_path

    @property
    def worker_count(self) -> int:
        return self._workers

    def model_options(self, *, fallback: Optional[bool] = None) -> ModelOptions:
        return ModelOptions(
            equalization=self._toggles["equalization"],
            rasterization=self._toggles["rasterization"],
            partial_enumeration=self._toggles["partial_enumeration"],
            fallback_to_simulation=(
                self._toggles["fallback"] if fallback is None else fallback
            ),
            cross_check=self._toggles["cross_check"],
            symbolic_work_budget=self._budget,
            store_path=self._store_path,
            backend=self._backend,
            piece_workers=self._piece_workers,
            curve_capacities=self._capacities or None,
        )

    def cache_model(self, *, fallback: Optional[bool] = None) -> CacheModel:
        """A :class:`CacheModel` bound to this session's machine and options."""
        return CacheModel(self._machine, self.model_options(fallback=fallback))

    def open_store(self):
        """The session's :class:`AnalysisStore` handle, or ``None``."""
        if not self._store_path:
            return None
        from ..engine.store import AnalysisStore

        return AnalysisStore(self._store_path)

    def job_spec(
        self,
        kernel: str,
        dataset: str = "mini",
        *,
        scop: Optional[Scop] = None,
        levels: Optional[Sequence[int]] = None,
    ) -> JobSpec:
        """The :class:`JobSpec` this session would run for one kernel/scop."""
        sizes = (
            _coerce_levels(levels)
            if levels is not None
            else tuple(level.size for level in self._machine.levels)
        )
        return JobSpec(
            kernel=kernel,
            dataset=dataset,
            scop=scop,
            line_size=self._machine.line_size,
            levels=sizes,
            fallback=self._toggles["fallback"],
            equalization=self._toggles["equalization"],
            rasterization=self._toggles["rasterization"],
            partial_enumeration=self._toggles["partial_enumeration"],
            symbolic_work_budget=self._budget,
            cross_check=self._toggles["cross_check"],
            backend=self._backend,
            curve_capacities=self._capacities,
        )

    # ------------------------------------------------------------------
    # Requests and runs
    # ------------------------------------------------------------------
    def kernels(self, *names: str) -> "AnalysisRequest":
        """Open a batch request over registered kernel names."""
        return AnalysisRequest(self).kernels(*names)

    def scops(self, *scops: Scop) -> "AnalysisRequest":
        """Open a batch request over pre-built :class:`Scop` programs."""
        return AnalysisRequest(self).scops(*scops)

    def kernel_file(self, path, *, replace: bool = True) -> "AnalysisRequest":
        """Parse a ``.knl`` kernel file, register it, and open a request on it.

        The file's kernel joins the registry under its own name with its own
        dataset blocks (source ``file:<basename>``), so every later call —
        by-name batches, the store, miss curves — sees it like a builtin::

            result = Session().machine("paper-xeon").kernel_file(
                "examples/kernels/gemm.knl").datasets("mini").run()

        ``replace=True`` (the default) lets re-parsing an edited file win over
        the previous registration.  Raises
        :class:`~repro.frontend.KernelParseError` on invalid input and
        ``OSError`` if the file cannot be read.
        """
        from ..frontend import register_kernel_file

        program = register_kernel_file(path, replace=replace)
        return self.kernels(program.name)

    def _engine(self) -> BatchEngine:
        return BatchEngine(self._workers, store_path=self._store_path)

    def run(
        self,
        specs: Sequence[JobSpec],
        *,
        progress: Optional[Callable[[JobRecord, int, int], None]] = None,
        error_policy: str = "continue",
    ) -> BatchResult:
        """Run explicit :class:`JobSpec` records through the session's pool."""
        return self._engine().run(specs, progress=progress, error_policy=error_policy)

    def run_iter(
        self,
        specs: Sequence[JobSpec],
        *,
        progress: Optional[Callable[[JobRecord, int, int], None]] = None,
        error_policy: str = "continue",
    ) -> Iterator[JobRecord]:
        """Stream :class:`JobRecord` results as the pool completes them."""
        return self._engine().run_iter(specs, progress=progress, error_policy=error_policy)

    def analyze(
        self,
        target: Union[str, Scop],
        dataset: Optional[str] = None,
        *,
        overrides=None,
    ) -> ModelResult:
        """Analyse one kernel (by registered name) or one :class:`Scop`.

        Honors the session's machine, options, budget, and store: with a
        store configured the result round-trips through it exactly like a
        batch job would.  Raises on analysis failure (batch runs capture
        errors per record instead).
        """
        if isinstance(target, Scop):
            if dataset is not None or overrides:
                raise SessionConfigError(
                    "dataset/overrides only apply to kernel names; "
                    "build the Scop with the desired sizes instead"
                )
            scop = target
            spec = self.job_spec(scop.name, scop=scop)
        else:
            entry = self._registry.get_kernel(target)
            dataset = dataset if dataset is not None else entry.datasets[0]
            scop = entry.build(dataset, overrides)
            # Size overrides change the program identity, so the spec must
            # carry the structural fingerprint instead of the kernel name.
            spec = (
                self.job_spec(target, dataset)
                if not overrides
                else self.job_spec(target, scop=scop)
            )
        store = self.open_store()
        digest = None
        if store is not None:
            from ..engine.store import job_digest

            digest = job_digest(spec)
            payload = store.get_result(digest)
            if payload is not None:
                try:
                    return ModelResult.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    pass
        result = self.cache_model().analyze(scop)
        if store is not None:
            store.put_result(digest, result.to_dict())
        return result

    def lint(
        self,
        target: Union[str, Scop],
        dataset: Optional[str] = None,
        *,
        cost: bool = True,
    ):
        """Statically verify one kernel (by registered name) or one :class:`Scop`.

        Runs every :mod:`repro.verify` check against the session's machine
        and model options and returns a
        :class:`~repro.verify.VerifyReport`; no cache-model analysis is
        performed.  ``cost=True`` (default) also runs the symbolic-cost
        probe under the session's budget, predicting whether an
        :meth:`analyze` call would trip it (its wall cost is bounded by
        that budget).
        """
        from ..verify import verify_scop

        if isinstance(target, Scop):
            if dataset is not None:
                raise SessionConfigError(
                    "dataset only applies to kernel names; "
                    "build the Scop with the desired sizes instead"
                )
            scop = target
        else:
            entry = self._registry.get_kernel(target)
            dataset = dataset if dataset is not None else entry.datasets[0]
            scop = entry.build(dataset)
        return verify_scop(
            scop,
            self._machine,
            dataset=dataset,
            budget=self._budget,
            cost=cost,
            options=self.model_options(),
        )

    def derive(self, *, machine=None, capacities=None) -> "Session":
        """A copy of this session with selected knobs replaced.

        Budget, backend, store, worker counts, and model toggles carry over;
        ``machine`` and ``capacities`` (when given) replace the originals.
        The explorer uses this to analyze each design-grid variant against
        its own single-level machine while sharing the parent's store.
        """
        clone = Session(machine if machine is not None else self._machine)
        clone._budget = self._budget
        clone._workers = self._workers
        clone._piece_workers = self._piece_workers
        clone._store_path = self._store_path
        clone._backend = self._backend
        clone._capacities = (
            self._capacities if capacities is None else tuple(capacities)
        )
        clone._tiles = self._tiles
        clone._line_sizes = self._line_sizes
        clone._toggles = dict(self._toggles)
        return clone

    def explore(
        self,
        target: Union[str, Scop],
        dataset: Optional[str] = None,
        *,
        space=None,
        tiles=None,
        capacities=None,
        line_sizes=None,
        associativities=None,
        overrides=None,
    ):
        """Walk a tile × capacity × line-size × associativity design grid.

        Pass a pre-built :class:`~repro.explore.DesignSpace` *or* per-axis
        sweep specs (ints, iterables, ``"MIN:MAX[:POINTS]"`` strings —
        anything :mod:`repro.sweep` parses).  Axes left unset fall back to
        the session's :meth:`sweep` configuration, then to the machine's
        hierarchy (capacities) and line size.  Returns a ranked
        :class:`~repro.explore.ExploreResult` whose Pareto front minimizes
        (predicted misses, hardware-cost proxy); the grid costs one analysis
        per (tile, line size) — capacities and associativities are free.
        """
        from ..explore import DesignSpace, DesignSpaceError, run_explore

        if space is not None:
            if any(axis is not None for axis in (tiles, capacities, line_sizes, associativities)):
                raise SessionConfigError(
                    "pass either a pre-built DesignSpace or axis specs, not both"
                )
        else:
            try:
                space = DesignSpace.from_specs(
                    tiles=tiles if tiles is not None else (self._tiles or None),
                    capacities=(
                        capacities if capacities is not None else (self._capacities or None)
                    ),
                    line_sizes=(
                        line_sizes if line_sizes is not None else (self._line_sizes or None)
                    ),
                    associativities=associativities,
                )
            except DesignSpaceError as exc:
                raise SessionConfigError(str(exc)) from None
        if isinstance(target, Scop):
            if dataset is not None or overrides:
                raise SessionConfigError(
                    "dataset/overrides only apply to kernel names; "
                    "build the Scop with the desired sizes instead"
                )
            scop, kernel = target, target.name
        else:
            entry = self._registry.get_kernel(target)
            dataset = dataset if dataset is not None else entry.datasets[0]
            scop, kernel = entry.build(dataset, overrides), target
        try:
            return run_explore(self, scop, space, kernel=kernel, dataset=dataset)
        except DesignSpaceError as exc:
            raise SessionConfigError(str(exc)) from None

    def miss_curve(
        self,
        target: Union[str, Scop],
        dataset: Optional[str] = None,
        *,
        capacities: Optional[Sequence[int]] = None,
        overrides=None,
    ):
        """Miss curve of one kernel or :class:`Scop`: every cache size from
        one analysis.

        ``capacities`` (bytes) adds sweep breakpoints for this and later
        runs, like :meth:`capacities`.  The analysis flows through
        :meth:`analyze`, so the store caches the curve together with the
        per-level counts, and trace-fallback results return a curve that is
        exact at *every* capacity.
        """
        if capacities is not None:
            self.capacities(*capacities)
        result = self.analyze(target, dataset, overrides=overrides)
        if result.miss_curve is None:
            raise SessionConfigError(
                "analysis result carries no miss curve (stale payload from an "
                "older schema?); re-run without the store or wipe it"
            )
        return result.miss_curve

    def build_scop(
        self, kernel: str, dataset: str = "mini", *, overrides=None
    ) -> Scop:
        """Instantiate a registered kernel (registry lookup + dataset sizes)."""
        return self._registry.get_kernel(kernel).build(dataset, overrides)

    def __repr__(self) -> str:
        levels = "+".join(str(level.size) for level in self._machine.levels)
        return (
            f"Session(machine={levels}@{self._machine.line_size}B, "
            f"budget={self._budget}, workers={self._workers}, "
            f"store={self._store_path or 'off'}, backend={self._backend})"
        )


class AnalysisRequest:
    """Fluent description of a batch: kernels/scops x datasets x level sets.

    Built by :meth:`Session.kernels` / :meth:`Session.scops`; the cross
    product expands in deterministic row-major order (kernels outermost,
    then datasets, then level sets, then explicit scops), so batch results
    are reproducible regardless of worker count.
    """

    def __init__(self, session: Session) -> None:
        self._session = session
        self._kernels: List[str] = []
        self._scops: List[Scop] = []
        self._datasets: Optional[List[str]] = None
        self._level_sets: Optional[List[Tuple[int, ...]]] = None

    def kernels(self, *names: str) -> "AnalysisRequest":
        """Add kernels by registered name (validated immediately)."""
        for name in names:
            self._session._registry.get_kernel(name)  # raises RegistryError on typos
            self._kernels.append(name)
        return self

    def scops(self, *scops: Scop) -> "AnalysisRequest":
        for scop in scops:
            if not isinstance(scop, Scop):
                raise SessionConfigError(
                    f"scops() takes Scop instances, got {type(scop).__name__}"
                )
            self._scops.append(scop)
        return self

    def datasets(self, *names: str) -> "AnalysisRequest":
        """Dataset classes to sweep (default: each kernel's first dataset)."""
        if not names:
            raise SessionConfigError("datasets() needs at least one dataset name")
        self._datasets = list(names)
        return self

    def levels(self, *level_sets: Union[int, Iterable[int]]) -> "AnalysisRequest":
        """Cache-hierarchy sweeps: each argument is one set of level sizes in
        bytes (default: the session machine's hierarchy)."""
        if not level_sets:
            raise SessionConfigError("levels() needs at least one level set")
        self._level_sets = [_coerce_levels(levels) for levels in level_sets]
        return self

    def specs(self) -> List[JobSpec]:
        """Expand the request into :class:`JobSpec` records (validating it)."""
        if not self._kernels and not self._scops:
            raise SessionConfigError(
                "nothing to analyse: add kernels(...) or scops(...) before running"
            )
        session = self._session
        level_sets = self._level_sets or [
            tuple(level.size for level in session.machine_model.levels)
        ]
        specs: List[JobSpec] = []
        for name in self._kernels:
            entry = session._registry.get_kernel(name)
            datasets = self._datasets or [entry.datasets[0]]
            # Builtins and entry-point plugins re-resolve by name inside pool
            # workers, but a kernel registered programmatically in *this*
            # process (source "user", or "file:*" from the kernel frontend)
            # is invisible to spawn-started workers — ship the built scop in
            # the spec so multi-worker runs stay platform-independent
            # (single-worker runs keep building lazily in the inline path).
            ship_scop = (
                entry.source != "builtin"
                and not entry.source.startswith("plugin")
                and session.worker_count > 1
            )
            for dataset in datasets:
                if dataset not in entry.datasets:
                    raise SessionConfigError(
                        f"kernel {name!r} has no dataset {dataset!r}; "
                        f"available: {', '.join(entry.datasets)}"
                    )
                scop = entry.build(dataset) if ship_scop else None
                for levels in level_sets:
                    specs.append(session.job_spec(name, dataset, scop=scop, levels=levels))
        for scop in self._scops:
            for levels in level_sets:
                specs.append(session.job_spec(scop.name, scop=scop, levels=levels))
        return specs

    def run(
        self,
        *,
        progress: Optional[Callable[[JobRecord, int, int], None]] = None,
        error_policy: str = "continue",
    ) -> BatchResult:
        """Run the request through the session's worker pool."""
        return self._session.run(self.specs(), progress=progress, error_policy=error_policy)

    def run_iter(
        self,
        *,
        progress: Optional[Callable[[JobRecord, int, int], None]] = None,
        error_policy: str = "continue",
    ) -> Iterator[JobRecord]:
        """Stream records as they complete (see :meth:`BatchEngine.run_iter`)."""
        return self._session.run_iter(
            self.specs(), progress=progress, error_policy=error_policy
        )

    def __repr__(self) -> str:
        parts = [f"kernels={self._kernels!r}"]
        if self._scops:
            parts.append(f"scops={[scop.name for scop in self._scops]!r}")
        if self._datasets:
            parts.append(f"datasets={self._datasets!r}")
        if self._level_sets:
            parts.append(f"levels={self._level_sets!r}")
        return f"AnalysisRequest({', '.join(parts)})"
