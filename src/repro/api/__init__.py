"""Public API façade: sessions, fluent analysis requests, registries.

This package is the stable entry point for programmatic use::

    from repro.api import Session

    result = Session().machine("paper-xeon").analyze("gemm", "mini")

    batch = Session().workers(4).kernels("gemm", "atax").datasets("mini").run()

See :mod:`repro.api.session` for the façade and :mod:`repro.api.registry`
for the pluggable kernel/machine registries (``@register_kernel``,
``@register_machine``, entry-point discovery).
"""

from . import registry
from ..engine.batch import JobError
from .registry import RegistryError, register_kernel, register_machine
from .session import AnalysisRequest, Session, SessionConfigError

__all__ = [
    "AnalysisRequest",
    "JobError",
    "RegistryError",
    "Session",
    "SessionConfigError",
    "register_kernel",
    "register_machine",
    "registry",
]
