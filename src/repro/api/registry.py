"""Pluggable kernel and machine registries behind the :mod:`repro.api` façade.

Historically the PolyBench suite lived in a hardcoded ``KERNELS`` dict that
every consumer imported directly; machine models were rebuilt ad hoc from CLI
flags.  This module replaces both with first-class registries:

* :func:`register_kernel` / :func:`register_machine` — decorators (or plain
  calls) that add entries under a stable name.  Builtins register themselves
  on first use (the PolyBench suite and the named machine presets).
* entry-point discovery — third-party distributions can contribute kernels
  and machines by declaring ``importlib.metadata`` entry points in the
  :data:`KERNEL_GROUP` / :data:`MACHINE_GROUP` groups; they are loaded once,
  lazily, and a broken plugin degrades to a warning instead of breaking the
  host application.

The registry itself has no heavy imports: builtins are pulled in lazily so
``repro.scop.polybench`` can register its kernels here without an import
cycle.
"""

from __future__ import annotations

import difflib
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "KERNEL_GROUP",
    "MACHINE_GROUP",
    "KernelEntry",
    "MachineEntry",
    "RegistryError",
    "add_kernel",
    "add_machine",
    "dataset_names",
    "discover_plugins",
    "get_kernel",
    "get_machine",
    "kernel_entries",
    "kernel_names",
    "machine_entries",
    "machine_names",
    "register_kernel",
    "register_machine",
    "resolve_machine",
]

#: Entry-point group a distribution uses to contribute kernels.  Each entry
#: point's name is the kernel name; loading it must yield a builder callable
#: ``builder(sizes: Dict[str, int]) -> Scop`` (an optional ``datasets``
#: attribute on the builder maps dataset-class names to size dicts).
KERNEL_GROUP = "repro_haystack.kernels"

#: Entry-point group for machine models: the entry name is the machine name
#: and loading it must yield a zero-argument factory returning a
#: :class:`repro.core.MachineModel`.
MACHINE_GROUP = "repro_haystack.machines"


class RegistryError(KeyError):
    """Unknown name or conflicting registration."""

    def __str__(self) -> str:  # KeyError repr-quotes its argument
        return self.args[0] if self.args else ""


def suggest(name: str, known: Iterable[str]) -> str:
    """``"; did you mean 'x'?"`` for the closest registered name, or ``""``.

    Shared by every unknown-kernel/-dataset/-machine error path so typos
    fail with a one-line hint instead of a bare listing.
    """
    matches = difflib.get_close_matches(name, list(known), n=1, cutoff=0.5)
    return f"; did you mean {matches[0]!r}?" if matches else ""


@dataclass(frozen=True)
class KernelEntry:
    """One registered kernel: a named builder plus its dataset classes."""

    name: str
    #: ``builder(sizes) -> Scop`` where ``sizes`` maps parameter names to ints.
    builder: Callable
    datasets: Tuple[str, ...] = ("mini",)
    #: ``sizes_for(dataset) -> Dict[str, int]`` resolving a dataset class to
    #: the builder's size parameters.
    sizes_for: Callable[[str], Dict[str, int]] = field(default=lambda dataset: {}, repr=False)
    #: Where the entry came from: ``"builtin"``, ``"user"``, or ``"plugin:<dist>"``.
    source: str = "user"

    def build(self, dataset: str = "mini", overrides: Optional[Mapping[str, int]] = None):
        """Instantiate the kernel for one dataset class (plus size overrides)."""
        if dataset not in self.datasets:
            raise RegistryError(
                f"kernel {self.name!r} has no dataset {dataset!r}"
                f"{suggest(dataset, self.datasets)} "
                f"(available: {', '.join(self.datasets)})"
            )
        sizes = dict(self.sizes_for(dataset))
        if overrides:
            sizes.update(overrides)
        return self.builder(sizes)


@dataclass(frozen=True)
class MachineEntry:
    """One registered machine model: a named zero-argument factory."""

    name: str
    factory: Callable = field(repr=False)
    description: str = ""
    source: str = "user"

    def build(self):
        return self.factory()


_KERNELS: Dict[str, KernelEntry] = {}
_MACHINES: Dict[str, MachineEntry] = {}
_BUILTINS_LOADED = False
_PLUGINS_LOADED = False


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def add_kernel(entry: KernelEntry, *, replace: bool = False) -> KernelEntry:
    """Add a fully built :class:`KernelEntry` (decorator-free registration)."""
    if not replace and entry.name in _KERNELS:
        existing = _KERNELS[entry.name]
        raise RegistryError(
            f"kernel {entry.name!r} is already registered (source: {existing.source}); "
            "pass replace=True to override"
        )
    _KERNELS[entry.name] = entry
    return entry


def add_machine(entry: MachineEntry, *, replace: bool = False) -> MachineEntry:
    if not replace and entry.name in _MACHINES:
        existing = _MACHINES[entry.name]
        raise RegistryError(
            f"machine {entry.name!r} is already registered (source: {existing.source}); "
            "pass replace=True to override"
        )
    _MACHINES[entry.name] = entry
    return entry


def register_kernel(
    name: str,
    builder: Optional[Callable] = None,
    *,
    datasets: Optional[Mapping[str, Mapping[str, int]]] = None,
    source: str = "user",
    replace: bool = False,
):
    """Register ``builder`` as a kernel; usable as a decorator.

    ``datasets`` maps dataset-class names to the size parameters handed to
    the builder; omitted, the kernel gets a single parameter-less ``"mini"``
    dataset.  Dataset order is preserved.

    ::

        @register_kernel("axpy", datasets={"mini": {"N": 64}, "small": {"N": 256}})
        def axpy(sizes):
            ...
            return builder.build()
    """

    def apply(builder: Callable) -> Callable:
        source_mapping = {"mini": {}} if datasets is None else datasets
        mapping = {key: dict(value) for key, value in source_mapping.items()}
        if not mapping:
            raise RegistryError(f"kernel {name!r} must declare at least one dataset")
        add_kernel(
            KernelEntry(
                name=name,
                builder=builder,
                datasets=tuple(mapping),
                sizes_for=lambda dataset: dict(mapping[dataset]),
                source=source,
            ),
            replace=replace,
        )
        return builder

    if builder is None:
        return apply
    return apply(builder)


def register_machine(
    name: str,
    factory: Optional[Callable] = None,
    *,
    description: str = "",
    source: str = "user",
    replace: bool = False,
):
    """Register a zero-argument :class:`MachineModel` factory; decorator-friendly."""

    def apply(factory: Callable) -> Callable:
        add_machine(
            MachineEntry(name=name, factory=factory, description=description, source=source),
            replace=replace,
        )
        return factory

    if factory is None:
        return apply
    return apply(factory)


# ----------------------------------------------------------------------
# Builtin + plugin population
# ----------------------------------------------------------------------
def _ensure_ready() -> None:
    """Load builtin registrations and discover plugins (once each)."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        # Importing these modules runs their registration side effects; the
        # flag is set first because polybench re-enters through add_kernel.
        from ..scop import polybench  # noqa: F401
        from . import machines  # noqa: F401
    discover_plugins()


def _iter_entry_points(group: str):
    """All installed entry points of ``group`` (separate for test patching)."""
    from importlib import metadata

    return list(metadata.entry_points(group=group))


def _plugin_source(entry_point) -> str:
    dist = getattr(entry_point, "dist", None)
    dist_name = getattr(dist, "name", None) if dist is not None else None
    return f"plugin:{dist_name}" if dist_name else "plugin"


def discover_plugins(*, force: bool = False) -> List[str]:
    """Load kernels/machines contributed via entry points; returns new names.

    Runs once per process unless ``force`` is set.  A plugin that fails to
    load, or that collides with an existing name, is skipped with a
    ``RuntimeWarning`` — a broken third-party distribution must not take the
    host application down with it.
    """
    global _PLUGINS_LOADED
    if _PLUGINS_LOADED and not force:
        return []
    _PLUGINS_LOADED = True
    loaded: List[str] = []
    for entry_point in _iter_entry_points(KERNEL_GROUP):
        try:
            builder = entry_point.load()
            datasets = getattr(builder, "datasets", None) or {"mini": {}}
            register_kernel(
                entry_point.name, builder, datasets=datasets, source=_plugin_source(entry_point)
            )
            loaded.append(f"kernel:{entry_point.name}")
        except Exception as exc:  # noqa: BLE001 - plugin isolation is the contract
            warnings.warn(
                f"skipping kernel plugin {entry_point.name!r}: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    for entry_point in _iter_entry_points(MACHINE_GROUP):
        try:
            factory = entry_point.load()
            register_machine(entry_point.name, factory, source=_plugin_source(entry_point))
            loaded.append(f"machine:{entry_point.name}")
        except Exception as exc:  # noqa: BLE001
            warnings.warn(
                f"skipping machine plugin {entry_point.name!r}: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return loaded


# ----------------------------------------------------------------------
# Lookup
# ----------------------------------------------------------------------
def kernel_names() -> List[str]:
    _ensure_ready()
    return sorted(_KERNELS)


def kernel_entries() -> List[KernelEntry]:
    _ensure_ready()
    return [_KERNELS[name] for name in sorted(_KERNELS)]


def get_kernel(name: str) -> KernelEntry:
    _ensure_ready()
    try:
        return _KERNELS[name]
    except KeyError:
        raise RegistryError(
            f"unknown kernel {name!r}{suggest(name, _KERNELS)} "
            f"(available: {', '.join(sorted(_KERNELS))})"
        ) from None


def dataset_names() -> List[str]:
    """Union of the dataset classes of every registered kernel."""
    _ensure_ready()
    names = {dataset for entry in _KERNELS.values() for dataset in entry.datasets}
    return sorted(names)


def machine_names() -> List[str]:
    _ensure_ready()
    return sorted(_MACHINES)


def machine_entries() -> List[MachineEntry]:
    _ensure_ready()
    return [_MACHINES[name] for name in sorted(_MACHINES)]


def get_machine(name: str) -> MachineEntry:
    _ensure_ready()
    try:
        return _MACHINES[name]
    except KeyError:
        raise RegistryError(
            f"unknown machine {name!r}{suggest(name, _MACHINES)} "
            f"(available: {', '.join(sorted(_MACHINES))})"
        ) from None


def resolve_machine(spec):
    """A :class:`MachineModel` from a registry name or a model instance."""
    from ..core.config import MachineModel

    if isinstance(spec, MachineModel):
        return spec
    if isinstance(spec, str):
        return get_machine(spec).build()
    raise TypeError(
        f"machine must be a registry name or a MachineModel, got {type(spec).__name__}"
    )
