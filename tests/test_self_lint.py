"""The self-lint gate (tools/self_lint.py) runs green in tier-1 too.

CI runs the tool as a standalone job; this test keeps the same guarantees
inside ``pytest`` so a regression is caught before push: golden and
registered kernels lint clean, and every seeded-mutation kernel fires
exactly its documented diagnostic.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "self_lint", ROOT / "tools" / "self_lint.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("self_lint", module)
    spec.loader.exec_module(module)
    return module


def test_golden_corpus_lints_clean():
    tool = _load_tool()
    errors = []
    checked = tool.lint_golden(errors)
    assert checked >= 3  # gemm, trisolv, jacobi-2d at their datasets
    assert errors == []


def test_registered_kernels_lint_clean():
    tool = _load_tool()
    errors = []
    checked = tool.lint_registered(errors)
    assert checked >= 30  # the PolyBench suite across its dataset classes
    assert errors == []


def test_broken_corpus_fires_exactly_the_seeded_diagnostics():
    tool = _load_tool()
    errors = []
    checked = tool.lint_broken(errors)
    assert checked == 3  # oob, dead, sched
    assert errors == []


def test_doctored_expectation_is_caught(tmp_path, monkeypatch):
    """The gate actually gates: a wrong directive must be reported."""
    tool = _load_tool()
    broken = tmp_path / "broken"
    broken.mkdir()
    source = (tool.BROKEN_DIR / "oob.knl").read_text(encoding="utf-8")
    (broken / "oob.knl").write_text(
        source.replace("# expect: OOB error @ 18:12", "# expect: OOB error @ 1:1"),
        encoding="utf-8",
    )
    monkeypatch.setattr(tool, "BROKEN_DIR", broken)
    errors = []
    tool.lint_broken(errors)
    assert errors and "expected OOB error @ 1:1" in errors[0]
