"""Miss-curve subsystem: one counting pass, every cache size.

Covers the :class:`~repro.core.MissCurve` container, the symbolic curve
builder (:meth:`~repro.core.CapacityCounter.count_curve` — parametric
capacity counting with per-capacity fallback), the trace-derived exact
curves of both concrete backends, and the Session/CLI/JobSpec threading.

The headline properties (hypothesis):

* ``misses_at`` is monotonically non-increasing in the capacity;
* at every built breakpoint the curve is byte-identical to a per-capacity
  :meth:`~repro.core.CapacityCounter.count_misses` run (symbolic path) and
  to the brute-force distance count (concrete path, both backends), for the
  PolyBench smoke kernels.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Session
from repro.api.session import SessionConfigError
from repro.cli import main
from repro.core import (
    CacheLevelSpec,
    CacheModel,
    CapacityCounter,
    MachineModel,
    MissCurve,
    ModelOptions,
)
from repro.core.distance import StackDistanceAnalysis
from repro.core.results import ModelResult
from repro.engine.cache import CardinalityCache
from repro.scop import ScopBuilder
from repro.scop.polybench import build_kernel
from repro.simulator import StackDistanceProfiler, TraceGenerator, numpy_available

SMOKE_KERNELS = ("gemm", "atax", "bicg", "mvt", "trisolv", "jacobi-1d")

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")

#: Backends whose trace-derived curves must agree bit for bit.
BACKENDS = ("python",) + (("numpy",) if numpy_available() else ())


def _matvec(n=10):
    """Element size == line size keeps the symbolic pipeline fast and the
    curve non-trivial (three distinct reuse distances)."""
    builder = ScopBuilder("matvec", context={"N": n}, element_size=64)
    A = builder.array("A", (n, n))
    x = builder.array("x", (n,))
    y = builder.array("y", (n,))
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, n):
            builder.stmt(
                reads=[A[builder.v("i"), builder.v("j")], y[builder.v("j")], x[builder.v("i")]],
                writes=[x[builder.v("i")]],
            )
    return builder.build()


def _machine(levels=(1024,), line_size=64):
    return MachineModel(
        line_size=line_size,
        levels=tuple(CacheLevelSpec(size, f"L{i + 1}") for i, size in enumerate(levels)),
    )


# ----------------------------------------------------------------------
# MissCurve container
# ----------------------------------------------------------------------
class TestMissCurve:
    def test_breakpoint_table_is_validated(self):
        with pytest.raises(ValueError):
            MissCurve(64, 10, 2, (1, 4), (5, 1))  # must start at 0
        with pytest.raises(ValueError):
            MissCurve(64, 10, 2, (0, 4, 4), (5, 3, 1))  # strictly ascending
        with pytest.raises(ValueError):
            MissCurve(64, 10, 2, (0, 4), (3, 5))  # counts must not rise
        with pytest.raises(ValueError):
            MissCurve(64, 10, 2, (0, 4), (5, -1))  # non-negative
        with pytest.raises(ValueError):
            MissCurve(64, 10, 2, (0, 4), (5,))  # parallel arrays
        with pytest.raises(ValueError):
            MissCurve(0, 10, 2, (0,), (5,))  # line size

    def test_misses_at_snaps_down_between_breakpoints(self):
        curve = MissCurve(64, 100, 10, (0, 8, 32), (90, 40, 0))
        assert curve.misses_at(0) == 90
        assert curve.misses_at(7) == 90  # snap down to breakpoint 0
        assert curve.misses_at(8) == 40
        assert curve.misses_at(31) == 40
        assert curve.misses_at(32) == 0
        assert curve.misses_at(10_000) == 0
        assert curve.total_misses_at(8) == 50
        assert curve.miss_ratio_at(8) == pytest.approx(0.5)
        assert curve.misses_at_bytes(8 * 64) == 40
        assert curve.misses_at_bytes(1) == 90  # sub-line sizes clamp to 1 line
        assert curve.is_breakpoint(8) and not curve.is_breakpoint(9)
        with pytest.raises(ValueError):
            curve.misses_at(-1)

    def test_round_trip_and_schema_guard(self):
        curve = MissCurve(64, 100, 10, (0, 8, 32), (90, 40, 0), exact=True)
        clone = MissCurve.from_dict(curve.to_dict())
        assert clone == curve
        newer = dict(curve.to_dict(), schema_version=99)
        with pytest.raises(ValueError):
            MissCurve.from_dict(newer)

    @given(
        histogram=st.dictionaries(
            st.integers(min_value=1, max_value=120), st.integers(min_value=1, max_value=40),
            max_size=16,
        ),
        compulsory=st.integers(min_value=0, max_value=10),
        capacity=st.integers(min_value=0, max_value=150),
    )
    @settings(max_examples=60, deadline=None)
    def test_histogram_curve_matches_brute_force(self, histogram, compulsory, capacity):
        full = dict(histogram)
        if compulsory:
            full[None] = compulsory
        curve = MissCurve.from_histogram(full, line_size=64)
        assert curve.accesses == compulsory + sum(histogram.values())
        assert curve.compulsory == compulsory
        assert curve.exact
        expected = sum(count for distance, count in histogram.items() if distance > capacity)
        assert curve.misses_at(capacity) == expected
        # Monotone non-increasing across the whole table.
        assert all(b <= a for a, b in zip(curve.counts, curve.counts[1:]))


# ----------------------------------------------------------------------
# Symbolic curve builder (count_curve)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def matvec_distances():
    scop = _matvec(10)
    return StackDistanceAnalysis(scop, line_size=64).analyze()


class TestCountCurve:
    def test_grid_is_validated(self, matvec_distances):
        counter = CapacityCounter(matvec_distances[0].access.statement.loop_vars)
        pieces = matvec_distances[0].pieces
        with pytest.raises(ValueError):
            counter.count_curve(pieces, [])
        with pytest.raises(ValueError):
            counter.count_curve(pieces, [4, 2])
        with pytest.raises(ValueError):
            counter.count_curve(pieces, [2, 2])
        with pytest.raises(ValueError):
            counter.count_curve(pieces, [-1, 2])

    @given(
        capacities=st.lists(
            st.integers(min_value=0, max_value=256), min_size=1, max_size=12, unique=True
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_curve_identical_to_per_capacity_counts(self, matvec_distances, capacities):
        grid = sorted(capacities)
        cache = CardinalityCache()
        for access_distances in matvec_distances:
            counter = CapacityCounter(
                access_distances.access.statement.loop_vars, cardinality_cache=cache
            )
            curve = counter.count_curve(access_distances.pieces, grid)
            reference = [
                counter.count_misses(access_distances.pieces, capacity) for capacity in grid
            ]
            assert curve == reference
            assert all(b <= a for a, b in zip(curve, curve[1:]))

    def test_free_parameter_degrades_to_fallback_like_count_misses(self):
        """A piece with a free variable outside loop_vars must raise
        ModelFallbackRequired from count_curve exactly like count_misses —
        never a raw KeyError out of the parametric chamber evaluation."""
        from repro.core.distance import DistancePiece
        from repro.core.prevmap import ModelFallbackRequired
        from repro.isl.constraints import ConstraintSystem, ge
        from repro.isl.qpoly import QPoly

        i = QPoly.variable("i")
        n = QPoly.variable("N")  # free parameter: not a loop variable
        domain = ConstraintSystem([ge(i, 0), ge(n - i - 1, 0)])
        piece = DistancePiece(domain, i + 1)
        counter = CapacityCounter(["i"])
        with pytest.raises(ModelFallbackRequired):
            counter.count_misses([piece], 4)
        with pytest.raises(ModelFallbackRequired):
            counter.count_curve([piece], [0, 4, 16])

    def test_bound_subpiece_chambers_are_not_memoized(self, matvec_distances):
        """Partial-enumeration bound pieces are fresh objects per replay, so
        memoizing their chambers would only pin memory (the review of the
        MAX_CACHED_ENUMERATION guard); memoize=False must skip the cache."""
        affine = [
            (access.access.statement.loop_vars, piece)
            for access in matvec_distances
            for piece in access.pieces
            if piece.polynomial.is_affine() and not piece.polynomial.is_constant()
        ]
        assert affine, "matvec must produce affine non-constant distance pieces"
        loop_vars, piece = affine[0]
        counter = CapacityCounter(loop_vars)
        chambers = counter._parametric_chambers(piece, memoize=False)
        assert chambers is not None
        assert counter._chamber_cache == {}
        assert counter._parametric_chambers(piece) is not None
        assert len(counter._chamber_cache) == 1

    def test_parametric_path_is_exercised(self, matvec_distances):
        """The one-count-per-piece parametric fast path must actually run
        (otherwise the curve silently degrades to per-capacity counting)."""
        parametric = 0
        for access_distances in matvec_distances:
            counter = CapacityCounter(access_distances.access.statement.loop_vars)
            counter.count_curve(access_distances.pieces, [0, 3, 9, 27, 81])
            parametric += counter.stats.parametric_pieces
        assert parametric > 0


# ----------------------------------------------------------------------
# Model integration: one pass feeds levels and curve on both pipelines
# ----------------------------------------------------------------------
class TestModelCurve:
    def test_symbolic_levels_are_curve_samples(self):
        scop = _matvec(10)
        machine = _machine((4 * 64, 64 * 64))
        sweep = tuple(64 * lines for lines in (1, 2, 3, 5, 9, 17, 33, 65))
        result = CacheModel(machine, ModelOptions(curve_capacities=sweep)).analyze(scop)
        assert not result.used_fallback
        curve = result.miss_curve
        assert curve is not None and not curve.exact
        assert curve.accesses == result.accesses
        assert curve.compulsory == result.level_results[0].compulsory
        for index, lines in enumerate(machine.capacities_in_lines()):
            assert curve.misses_at(lines) == result.level_results[index].capacity
        # Every breakpoint agrees with the exact trace-derived curve.
        reference = CacheModel(machine, ModelOptions(backend="python")).analyze_by_trace(scop)
        for capacity, count in curve:
            assert reference.miss_curve.misses_at(capacity) == count

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trace_fallback_curve_is_exact_everywhere(self, backend):
        scop = _matvec(8)
        machine = _machine((4 * 64,))
        result = CacheModel(machine, ModelOptions(backend=backend)).analyze_by_trace(scop)
        curve = result.miss_curve
        assert curve is not None and curve.exact
        trace = list(TraceGenerator(scop, line_size=64, padded=True).line_trace())
        distances = StackDistanceProfiler().profile(trace)
        assert curve.accesses == len(trace)
        assert curve.compulsory == sum(1 for d in distances if d is None)
        for capacity in range(0, 70):
            expected = sum(1 for d in distances if d is not None and d > capacity)
            assert curve.misses_at(capacity) == expected

    def test_result_payload_round_trips_curve(self):
        result = CacheModel(_machine((1024,))).analyze(_matvec(6))
        clone = ModelResult.from_dict(result.to_dict())
        assert clone.miss_curve == result.miss_curve
        assert clone.to_dict() == result.to_dict()

    def test_older_payload_without_curve_still_loads(self):
        result = CacheModel(_machine((1024,))).analyze(_matvec(6))
        payload = result.to_dict()
        del payload["miss_curve"]
        payload["schema_version"] = 1
        clone = ModelResult.from_dict(payload)
        assert clone.miss_curve is None
        assert clone.misses() == result.misses()


# ----------------------------------------------------------------------
# The satellite property: PolyBench smoke kernels, both backends
# ----------------------------------------------------------------------
_KERNEL_DISTANCES = {}


def _smoke_distances(kernel):
    """Exact per-access stack distances of one smoke kernel (cached)."""
    if kernel not in _KERNEL_DISTANCES:
        scop = build_kernel(kernel, "mini")
        trace = list(TraceGenerator(scop, line_size=64, padded=True).line_trace())
        _KERNEL_DISTANCES[kernel] = StackDistanceProfiler().profile(trace)
    return _KERNEL_DISTANCES[kernel]


_FALLBACK_CURVES = {}


def _fallback_curve(kernel, backend):
    """Trace-fallback curve of one smoke kernel per backend (cached)."""
    key = (kernel, backend)
    if key not in _FALLBACK_CURVES:
        session = (
            Session().machine((32 * 1024, 256 * 1024)).budget(300).backend(backend).no_store()
        )
        result = session.analyze(kernel, "mini")
        assert result.used_fallback
        _FALLBACK_CURVES[key] = result.miss_curve
    return _FALLBACK_CURVES[key]


@pytest.mark.parametrize("kernel", SMOKE_KERNELS)
@given(capacity=st.integers(min_value=0, max_value=6000))
@settings(max_examples=30, deadline=None)
def test_smoke_kernel_curves_match_per_capacity_counts(kernel, capacity):
    """`misses_at` == the per-capacity count, and monotone, on every backend."""
    distances = _smoke_distances(kernel)
    expected = sum(1 for d in distances if d is not None and d > capacity)
    for backend in BACKENDS:
        curve = _fallback_curve(kernel, backend)
        assert curve.misses_at(capacity) == expected
        if capacity:
            assert curve.misses_at(capacity) <= curve.misses_at(capacity - 1)
    if len(BACKENDS) == 2:
        assert _fallback_curve(kernel, "python") == _fallback_curve(kernel, "numpy")


@pytest.mark.slow
@pytest.mark.parametrize("kernel", ("trisolv", "mvt"))
def test_smoke_kernel_symbolic_curve_matches_count_misses(kernel):
    """Full symbolic pipeline on real PolyBench kernels: the curve equals a
    per-capacity ``count_misses`` sweep breakpoint for breakpoint."""
    scop = build_kernel(kernel, "mini")
    distances = StackDistanceAnalysis(scop, line_size=8).analyze()
    grid = [0, 1, 2, 5, 13, 34, 89, 233, 610, 1597]
    cache = CardinalityCache()
    for access_distances in distances:
        counter = CapacityCounter(
            access_distances.access.statement.loop_vars, cardinality_cache=cache
        )
        curve = counter.count_curve(access_distances.pieces, grid)
        assert curve == [
            counter.count_misses(access_distances.pieces, capacity) for capacity in grid
        ]


# ----------------------------------------------------------------------
# Session and JobSpec threading
# ----------------------------------------------------------------------
class TestSessionCurve:
    def test_capacities_validation(self):
        with pytest.raises(SessionConfigError):
            Session().capacities(0)
        with pytest.raises(SessionConfigError):
            Session().capacities(-64)
        with pytest.raises(SessionConfigError):
            Session().capacities("huge")
        # Floats must be rejected, not silently truncated; bools are not sizes.
        with pytest.raises(SessionConfigError):
            Session().capacities(1000.5)
        with pytest.raises(SessionConfigError):
            Session().capacities(True)

    def test_capacities_flatten_sort_dedupe_and_clear(self):
        session = Session().capacities(4096, [1024, 2048], 1024)
        assert session.model_options().curve_capacities == (1024, 2048, 4096)
        assert session.job_spec("gemm", "mini").curve_capacities == (1024, 2048, 4096)
        session.capacities()
        assert session.model_options().curve_capacities is None
        assert session.job_spec("gemm", "mini").curve_capacities == ()

    def test_miss_curve_resolves_requested_capacities(self):
        curve = (
            Session()
            .machine((4 * 64,))
            .no_store()
            .miss_curve(_matvec(8), capacities=[64, 192, 640])
        )
        for size in (64, 192, 640):
            assert curve.is_breakpoint(max(1, size // 64))

    def test_curve_round_trips_through_the_store(self, tmp_path):
        session = Session().machine((4 * 64,)).store(str(tmp_path / "store"))
        scop = _matvec(8)
        first = session.analyze(scop)
        second = session.analyze(scop)
        assert first.miss_curve is not None
        assert second.miss_curve == first.miss_curve

    def test_sweep_grid_is_part_of_job_identity(self):
        from repro.engine.store import job_digest

        plain = Session().job_spec("gemm", "mini")
        swept = Session().capacities(4096).job_spec("gemm", "mini")
        assert plain.key() != swept.key()
        assert job_digest(plain) != job_digest(swept)

    def test_batch_jobs_carry_the_sweep(self):
        session = Session().machine((1024,)).no_store().capacities(64, 128)
        batch = session.scops(_matvec(6)).run()
        (record,) = batch.records
        assert record.ok and not record.result.used_fallback
        curve = record.result.miss_curve
        assert curve.is_breakpoint(1) and curve.is_breakpoint(2)


# ----------------------------------------------------------------------
# CLI: the curve subcommand and eager backend validation
# ----------------------------------------------------------------------
FAST = ["--budget", "200", "--no-store"]


class TestCurveCli:
    def test_curve_table(self, capsys):
        assert main(["curve", "gemm", "--dataset", "mini", "--sweep", "64:16K:8", *FAST]) == 0
        out = capsys.readouterr().out
        assert "miss curve over" in out
        assert "exact, from trace fallback" in out

    def test_curve_json_sweep_is_monotone(self, capsys):
        rc = main(
            ["curve", "gemm", "--dataset", "mini", "--json",
             "--capacities", "64,256,1K,4K", *FAST]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["curve"]["exact"] is True
        sweep = payload["sweep"]
        assert [point["capacity_bytes"] for point in sweep] == [64, 256, 1024, 4096]
        misses = [point["capacity_misses"] for point in sweep]
        assert misses == sorted(misses, reverse=True)

    def test_curve_bad_sweep_spec_exits_two(self, capsys):
        assert main(["curve", "gemm", "--sweep", "banana", *FAST]) == 2
        assert "MIN:MAX" in capsys.readouterr().err
        assert main(["curve", "gemm", "--sweep", "4K:1K", *FAST]) == 2
        assert main(["curve", "gemm", "--capacities", "0", *FAST]) == 2

    def test_bad_backend_env_fails_eagerly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        for command in (["model", "gemm", *FAST], ["simulate", "gemm"], ["curve", "gemm", *FAST]):
            assert main(command) == 2
            err = capsys.readouterr().err
            assert "unknown backend 'fortran'" in err
            assert "auto|numpy|python" in err

    def test_bad_backend_env_fails_session_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.raises(SessionConfigError, match="auto\\|numpy\\|python"):
            Session()
