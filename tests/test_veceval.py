"""Cross-validation of the bulk grid evaluator against the scalar reference.

:mod:`repro.isl.veceval` promises byte-identical results to driving
``QPoly.evaluate_int`` / the scalar chamber walk point by point — including
the error cases (non-integral values, unbound variables) and the silent
fallback when int64 could overflow.  Hypothesis generates the polynomials
(negative coefficients, ``floor_div`` terms and all) and grids; every
property is checked under both backends.
"""

from fractions import Fraction

import pytest

from hypothesis import given, settings, strategies as st

from repro.isl import ConstraintSystem, count_points, eq, floor_div, ge, variable
from repro.isl.qpoly import QPoly
from repro.isl.veceval import (
    _INT64_LIMIT,
    _fits_int64,
    _peak_bound,
    evaluate_pieces,
    evaluate_poly,
    numpy_available,
)

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")

VARS = ("i", "j")

coords = st.integers(min_value=-50, max_value=50)
grids = st.lists(st.tuples(coords, coords), min_size=1, max_size=40).map(
    lambda pts: {"i": [p[0] for p in pts], "j": [p[1] for p in pts]}
)


@st.composite
def int_polys(draw):
    """Integer-coefficient quasi-polynomials over ``i``/``j``.

    Integer coefficients keep every value integral by construction, so the
    comparison can use ``evaluate_int`` without filtering; ``floor_div``
    terms (with possibly fractional arguments) exercise the div/mod path.
    """
    poly = QPoly.constant(draw(st.integers(min_value=-9, max_value=9)))
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        coeff = draw(st.integers(min_value=-9, max_value=9))
        base = variable(draw(st.sampled_from(VARS)))
        kind = draw(st.sampled_from(["linear", "square", "cross", "div"]))
        if kind == "square":
            term = base * base
        elif kind == "cross":
            term = variable("i") * variable("j")
        elif kind == "div":
            numerator = draw(st.integers(min_value=-3, max_value=3))
            denominator = draw(st.integers(min_value=2, max_value=5))
            term = floor_div(base * numerator + variable("j"), denominator)
        else:
            term = base
        poly = poly + term * coeff
    return poly


def scalar_values(poly, values):
    length = len(values["i"])
    return [
        poly.evaluate_int({name: seq[k] for name, seq in values.items()})
        for k in range(length)
    ]


class TestEvaluatePoly:
    @needs_numpy
    @given(int_polys(), grids)
    @settings(max_examples=120, deadline=None)
    def test_numpy_matches_scalar_reference(self, poly, values):
        expected = scalar_values(poly, values)
        assert evaluate_poly(poly, values, backend="numpy") == expected
        assert evaluate_poly(poly, values, backend="python") == expected

    def test_triangular_fractional_coefficients_are_exact(self):
        # i*(i+1)/2: fractional coefficients, integral values — the scaled
        # divide-back must be exact at every point, negatives included.
        i = variable("i")
        poly = (i * i + i) * Fraction(1, 2)
        grid = {"i": list(range(-20, 21))}
        expected = [n * (n + 1) // 2 for n in range(-20, 21)]
        for backend in ("python", "numpy") if numpy_available() else ("python",):
            assert evaluate_poly(poly, grid, backend=backend) == expected

    def test_non_integral_value_raises_on_both_backends(self):
        poly = variable("i") * Fraction(1, 2)
        for backend in ("python", "numpy") if numpy_available() else ("python",):
            with pytest.raises(ValueError):
                evaluate_poly(poly, {"i": [2, 3]}, backend=backend)

    def test_unbound_variable_raises_on_both_backends(self):
        poly = variable("i") + variable("missing")
        for backend in ("python", "numpy") if numpy_available() else ("python",):
            with pytest.raises(KeyError):
                evaluate_poly(poly, {"i": [1]}, backend=backend)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            evaluate_poly(variable("i"), {}, backend="python")
        with pytest.raises(ValueError):
            evaluate_poly(variable("i"), {"i": [1, 2], "j": [1]}, backend="python")

    @needs_numpy
    def test_overflow_defers_to_python_and_stays_exact(self):
        # i**4 at |i| ~ 2**16 would overflow the scaled int64 product chain's
        # conservative bound; the numpy backend must fall back and still
        # return the exact unbounded-int answer.
        i = variable("i")
        poly = i * i * i * i
        big = 2**40
        assert not _fits_int64([poly], {"i": big})
        assert _peak_bound(poly, {"i": big}) >= _INT64_LIMIT
        assert evaluate_poly(poly, {"i": [big, -big]}, backend="numpy") == [
            big**4,
            big**4,
        ]

    @needs_numpy
    def test_small_magnitudes_use_int64(self):
        assert _fits_int64([variable("i") * variable("j")], {"i": 10**6, "j": 10**6})


@st.composite
def chamber_pieces(draw):
    """Random piecewise counts: a few (chamber, polynomial) pairs over i/j."""
    pieces = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        constraints = []
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            a = draw(st.integers(min_value=-3, max_value=3))
            b = draw(st.integers(min_value=-3, max_value=3))
            c = draw(st.integers(min_value=-30, max_value=30))
            expr = variable("i") * a + variable("j") * b + c
            constraints.append(
                eq(expr, 0) if draw(st.booleans()) else ge(expr, 0)
            )
        pieces.append((ConstraintSystem(constraints), draw(int_polys())))
    return pieces


class TestEvaluatePieces:
    @needs_numpy
    @given(chamber_pieces(), grids)
    @settings(max_examples=120, deadline=None)
    def test_numpy_matches_python_walk(self, pieces, values):
        reference = evaluate_pieces(pieces, values, backend="python")
        assert evaluate_pieces(pieces, values, backend="numpy") == reference

    def test_empty_pieces_sum_to_zero(self):
        for backend in ("python", "numpy") if numpy_available() else ("python",):
            assert evaluate_pieces([], {"n": [1, 5, 9]}, backend=backend) == [0, 0, 0]

    def test_non_integral_member_polynomial_returns_none(self):
        # The chamber contains the point and its polynomial is non-integral
        # there: both backends must give up identically.
        pieces = [(ConstraintSystem([ge(variable("n"), 0)]), variable("n") * Fraction(1, 2))]
        for backend in ("python", "numpy") if numpy_available() else ("python",):
            assert evaluate_pieces(pieces, {"n": [2, 3]}, backend=backend) is None

    def test_parametric_count_points_round_trip(self):
        # |{i : 0 <= i < n}| counted parametrically, then bulk-evaluated at
        # concrete n — must equal max(n, 0) pointwise on both backends.
        system = ConstraintSystem([ge(variable("i"), 0), ge(variable("n") - variable("i") - 1, 0)])
        chambers = count_points(system, ["i"])
        grid = {"n": list(range(0, 30))}
        expected = list(range(0, 30))
        for backend in ("python", "numpy") if numpy_available() else ("python",):
            assert evaluate_pieces(chambers, grid, backend=backend) == expected
