"""Property-based tests (hypothesis) for the polyhedral substrate."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.isl.constraints import ConstraintSystem, count_points_explicit, eq, ge, le
from repro.isl.counting import cardinality, count_points
from repro.isl.lexopt import evaluate_pieces, lexmax, lexmax_explicit
from repro.isl.qpoly import QPoly, floor_div, power_sum_poly


small_ints = st.integers(min_value=-6, max_value=12)


@given(small_ints, small_ints, small_ints, small_ints)
@settings(max_examples=40, deadline=None)
def test_box_cardinality_matches_enumeration(a, b, c, d):
    cs = ConstraintSystem([ge("i", a), le("i", b), ge("j", c), le("j", d)])
    assert cardinality(cs, ["i", "j"]) == count_points_explicit(cs, ["i", "j"])


@given(small_ints, small_ints, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_triangle_with_stride_matches_enumeration(lo, hi, stride):
    i, j = QPoly.variable("i"), QPoly.variable("j")
    cs = ConstraintSystem([ge("i", lo), le("i", hi), ge("j", 0), le(j * stride, i)])
    assert cardinality(cs, ["i", "j"]) == count_points_explicit(cs, ["i", "j"])


@given(st.integers(min_value=0, max_value=40), st.integers(min_value=2, max_value=9))
@settings(max_examples=40, deadline=None)
def test_div_constraint_cardinality(n, divisor):
    i = QPoly.variable("i")
    cs = ConstraintSystem([ge("i", 0), le("i", n), eq(floor_div(i, divisor), 1)])
    assert cardinality(cs, ["i"]) == count_points_explicit(cs, ["i"])


@given(st.integers(min_value=0, max_value=4), st.integers(min_value=-8, max_value=8), st.integers(min_value=-8, max_value=8))
@settings(max_examples=60, deadline=None)
def test_faulhaber_telescopes(power, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    poly = power_sum_poly(power)
    expected = sum(v ** power for v in range(lo, hi + 1))
    assert poly.evaluate({"n": hi}) - poly.evaluate({"n": lo - 1}) == expected


@given(small_ints, small_ints)
@settings(max_examples=30, deadline=None)
def test_parametric_count_evaluates_correctly(bound, offset):
    """count_{j} {0 <= j <= i, j >= offset} evaluated at i == brute force."""
    j = QPoly.variable("j")
    cs = ConstraintSystem([ge("j", offset), ge("j", 0), le(j, QPoly.variable("i"))])
    pieces = count_points(cs, ["j"])
    i_value = bound
    total = 0
    for domain, poly in pieces:
        holds = True
        for constraint in domain.constraints:
            value = constraint.expr.evaluate({"i": i_value})
            if constraint.kind == "eq":
                holds = holds and value == 0
            else:
                holds = holds and value >= 0
        if holds:
            total += int(poly.evaluate({"i": i_value}))
    expected = len([v for v in range(0, i_value + 1) if v >= offset]) if i_value >= 0 else 0
    assert total == expected


@given(small_ints, small_ints)
@settings(max_examples=30, deadline=None)
def test_lexmax_matches_bruteforce(i_value, n_value):
    """Parametric lexmax of a two-bound set equals the explicit optimum."""
    j = QPoly.variable("j")
    cs = ConstraintSystem([ge("j", 0), le(j, QPoly.variable("i")), le(j, QPoly.variable("n"))])
    pieces = lexmax(cs, ["j"])
    params = {"i": i_value, "n": n_value}
    expected = lexmax_explicit(cs, ["j"], params)
    assert evaluate_pieces(pieces, 1, params) == expected
