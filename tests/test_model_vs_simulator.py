"""Cross-validation: the analytical model must agree exactly with the
fully associative LRU reference (stack-distance profiler).

Most cases use an element size equal to the cache line size, which keeps the
symbolic pipeline free of floor divisions and therefore fast; dedicated cases
exercise the cache-line (8 elements per line) path on tiny kernels.  Larger
line-grained kernels are marked ``slow``.
"""

import pytest

from repro.core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from repro.scop import ScopBuilder
from repro.simulator import StackDistanceProfiler, TraceGenerator

LINE = 64


def reference_counts(scop, cache_sizes, line_size):
    trace = list(TraceGenerator(scop, line_size=line_size).line_trace())
    distances = StackDistanceProfiler().profile(trace)
    results = []
    for size in cache_sizes:
        lines = size // line_size
        compulsory = sum(1 for d in distances if d is None)
        capacity = sum(1 for d in distances if d is not None and d > lines)
        results.append((compulsory, capacity))
    return results


def check_model_against_reference(scop, cache_sizes, line_size=LINE):
    machine = MachineModel(
        line_size=line_size,
        levels=tuple(CacheLevelSpec(size, f"L{i+1}") for i, size in enumerate(sorted(cache_sizes))),
    )
    model = CacheModel(machine, ModelOptions(fallback_to_simulation=False))
    result = model.analyze(scop)
    expected = reference_counts(scop, sorted(cache_sizes), line_size)
    for level, (compulsory, capacity) in enumerate(expected):
        assert result.compulsory(level) == compulsory, (
            f"{scop.name} level {level}: compulsory {result.compulsory(level)} != {compulsory}"
        )
        assert result.capacity(level) == capacity, (
            f"{scop.name} level {level}: capacity {result.capacity(level)} != {capacity}"
        )
    return result


def build_gemm(ni, nj, nk, element_size=LINE):
    b = ScopBuilder("gemm", context={"NI": ni, "NJ": nj, "NK": nk}, element_size=element_size)
    C = b.array("C", (ni, nj))
    A = b.array("A", (ni, nk))
    B = b.array("B", (nk, nj))
    with b.loop("i", 0, ni):
        with b.loop("j", 0, nj):
            b.stmt(reads=[C[b.v("i"), b.v("j")]], writes=[C[b.v("i"), b.v("j")]])
        with b.loop("k", 0, nk):
            with b.loop("j2", 0, nj):
                b.stmt(
                    reads=[A[b.v("i"), b.v("k")], B[b.v("k"), b.v("j2")], C[b.v("i"), b.v("j2")]],
                    writes=[C[b.v("i"), b.v("j2")]],
                )
    return b.build()


def build_copy_kernel(n, element_size=LINE):
    b = ScopBuilder("copy", element_size=element_size)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    with b.loop("i", 0, n):
        b.stmt(reads=[A[b.v("i")]], writes=[B[b.v("i")]])
    return b.build()


def build_transpose(n, m, element_size=LINE):
    b = ScopBuilder("transpose", element_size=element_size)
    A = b.array("A", (n, m))
    B = b.array("B", (m, n))
    with b.loop("i", 0, n):
        with b.loop("j", 0, m):
            b.stmt(reads=[A[b.v("i"), b.v("j")]], writes=[B[b.v("j"), b.v("i")]])
    return b.build()


def build_triangular_sum(n, element_size=LINE):
    b = ScopBuilder("trisum", element_size=element_size)
    A = b.array("A", (n, n))
    s = b.array("s", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i"), upper_inclusive=True):
            b.stmt(reads=[A[b.v("i"), b.v("j")], s[b.v("i")]], writes=[s[b.v("i")]])
    return b.build()


def build_stencil_1d(n, element_size=LINE):
    b = ScopBuilder("stencil1d", element_size=element_size)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    with b.loop("i", 1, n - 1):
        b.stmt(reads=[A[b.v("i") - 1], A[b.v("i")], A[b.v("i") + 1]], writes=[B[b.v("i")]])
    return b.build()


# ----------------------------------------------------------------------
# Element-granularity cases (no floor divisions, fast symbolic path)
# ----------------------------------------------------------------------
def test_copy_kernel_exact():
    check_model_against_reference(build_copy_kernel(40), [4 * LINE, 16 * LINE])


def test_transpose_exact():
    check_model_against_reference(build_transpose(9, 7), [4 * LINE, 16 * LINE])


def test_triangular_exact():
    check_model_against_reference(build_triangular_sum(10), [4 * LINE, 16 * LINE])


def test_stencil_exact():
    check_model_against_reference(build_stencil_1d(24), [2 * LINE, 8 * LINE])


@pytest.mark.slow
def test_gemm_tiny_exact():
    check_model_against_reference(build_gemm(6, 5, 4), [8 * LINE, 48 * LINE])


# ----------------------------------------------------------------------
# Cache-line granularity (8 elements per line): exercises the div paths
# ----------------------------------------------------------------------
def test_copy_kernel_line_granularity_exact():
    check_model_against_reference(build_copy_kernel(16, element_size=8), [2 * LINE, 4 * LINE])


@pytest.mark.slow
def test_gemm_line_granularity_exact():
    check_model_against_reference(build_gemm(6, 9, 5, element_size=8), [4 * LINE, 32 * LINE])
