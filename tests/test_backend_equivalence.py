"""`ModelResult` equivalence between the numpy and python backends.

The acceptance bar of the vectorized backend: across the PolyBench smoke
sweep, ``backend="numpy"`` must produce a ``to_dict`` payload byte-identical
to ``backend="python"`` on every deterministic field (wall-clock
``*_seconds`` entries are the only permitted difference, stripped by
:func:`repro.reporting.equivalence.normalize`).
"""

import pytest

from repro.api import Session
from repro.api.session import SessionConfigError
from repro.reporting.equivalence import diff_payloads, normalize, payloads_equal
from repro.simulator import numpy_available

#: The bench smoke sweep: small enough for the test suite, wide enough to
#: cover init statements, triangular domains, and multi-statement kernels.
SMOKE_KERNELS = ("gemm", "atax", "bicg", "mvt", "trisolv", "jacobi-1d")

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")


def _analyze(kernel: str, backend: str):
    # A small budget trips the symbolic pipeline quickly; the result is the
    # exact trace fallback, which is precisely the code path that differs
    # between the two backends.
    session = (
        Session()
        .machine((32 * 1024, 256 * 1024))
        .budget(500)
        .backend(backend)
        .no_store()
    )
    return session.analyze(kernel, "mini")


@needs_numpy
@pytest.mark.parametrize("kernel", SMOKE_KERNELS)
def test_smoke_sweep_backends_byte_identical(kernel):
    python_payload = _analyze(kernel, "python").to_dict()
    numpy_payload = _analyze(kernel, "numpy").to_dict()
    differences = diff_payloads(normalize(python_payload), normalize(numpy_payload))
    assert not differences, differences
    # The budgeted smoke sweep actually exercises the trace fallback — the
    # code path the backends implement differently.
    assert python_payload["used_fallback"]


def _transpose_scop(n=10, m=9):
    from repro.scop import ScopBuilder

    builder = ScopBuilder("transpose", context={"N": n, "M": m}, element_size=64)
    A = builder.array("A", (n, m))
    B = builder.array("B", (m, n))
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, m):
            builder.stmt(reads=[A[builder.v("i"), builder.v("j")]], writes=[B[builder.v("j"), builder.v("i")]])
    return builder.build()


@needs_numpy
def test_cross_check_runs_on_the_vectorized_reference():
    """cross_check compares the symbolic result against the backend's trace
    reference; with the numpy backend it must still pass (same counts)."""
    session = Session().machine((1024, 8192)).backend("numpy").options(cross_check=True).no_store()
    result = session.analyze(_transpose_scop())
    assert not result.used_fallback


def test_session_rejects_unknown_backend():
    with pytest.raises(SessionConfigError):
        Session().backend("fortran")


def test_session_backend_threads_into_options_and_specs():
    session = Session().backend("python")
    assert session.model_options().backend == "python"
    assert session.job_spec("gemm", "mini").backend == "python"
    assert "backend=python" in repr(session)


def test_backend_not_part_of_job_identity():
    """Both backends produce identical results, so they share memo keys and
    store digests; the backend is run configuration, not job identity."""
    from repro.engine.store import job_digest

    python_spec = Session().backend("python").job_spec("gemm", "mini")
    numpy_spec = Session().job_spec("gemm", "mini")
    assert python_spec.key() == numpy_spec.key()
    assert job_digest(python_spec) == job_digest(numpy_spec)


def test_normalize_strips_only_wall_clock_fields():
    payload = {
        "wall_seconds": 1.5,
        "timing": {"stack_distance_seconds": 0.2, "work_units_charged": 7},
        "jobs": [{"elapsed_seconds": 0.1, "misses": [3, 4]}],
    }
    assert normalize(payload) == {
        "timing": {"work_units_charged": 7},
        "jobs": [{"misses": [3, 4]}],
    }
    assert payloads_equal(payload, {**payload, "wall_seconds": 99.0})
    assert not payloads_equal(payload, {**payload, "jobs": [{"misses": [3, 5]}]})


def test_normalize_strips_wall_clock_derived_ratios():
    """Machine-dependent ratios computed *from* wall times (the bench
    ``speedup``, curve ``sweep_ratio``, ``normalized_wall``) must not fail a
    cross-run diff of bench/trace payloads; miss counts still must."""
    fast = {
        "trace": {"speedup": 44.5, "python_seconds": 0.6, "misses": [10, 2]},
        "curve": {"sweep_ratio": 1.04, "sweep_misses": [9, 7, 0], "counts_match": True},
        "normalized_wall": 12.0,
    }
    slow = {
        "trace": {"speedup": 17.2, "python_seconds": 2.4, "misses": [10, 2]},
        "curve": {"sweep_ratio": 1.71, "sweep_misses": [9, 7, 0], "counts_match": True},
        "normalized_wall": 31.0,
    }
    assert payloads_equal(fast, slow)
    drifted = {**slow, "curve": {**slow["curve"], "sweep_misses": [9, 8, 0]}}
    assert not payloads_equal(fast, drifted)


def test_diff_payloads_reports_paths():
    differences = diff_payloads({"a": [1, 2]}, {"a": [1, 3], "b": 0})
    assert "$.a[1]: 2 != 3" in differences
    assert "$.b: only in right" in differences


def test_equivalence_cli_tool(tmp_path, capsys):
    from repro.reporting.equivalence import main

    left = tmp_path / "left.json"
    right = tmp_path / "right.json"
    left.write_text('{"misses": 3, "elapsed_seconds": 0.5}')
    right.write_text('{"misses": 3, "elapsed_seconds": 0.9}')
    assert main([str(left), str(right)]) == 0
    right.write_text('{"misses": 4, "elapsed_seconds": 0.9}')
    assert main([str(left), str(right)]) == 1
    assert "$.misses" in capsys.readouterr().out
    assert main([str(left)]) == 2
    assert main([str(left), str(tmp_path / "missing.json")]) == 2
