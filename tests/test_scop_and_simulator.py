"""Tests of the SCoP builder, trace generation and cache simulators using the
paper's running example (Figure 2)."""

import pytest

from repro.scop import ScopBuilder
from repro.simulator import (
    CacheLevelConfig,
    DineroSimulator,
    FullyAssociativeLRU,
    SetAssociativeCache,
    StackDistanceProfiler,
    TraceGenerator,
)


def build_paper_example():
    """int M[4]; for i: M[i] = i; for j: sum += M[3-j];"""
    b = ScopBuilder("paper-example", element_size=8)
    M = b.array("M", (4,))
    with b.loop("i", 0, 4):
        b.stmt(writes=[M[b.v("i")]], name="S0")
    with b.loop("j", 0, 4):
        b.stmt(reads=[M[3 - b.v("j")]], name="S1")
    return b.build()


def test_builder_schedules():
    scop = build_paper_example()
    s0 = scop.statement("S0")
    s1 = scop.statement("S1")
    assert s0.schedule == (0, "i", 0)
    assert s1.schedule == (1, "j", 0)
    assert s0.instance_count() == 4
    assert scop.total_accesses() == 8


def test_trace_order_matches_paper():
    scop = build_paper_example()
    trace = list(TraceGenerator(scop, line_size=8).line_trace())
    # One element per line: the trace visits lines 0,1,2,3 then 3,2,1,0.
    assert trace == [0, 1, 2, 3, 3, 2, 1, 0]


def test_stack_distances_match_paper():
    scop = build_paper_example()
    trace = list(TraceGenerator(scop, line_size=8).line_trace())
    distances = StackDistanceProfiler().profile(trace)
    assert distances == [None, None, None, None, 1, 2, 3, 4]


def test_fully_associative_misses_match_paper():
    scop = build_paper_example()
    trace = list(TraceGenerator(scop, line_size=8).line_trace())
    cache = FullyAssociativeLRU(cache_size=16, line_size=8)  # two lines
    for line in trace:
        cache.access_line(line)
    assert cache.stats.compulsory_misses == 4
    assert cache.stats.capacity_misses == 2
    assert cache.stats.hits == 2


def test_larger_cache_has_no_capacity_misses():
    scop = build_paper_example()
    trace = list(TraceGenerator(scop, line_size=8).line_trace())
    cache = FullyAssociativeLRU(cache_size=4 * 8, line_size=8)
    for line in trace:
        cache.access_line(line)
    assert cache.stats.capacity_misses == 0
    assert cache.stats.hits == 4


def test_triangular_domain_builder():
    b = ScopBuilder("tri")
    A = b.array("A", (8, 8))
    with b.loop("i", 0, 8):
        with b.loop("j", 0, b.v("i"), upper_inclusive=True):
            b.stmt(reads=[A[b.v("i"), b.v("j")]])
    scop = b.build()
    assert scop.statements[0].instance_count() == 36


def test_set_associative_direct_mapped_conflicts():
    # Two lines mapping to the same set of a direct-mapped cache conflict.
    cache = SetAssociativeCache(cache_size=2 * 64, line_size=64, associativity=1)
    for _ in range(4):
        cache.access_line(0)
        cache.access_line(2)  # same set as line 0 (2 sets)
    assert cache.stats.hits == 0
    fully = FullyAssociativeLRU(cache_size=2 * 64, line_size=64)
    for _ in range(4):
        fully.access_line(0)
        fully.access_line(2)
    assert fully.stats.hits == 6


def test_out_of_bounds_access_raises():
    b = ScopBuilder("oob")
    A = b.array("A", (4,))
    with b.loop("i", 0, 5):
        b.stmt(reads=[A[b.v("i")]])
    scop = b.build()
    with pytest.raises(IndexError):
        list(TraceGenerator(scop).accesses())
