"""Cross-validation of the NumPy-vectorized backend against the references.

Every building block of :mod:`repro.simulator.vectorized` is checked
bit-for-bit against the per-access implementation it replaces: trace order,
stack distances, histograms, fully associative and set-associative (LRU)
statistics, and the hierarchy simulation behind :class:`DineroSimulator`.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.scop import ScopBuilder
from repro.scop.schedule import tile_scop
from repro.simulator import (
    CacheLevelConfig,
    DineroSimulator,
    FullyAssociativeLRU,
    ReplacementPolicy,
    SetAssociativeCache,
    StackDistanceProfiler,
    TraceGenerator,
    resolve_backend,
    simulate_fully_associative,
)
from repro.simulator.vectorized import (
    BackendUnavailableError,
    distance_histogram,
    fully_associative_stats,
    misses_for_capacity,
    set_associative_stats,
    stack_distances,
    trace_arrays,
)

line_traces = st.lists(st.integers(min_value=0, max_value=24), min_size=0, max_size=250)


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
def test_resolve_backend_auto_prefers_numpy():
    assert resolve_backend("auto") in ("numpy", "python")
    assert resolve_backend("numpy") == "numpy"
    assert resolve_backend("python") == "python"


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_backend("fortran")


def test_resolve_backend_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")
    assert resolve_backend("auto") == "python"
    # An explicit request always wins over the environment.
    assert resolve_backend("numpy") == "numpy"


def test_backend_unavailable_error_without_numpy(monkeypatch):
    # The backend knob lives in repro.isl.veceval; the simulator re-exports it.
    from repro.isl import veceval
    from repro.simulator import vectorized

    monkeypatch.setattr(veceval, "_np", None)
    with pytest.raises(BackendUnavailableError):
        vectorized.resolve_backend("numpy")
    assert vectorized.resolve_backend("auto") == "python"


# ----------------------------------------------------------------------
# Stack distances, histogram, misses
# ----------------------------------------------------------------------
@given(line_traces)
@settings(max_examples=80, deadline=None)
def test_vectorized_distances_match_reference(trace):
    reference = StackDistanceProfiler().profile(trace)
    vectorized = stack_distances(np.asarray(trace, dtype=np.int64)).tolist()
    assert vectorized == [-1 if d is None else d for d in reference]


@given(line_traces)
@settings(max_examples=40, deadline=None)
def test_vectorized_histogram_matches_reference(trace):
    assert distance_histogram(trace) == StackDistanceProfiler().histogram(trace)


@given(line_traces, st.integers(min_value=0, max_value=16))
@settings(max_examples=40, deadline=None)
def test_vectorized_misses_match_reference(trace, capacity):
    assert misses_for_capacity(trace, capacity) == StackDistanceProfiler().misses_for_capacity(trace, capacity)


def test_vectorized_profiler_edge_cases():
    assert stack_distances([]).tolist() == []
    assert distance_histogram([]) == {}
    assert misses_for_capacity([], 4) == (0, 0)
    assert stack_distances([5]).tolist() == [-1]
    assert distance_histogram([3, 3, 3]) == {None: 1, 1: 2}
    assert misses_for_capacity([0, 1, 0, 1], 0) == (2, 2)
    assert misses_for_capacity([0, 1, 0, 1], 2) == (2, 0)


# ----------------------------------------------------------------------
# Cache statistics
# ----------------------------------------------------------------------
@given(line_traces, st.integers(min_value=1, max_value=12))
@settings(max_examples=40, deadline=None)
def test_vectorized_fully_associative_matches_reference(trace, capacity_lines):
    reference = simulate_fully_associative(trace, capacity_lines * 64, 64)
    vectorized = fully_associative_stats(trace, capacity_lines * 64, 64)
    assert vectorized.as_dict() == reference.as_dict()


@given(
    st.lists(st.integers(min_value=0, max_value=63), min_size=0, max_size=300),
    st.sampled_from([(8, 2), (16, 4), (8, 8), (4, 1)]),
)
@settings(max_examples=40, deadline=None)
def test_vectorized_set_associative_matches_reference(trace, geometry):
    lines, ways = geometry
    cache = SetAssociativeCache(lines * 64, 64, ways, policy=ReplacementPolicy.LRU)
    for line in trace:
        cache.access_line(line)
    vectorized = set_associative_stats(trace, lines * 64, 64, ways)
    assert vectorized.as_dict() == cache.stats.as_dict()


def test_vectorized_validates_geometry():
    with pytest.raises(ValueError):
        fully_associative_stats([0], 100, 64)
    with pytest.raises(ValueError):
        set_associative_stats([0], 100, 64, 4)


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------
def _gemm(n=5):
    builder = ScopBuilder("gemm", context={"N": n}, element_size=8)
    C = builder.array("C", (n, n))
    A = builder.array("A", (n, n))
    B = builder.array("B", (n, n))
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, n):
            builder.stmt(reads=[C[builder.v("i"), builder.v("j")]], writes=[C[builder.v("i"), builder.v("j")]])
        with builder.loop("k", 0, n):
            with builder.loop("j2", 0, n):
                builder.stmt(
                    reads=[A[builder.v("i"), builder.v("k")], B[builder.v("k"), builder.v("j2")]],
                    writes=[C[builder.v("i"), builder.v("j2")]],
                )
    return builder.build()


def _triangular(n=7):
    builder = ScopBuilder("tri", context={"N": n}, element_size=8)
    A = builder.array("A", (n, n))
    s = builder.array("s", (n,))
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, builder.v("i"), upper_inclusive=True):
            builder.stmt(reads=[A[builder.v("i"), builder.v("j")], s[builder.v("i")]], writes=[s[builder.v("i")]])
    return builder.build()


@pytest.mark.parametrize("builder", [_gemm, _triangular], ids=["gemm", "triangular"])
@pytest.mark.parametrize("line_size", [8, 64])
@pytest.mark.parametrize("padded", [True, False])
def test_trace_arrays_match_reference(builder, line_size, padded):
    scop = builder()
    reference = list(TraceGenerator(scop, line_size=line_size, padded=padded).accesses())
    arrays = trace_arrays(scop, line_size=line_size, padded=padded)
    assert arrays.addresses.tolist() == [access.address for access in reference]
    assert arrays.sizes.tolist() == [access.size for access in reference]
    assert arrays.is_write.tolist() == [access.is_write for access in reference]
    lines = list(TraceGenerator(scop, line_size=line_size, padded=padded).line_trace())
    assert arrays.line_indices().tolist() == lines


def test_trace_arrays_match_reference_on_tiled_scop():
    """Tiling introduces div constraints in the domains; order must survive."""
    scop = tile_scop(_gemm(6), 4)
    reference = [a.address for a in TraceGenerator(scop, line_size=64).accesses()]
    assert trace_arrays(scop, line_size=64).addresses.tolist() == reference


def test_trace_arrays_bounds_check():
    builder = ScopBuilder("oob", context={"N": 4}, element_size=8)
    A = builder.array("A", (4,))
    with builder.loop("i", 0, 4):
        builder.stmt(reads=[A[builder.v("i") + 1]])
    scop = builder.build()
    with pytest.raises(IndexError):
        trace_arrays(scop, line_size=64)
    with pytest.raises(IndexError):
        list(TraceGenerator(scop, line_size=64).accesses())


# ----------------------------------------------------------------------
# Hierarchy / DineroSimulator backends
# ----------------------------------------------------------------------
def _hierarchy_levels():
    return [
        CacheLevelConfig(cache_size=4 * 64, line_size=64, associativity=None),
        CacheLevelConfig(cache_size=16 * 64, line_size=64, associativity=4),
    ]


def test_dinero_backends_agree():
    scop = _gemm(6)
    python_result = DineroSimulator(_hierarchy_levels(), backend="python").run(scop)
    numpy_result = DineroSimulator(_hierarchy_levels(), backend="numpy").run(scop)
    assert python_result.accesses == numpy_result.accesses
    for reference, vectorized in zip(python_result.levels, numpy_result.levels):
        assert reference.as_dict() == vectorized.as_dict()


@pytest.mark.parametrize("policy", [ReplacementPolicy.TREE_PLRU, ReplacementPolicy.FIFO])
def test_dinero_backends_agree_for_non_stack_policies(policy):
    """Tree-PLRU and FIFO vectorize via stable set grouping + per-set
    replay; both backends must agree exactly, writebacks included."""
    levels = [CacheLevelConfig(cache_size=4 * 64, line_size=64, associativity=2, policy=policy)]
    python_result = DineroSimulator(levels, backend="python").run(_gemm(4))
    numpy_result = DineroSimulator(levels, backend="numpy").run(_gemm(4))
    assert python_result.levels[0].as_dict() == numpy_result.levels[0].as_dict()


def test_dinero_numpy_falls_back_for_prefetch():
    """Prefetch-enabled levels cannot vectorize (replacement state is
    perturbed mid-trace); the numpy backend must fall back and agree."""
    levels = [CacheLevelConfig(cache_size=4 * 64, line_size=64, associativity=2, prefetch_degree=1)]
    assert not DineroSimulator(levels, backend="numpy")._vectorizable()
    python_result = DineroSimulator(levels, backend="python").run(_gemm(4))
    numpy_result = DineroSimulator(levels, backend="numpy").run(_gemm(4))
    assert python_result.levels[0].as_dict() == numpy_result.levels[0].as_dict()


def test_prefetcher_changes_misses_but_not_accesses():
    """A next-line prefetcher perturbs replacement state (miss counts may
    move) without being charged demand accesses."""
    base = [CacheLevelConfig(cache_size=4 * 64, line_size=64, associativity=2)]
    prefetch = [CacheLevelConfig(cache_size=4 * 64, line_size=64, associativity=2, prefetch_degree=2)]
    scop = _gemm(5)
    without = DineroSimulator(base, backend="python").run(scop)
    with_pf = DineroSimulator(prefetch, backend="python").run(scop)
    assert with_pf.levels[0].accesses == without.levels[0].accesses
    assert with_pf.accesses == without.accesses
    assert with_pf.levels[0].misses != without.levels[0].misses


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
        min_size=0,
        max_size=250,
    ),
    st.sampled_from([(8, 2), (16, 4), (4, 1)]),
)
@settings(max_examples=40, deadline=None)
def test_vectorized_writebacks_match_reference(accesses, geometry):
    """Residency-period write-back counting equals the reference dirty-bit
    simulation (flush included) for fully associative and set-assoc LRU."""
    lines, ways = geometry
    trace = [line for line, _ in accesses]
    writes = [is_write for _, is_write in accesses]

    full = FullyAssociativeLRU(lines * 64, 64)
    for line, is_write in accesses:
        full.access_line(line, is_write=is_write)
    full.flush()
    vectorized = fully_associative_stats(trace, lines * 64, 64, is_write=writes)
    assert vectorized.as_dict() == full.stats.as_dict()

    cache = SetAssociativeCache(lines * 64, 64, ways, policy=ReplacementPolicy.LRU)
    for line, is_write in accesses:
        cache.access_line(line, is_write=is_write)
    cache.flush()
    grouped = set_associative_stats(trace, lines * 64, 64, ways, is_write=writes)
    assert grouped.as_dict() == cache.stats.as_dict()


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
        min_size=0,
        max_size=250,
    ),
    st.sampled_from([ReplacementPolicy.FIFO, ReplacementPolicy.TREE_PLRU]),
)
@settings(max_examples=40, deadline=None)
def test_vectorized_policy_stats_match_reference(accesses, policy):
    from repro.simulator.vectorized import set_associative_policy_stats

    cache = SetAssociativeCache(8 * 64, 64, 2, policy=policy)
    for line, is_write in accesses:
        cache.access_line(line, is_write=is_write)
    cache.flush()
    trace = [line for line, _ in accesses]
    writes = [is_write for _, is_write in accesses]
    stats = set_associative_policy_stats(trace, 8 * 64, 64, 2, policy=policy, is_write=writes)
    assert stats.as_dict() == cache.stats.as_dict()


def test_vectorized_agrees_with_lru_inclusion_property():
    """The vectorized stats satisfy the same inclusion property the
    reference does: a larger cache never misses more."""
    trace = [i % 9 for i in range(200)] + [i % 5 for i in range(100)]
    small = fully_associative_stats(trace, 2 * 64, 64)
    large = fully_associative_stats(trace, 8 * 64, 64)
    assert large.misses <= small.misses
    assert small.compulsory_misses == large.compulsory_misses
    cache = FullyAssociativeLRU(2 * 64, 64)
    for line in trace:
        cache.access_line(line)
    assert cache.stats.as_dict() == small.as_dict()
