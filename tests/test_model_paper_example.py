"""End-to-end test of the analytical model on the paper's running example."""

import pytest

from repro.core import CacheModel, MachineModel, ModelOptions
from repro.core.prevmap import PrevMapBuilder
from repro.core.refs import all_access_instances
from repro.scop import ScopBuilder


def build_paper_example():
    b = ScopBuilder("paper-example", element_size=8)
    M = b.array("M", (4,))
    with b.loop("i", 0, 4):
        b.stmt(writes=[M[b.v("i")]], name="S0")
    with b.loop("j", 0, 4):
        b.stmt(reads=[M[3 - b.v("j")]], name="S1")
    return b.build()


def test_prev_map_matches_paper_next_map():
    scop = build_paper_example()
    builder = PrevMapBuilder(scop, line_size=8)
    accesses = all_access_instances(scop)
    s0_access = next(a for a in accesses if a.statement.name == "S0")
    s1_access = next(a for a in accesses if a.statement.name == "S1")

    # S0 writes every element first: no previous access anywhere.
    regions = builder.prev_regions(s0_access)
    assert all(region.is_first_touch for region in regions)

    # S1(j) reads M[3-j], previously written by S0(3-j).
    regions = builder.prev_regions(s1_access)
    defined = [r for r in regions if not r.is_first_touch]
    assert defined, "S1 must have a previous access everywhere"
    for j in range(4):
        covering = [r for r in defined if _holds(r.domain, {"j": j})]
        assert len(covering) == 1, f"j={j} must be covered by exactly one piece"
        region = covering[0]
        assert region.candidate.source.statement.name == "S0"
        values = region.candidate.source_values
        assert len(values) == 1
        assert values[0].evaluate({"j": j}) == 3 - j


def _holds(system, point):
    for constraint in system.constraints:
        value = constraint.expr.evaluate(point)
        if constraint.kind == "eq":
            if value != 0:
                return False
        elif value < 0:
            return False
    return True


def test_model_matches_paper_counts():
    scop = build_paper_example()
    # One element per line, cache of two lines (the paper's example capacity).
    machine = MachineModel(line_size=8, levels=(MachineModel.single_level(16, 8).levels[0],))
    result = CacheModel(machine).analyze(scop)
    assert not result.used_fallback
    assert result.accesses == 8
    assert result.compulsory(0) == 4
    assert result.capacity(0) == 2
    assert result.hits(0) == 2


def test_model_larger_cache_no_capacity_misses():
    scop = build_paper_example()
    machine = MachineModel.single_level(4 * 8, line_size=8)
    result = CacheModel(machine).analyze(scop)
    assert not result.used_fallback
    assert result.compulsory(0) == 4
    assert result.capacity(0) == 0
    assert result.hits(0) == 4


def test_model_cross_check_against_trace():
    scop = build_paper_example()
    machine = MachineModel(
        line_size=8,
        levels=(
            MachineModel.single_level(16, 8).levels[0],
        ),
    )
    options = ModelOptions(cross_check=True)
    CacheModel(machine, options).analyze(scop)
