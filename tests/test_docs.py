"""Documentation consistency: links resolve, code pointers match the source.

``docs/ARCHITECTURE.md`` embeds ``file.py:Symbol`` pointers into the code it
describes; ``tools/check_docs.py`` resolves every one against the tree (and
every relative markdown link against the filesystem) so the docs hard-fail
CI instead of drifting.  These tests run the checker exactly as the CI
``docs`` job does, plus pin its own failure modes.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"

sys.path.insert(0, str(CHECKER.parent))

import check_docs  # noqa: E402


def test_repository_docs_are_clean():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True, cwd=REPO_ROOT
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "docs OK" in result.stdout


def test_checked_files_include_both_docs():
    assert "docs/ARCHITECTURE.md" in check_docs.CHECKED_FILES
    assert "docs/PERFORMANCE.md" in check_docs.CHECKED_FILES
    assert "docs/KERNEL_DSL.md" in check_docs.CHECKED_FILES
    assert "README.md" in check_docs.CHECKED_FILES


def test_broken_link_is_reported(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("See [missing](no/such/file.md) for details.\n")
    problems = check_docs.check_file(doc, tmp_path)
    assert problems == ["doc.md: broken link -> no/such/file.md"]


def test_unresolved_symbol_is_reported(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("class Real:\n    def method(self):\n        pass\n\nVALUE = 1\n")
    doc = tmp_path / "doc.md"
    doc.write_text(
        "`mod.py:Real` and `mod.py:Real.method` and `mod.py:VALUE` resolve;\n"
        "`mod.py:Imagined` does not.\n"
    )
    problems = check_docs.check_file(doc, tmp_path)
    assert problems == ["doc.md: unresolved symbol -> mod.py:Imagined"]


def test_missing_pointer_file_is_reported(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("`gone.py:Symbol`\n")
    problems = check_docs.check_file(doc, tmp_path)
    assert problems == ["doc.md: pointer to missing file -> gone.py:Symbol"]


def test_external_links_and_anchors_are_skipped(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("[a](https://example.com) [b](#section) [c](mailto:x@y.z)\n")
    assert check_docs.check_file(doc, tmp_path) == []


_VALID_KNL = """\
```knl
kernel ok
dataset mini { N = 8 }
array A[N]
S0: { [i] : 0 <= i < N }
    A[i] += A[i]
```
"""


def test_valid_knl_block_passes(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("# t\n\n" + _VALID_KNL)
    assert check_docs.check_file(doc, tmp_path) == []


def test_knl_syntax_error_is_reported_with_line(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# t\n\n```knl\nkernel bad\narray A[8]\nS0: { [i] 0 <= i < 8 }\n    A[i] = 0\n```\n"
    )
    problems = check_docs.check_file(doc, tmp_path)
    assert len(problems) == 1
    # The ':' is missing on line 6 of the markdown file.
    assert "invalid knl block 1 (line 6)" in problems[0]


def test_knl_instantiation_error_is_reported(tmp_path):
    # Parses fine, but N is bound by no dataset: the block must still fail.
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# t\n\n```knl\nkernel bad\narray A[N]\nS0: { [i] : 0 <= i < N }\n    A[i] = 0\n```\n"
    )
    problems = check_docs.check_file(doc, tmp_path)
    assert len(problems) == 1
    assert "unbound parameter" in problems[0]


def test_knl_blocks_check_every_dataset(tmp_path):
    # The first dataset instantiates, the second leaves M unbound.
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# t\n\n```knl\nkernel bad\ndataset a { N = 4, M = 4 }\ndataset b { N = 4 }\n"
        "array A[N][M]\nS0: { [i] : 0 <= i < N }\n    A[i][0] = 0\n```\n"
    )
    problems = check_docs.check_file(doc, tmp_path)
    assert len(problems) == 1
    assert "unbound parameter" in problems[0]
