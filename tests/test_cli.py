"""End-to-end tests of the ``repro-haystack`` command line interface."""

import json
from pathlib import Path

from repro.cli import main
from repro.core.results import ModelResult
from repro.engine import BatchResult
from repro.scop.polybench import kernel_names

#: Tiny symbolic work budget: every PolyBench kernel trips it within a
#: fraction of a second and degrades to the exact trace fallback, which keeps
#: the CLI tests fast while exercising the full pipeline.
FAST = ["--budget", "200"]


class TestList:
    def test_lists_all_kernels(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert printed == kernel_names()


class TestModel:
    def test_model_prints_table(self, capsys):
        assert main(["model", "gemm", "--dataset", "mini", *FAST]) == 0
        out = capsys.readouterr().out
        assert "gemm (mini)" in out
        assert "L1" in out and "fallback used" in out

    def test_model_no_fallback_fails_cleanly(self, capsys):
        rc = main(["model", "gemm", "--dataset", "mini", "--no-fallback", *FAST])
        assert rc == 3
        assert "fallback is disabled" in capsys.readouterr().err

    def test_model_multi_level(self, capsys):
        rc = main(["model", "jacobi-1d", "--dataset", "mini", "--l2", "262144", *FAST])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L2" in out


class TestSimulate:
    def test_simulate_jacobi(self, capsys):
        assert main(["simulate", "jacobi-1d", "--dataset", "mini"]) == 0
        out = capsys.readouterr().out
        assert "trace simulation" in out

    def test_simulate_policy_and_prefetch(self, capsys):
        rc = main(["simulate", "jacobi-1d", "--dataset", "mini",
                   "--associativity", "4", "--policy", "tree-plru",
                   "--prefetch-degree", "1"])
        assert rc == 0
        assert "writebacks" in capsys.readouterr().out

    def test_simulate_policy_requires_associativity(self, capsys):
        rc = main(["simulate", "jacobi-1d", "--dataset", "mini", "--policy", "fifo"])
        assert rc == 2
        assert "--associativity" in capsys.readouterr().err


class TestExplore:
    ARGS = ["explore", "trisolv", "--dataset", "mini", "--no-store",
            "--tiles", "1,2", "--capacities", "1K,32K", *FAST]

    def test_explore_ranks_grid(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "ranked configurations: 4 configs from 2 analyses" in out
        assert "pareto" in out and "table digest" in out

    def test_explore_pareto_limit_and_json(self, capsys):
        assert main([*self.ARGS, "--json", "--pareto"]) == 0
        table = json.loads(capsys.readouterr().out)
        assert table["analyses"] == 2 and table["grid_size"] == 4
        assert all(config["pareto"] for config in table["pareto"])

    def test_explore_bad_axis_spec_exits_two(self, capsys):
        rc = main(["explore", "trisolv", "--tiles", "2:1", "--no-store", *FAST])
        assert rc == 2
        assert "--tiles" in capsys.readouterr().err


class TestCompare:
    def test_compare_agreement_exits_zero(self, capsys):
        rc = main(["compare", "jacobi-1d", "--dataset", "mini", *FAST])
        out = capsys.readouterr().out
        assert "model vs. simulation" in out
        assert rc == 0

    def test_compare_disagreement_exits_one(self, capsys):
        # A direct-mapped simulation has conflict misses the fully
        # associative model cannot predict.
        rc = main(
            ["compare", "trisolv", "--dataset", "mini", "--l1", "1024", "--associativity", "1", *FAST]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "difference" in out


class TestBatch:
    KERNELS = "gemm,atax,bicg,mvt,trisolv,jacobi-1d"

    def test_batch_parallel_matches_sequential(self, tmp_path, capsys):
        sequential_path = tmp_path / "seq.json"
        parallel_path = tmp_path / "par.json"
        assert main(
            ["batch", "--kernels", self.KERNELS, "--jobs", "1", *FAST, "--output", str(sequential_path)]
        ) == 0
        assert main(
            ["batch", "--kernels", self.KERNELS, "--jobs", "4", *FAST, "--output", str(parallel_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "batch: 6 jobs" in out

        def miss_signature(path):
            data = json.loads(path.read_text())
            return [
                (job["kernel"], job["dataset"], job["result"]["levels"])
                for job in data["jobs"]
            ]

        assert miss_signature(parallel_path) == miss_signature(sequential_path)

    def test_batch_json_round_trip(self, tmp_path, capsys):
        output = tmp_path / "results.json"
        rc = main(
            ["batch", "--kernels", "gemm,atax", "--datasets", "mini", "--jobs", "2",
             "--l2", "262144", *FAST, "--output", str(output)]
        )
        assert rc == 0
        capsys.readouterr()
        data = json.loads(output.read_text())
        batch = BatchResult.from_dict(data)
        assert len(batch) == 2 and batch.error_count == 0
        for record, job in zip(batch.records, data["jobs"]):
            clone = ModelResult.from_dict(job["result"])
            assert clone.to_dict() == record.result.to_dict()
            assert [level.name for level in clone.level_results] == ["L1", "L2"]

    def test_batch_rejects_unknown_kernel(self, capsys):
        rc = main(["batch", "--kernels", "gemm,nope"])
        assert rc == 2
        assert "unknown kernels: nope" in capsys.readouterr().err

    def test_batch_rejects_unknown_dataset(self, capsys):
        rc = main(["batch", "--kernels", "gemm", "--datasets", "huge"])
        assert rc == 2
        assert "unknown datasets: huge" in capsys.readouterr().err

    def test_batch_rejects_disabled_l1(self, capsys):
        rc = main(["batch", "--kernels", "gemm", "--l1", "0"])
        assert rc == 2
        assert "--l1 must be a positive size" in capsys.readouterr().err

    def test_batch_rejects_empty_kernels(self, capsys):
        rc = main(["batch", "--kernels", ""])
        assert rc == 2
        assert "no kernels given" in capsys.readouterr().err


class TestStoreFlags:
    def test_model_second_run_served_from_store(self, tmp_path, capsys):
        store = ["--store-path", str(tmp_path / "store")]
        assert main(["model", "gemm", "--dataset", "mini", *FAST, *store]) == 0
        first = capsys.readouterr().out
        assert "store 0 hits / 0 misses" in first
        assert main(["model", "gemm", "--dataset", "mini", *FAST, *store]) == 0
        second = capsys.readouterr().out
        assert "result served from store" in second
        assert "fallback used" in second  # the cached flag round-trips

    def test_model_no_store_prints_disabled(self, capsys):
        assert main(["model", "gemm", "--dataset", "mini", *FAST, "--no-store"]) == 0
        assert "store disabled" in capsys.readouterr().out

    def test_compare_prints_stats_on_fallback_path(self, capsys):
        # The compare summary must carry the cache/store statistics even when
        # the model degraded to the trace fallback.
        rc = main(["compare", "jacobi-1d", "--dataset", "mini", *FAST])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cardinality cache" in out
        assert "work units:" in out
        assert "fallback used" in out

    def test_batch_store_serves_warm_rerun(self, tmp_path, capsys):
        store = ["--store-path", str(tmp_path / "store")]
        argv = ["batch", "--kernels", "gemm,atax", *FAST, *store]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0/2 results served from store" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2/2 results served from store" in warm

    def test_batch_no_store_omits_store_footer(self, capsys):
        assert main(["batch", "--kernels", "gemm", *FAST, "--no-store"]) == 0
        assert "served from store" not in capsys.readouterr().out

    def test_zero_l1_is_a_distinct_store_identity(self, tmp_path, capsys):
        # --l1 0 --l2 N and --l1 N build different machines (L1 always
        # exists); their store digests must differ or the second run would be
        # served the wrong cached hierarchy.
        store = ["--store-path", str(tmp_path / "store")]
        assert main(["model", "gemm", "--dataset", "mini", "--l1", "32768", *FAST, *store]) == 0
        capsys.readouterr()
        assert main(
            ["model", "gemm", "--dataset", "mini", "--l1", "0", "--l2", "32768", *FAST, *store]
        ) == 0
        out = capsys.readouterr().out
        assert "L2" in out
        assert "result served from store" not in out


class TestAnalyze:
    GEMM_KNL = str(Path(__file__).resolve().parent.parent / "examples" / "kernels" / "gemm.knl")

    def test_analyze_golden_gemm(self, capsys):
        assert main(["analyze", self.GEMM_KNL, *FAST, "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "gemm (mini)" in out
        assert "L1" in out

    def test_analyze_explicit_dataset(self, capsys):
        rc = main(["analyze", self.GEMM_KNL, "--dataset", "small", *FAST, "--no-store"])
        assert rc == 0
        assert "gemm (small)" in capsys.readouterr().out

    def test_analyze_curve_json(self, capsys):
        rc = main(
            ["analyze", self.GEMM_KNL, "--curve", "--sweep", "256:4096:4",
             "--json", *FAST, "--no-store"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "gemm"
        assert len(payload["sweep"]) >= 4

    def test_analyze_compare(self, capsys):
        rc = main(["analyze", self.GEMM_KNL, "--compare", *FAST, "--no-store"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "model vs. simulation" in out

    def test_analyze_matches_registered_kernel_table(self, capsys):
        # The .knl port and the registered builder kernel must render the
        # exact same table -- same misses, same fallback flags.
        assert main(["analyze", self.GEMM_KNL, *FAST, "--no-store"]) == 0
        from_file = capsys.readouterr().out
        assert main(["model", "gemm", "--dataset", "mini", *FAST, "--no-store"]) == 0
        from_registry = capsys.readouterr().out
        def strip(text):
            # The footer embeds wall-clock time; everything else must match.
            return [line for line in text.splitlines() if "model time" not in line]

        assert strip(from_file) == strip(from_registry)

    def test_analyze_parse_error_has_caret_and_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.knl"
        bad.write_text("kernel bad\narray A[8]\nS0: { [i] 0 <= i < 8 }\n    A[i] = 0\n")
        assert main(["analyze", str(bad), *FAST, "--no-store"]) == 2
        err = capsys.readouterr().err
        assert f"{bad}:3:11:" in err
        assert "^" in err
        assert "Traceback" not in err

    def test_analyze_missing_file_exit_2(self, capsys):
        assert main(["analyze", "no/such/file.knl", *FAST, "--no-store"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_analyze_flag_guards(self, capsys):
        assert main(["analyze", self.GEMM_KNL, "--curve", "--compare"]) == 2
        assert main(["analyze", self.GEMM_KNL, "--json"]) == 2
        assert main(["analyze", self.GEMM_KNL, "--sweep", "1K:8M"]) == 2
        capsys.readouterr()


class TestLint:
    OOB_KNL = "examples/kernels/broken/oob.knl"
    GEMM_KNL = "examples/kernels/gemm.knl"

    def test_clean_kernel_exits_zero(self, capsys):
        assert main(["lint", self.GEMM_KNL, "--no-cost"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_registered_kernel_by_name(self, capsys):
        assert main(["lint", "--kernel", "trisolv", "--dataset", "mini", "--no-cost"]) == 0
        capsys.readouterr()

    def test_broken_kernel_exits_three_with_location(self, capsys):
        assert main(["lint", self.OOB_KNL, "--no-cost"]) == 3
        out = capsys.readouterr().out
        assert "OOB" in out and f"{self.OOB_KNL}:18:12" in out

    def test_json_payload(self, capsys):
        assert main(["lint", self.OOB_KNL, "--no-cost", "--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] >= 1
        assert payload["summary"]["error"] == 1
        oob = [d for d in payload["diagnostics"] if d["code"] == "OOB"]
        assert oob[0]["location"]["line"] == 18 and oob[0]["location"]["col"] == 12

    def test_strict_promotes_warnings(self, capsys):
        dead = "examples/kernels/broken/dead.knl"
        assert main(["lint", dead, "--no-cost"]) == 0
        assert main(["lint", dead, "--no-cost", "--strict"]) == 3
        capsys.readouterr()

    def test_cost_prediction_in_output(self, capsys):
        # A tripping budget is a warning, not an error: exit stays 0.
        assert main(["lint", "--kernel", "gemm", "--budget", "300"]) == 0
        out = capsys.readouterr().out
        assert "COST" in out and "will trip" in out

    def test_unknown_kernel_did_you_mean_exit_2(self, capsys):
        assert main(["lint", "--kernel", "gem", "--no-cost"]) == 2
        assert "did you mean 'gemm'" in capsys.readouterr().err

    def test_unknown_dataset_did_you_mean_exit_2(self, capsys):
        assert main(["lint", "--kernel", "gemm", "--dataset", "mni", "--no-cost"]) == 2
        assert "did you mean 'mini'" in capsys.readouterr().err

    def test_exactly_one_input_required(self, capsys):
        assert main(["lint", "--no-cost"]) == 2
        assert main(["lint", self.GEMM_KNL, "--kernel", "gemm", "--no-cost"]) == 2
        capsys.readouterr()

    def test_parse_error_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.knl"
        bad.write_text("kernel bad\narray A[8]\nS0: { [i] 0 <= i < 8 }\n    A[i] = 0\n")
        assert main(["lint", str(bad), "--no-cost"]) == 2
        assert f"{bad}:3:11:" in capsys.readouterr().err
