"""End-to-end tests of the ``repro-haystack`` command line interface."""

import json

from repro.cli import main
from repro.core.results import ModelResult
from repro.engine import BatchResult
from repro.scop.polybench import kernel_names

#: Tiny symbolic work budget: every PolyBench kernel trips it within a
#: fraction of a second and degrades to the exact trace fallback, which keeps
#: the CLI tests fast while exercising the full pipeline.
FAST = ["--budget", "200"]


class TestList:
    def test_lists_all_kernels(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert printed == kernel_names()


class TestModel:
    def test_model_prints_table(self, capsys):
        assert main(["model", "gemm", "--dataset", "mini", *FAST]) == 0
        out = capsys.readouterr().out
        assert "gemm (mini)" in out
        assert "L1" in out and "fallback used" in out

    def test_model_no_fallback_fails_cleanly(self, capsys):
        rc = main(["model", "gemm", "--dataset", "mini", "--no-fallback", *FAST])
        assert rc == 3
        assert "fallback is disabled" in capsys.readouterr().err

    def test_model_multi_level(self, capsys):
        rc = main(["model", "jacobi-1d", "--dataset", "mini", "--l2", "262144", *FAST])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L2" in out


class TestSimulate:
    def test_simulate_jacobi(self, capsys):
        assert main(["simulate", "jacobi-1d", "--dataset", "mini"]) == 0
        out = capsys.readouterr().out
        assert "trace simulation" in out


class TestCompare:
    def test_compare_agreement_exits_zero(self, capsys):
        rc = main(["compare", "jacobi-1d", "--dataset", "mini", *FAST])
        out = capsys.readouterr().out
        assert "model vs. simulation" in out
        assert rc == 0

    def test_compare_disagreement_exits_one(self, capsys):
        # A direct-mapped simulation has conflict misses the fully
        # associative model cannot predict.
        rc = main(
            ["compare", "trisolv", "--dataset", "mini", "--l1", "1024", "--associativity", "1", *FAST]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "difference" in out


class TestBatch:
    KERNELS = "gemm,atax,bicg,mvt,trisolv,jacobi-1d"

    def test_batch_parallel_matches_sequential(self, tmp_path, capsys):
        sequential_path = tmp_path / "seq.json"
        parallel_path = tmp_path / "par.json"
        assert main(
            ["batch", "--kernels", self.KERNELS, "--jobs", "1", *FAST, "--output", str(sequential_path)]
        ) == 0
        assert main(
            ["batch", "--kernels", self.KERNELS, "--jobs", "4", *FAST, "--output", str(parallel_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "batch: 6 jobs" in out

        def miss_signature(path):
            data = json.loads(path.read_text())
            return [
                (job["kernel"], job["dataset"], job["result"]["levels"])
                for job in data["jobs"]
            ]

        assert miss_signature(parallel_path) == miss_signature(sequential_path)

    def test_batch_json_round_trip(self, tmp_path, capsys):
        output = tmp_path / "results.json"
        rc = main(
            ["batch", "--kernels", "gemm,atax", "--datasets", "mini", "--jobs", "2",
             "--l2", "262144", *FAST, "--output", str(output)]
        )
        assert rc == 0
        capsys.readouterr()
        data = json.loads(output.read_text())
        batch = BatchResult.from_dict(data)
        assert len(batch) == 2 and batch.error_count == 0
        for record, job in zip(batch.records, data["jobs"]):
            clone = ModelResult.from_dict(job["result"])
            assert clone.to_dict() == record.result.to_dict()
            assert [level.name for level in clone.level_results] == ["L1", "L2"]

    def test_batch_rejects_unknown_kernel(self, capsys):
        rc = main(["batch", "--kernels", "gemm,nope"])
        assert rc == 2
        assert "unknown kernels: nope" in capsys.readouterr().err

    def test_batch_rejects_unknown_dataset(self, capsys):
        rc = main(["batch", "--kernels", "gemm", "--datasets", "huge"])
        assert rc == 2
        assert "unknown datasets: huge" in capsys.readouterr().err

    def test_batch_rejects_disabled_l1(self, capsys):
        rc = main(["batch", "--kernels", "gemm", "--l1", "0"])
        assert rc == 2
        assert "--l1 must be a positive size" in capsys.readouterr().err

    def test_batch_rejects_empty_kernels(self, capsys):
        rc = main(["batch", "--kernels", ""])
        assert rc == 2
        assert "no kernels given" in capsys.readouterr().err
