"""The kernel DSL frontend: parsing, desugaring, errors, and round-trips.

Three layers of guarantees:

* **fidelity** — a hand-written `.knl` port of a builder kernel produces a
  *structurally identical* scop (same constraint lists, schedules, ordered
  accesses), not merely an equivalent one;
* **located errors** — every failure is a ``KernelParseError`` carrying
  ``file:line:col`` and a caret snippet, asserted down to the column;
* **round-trip** — ``parse(unparse(scop))`` reproduces the scop for random
  builder programs (hypothesis), including the full analysis payload.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Session
from repro.api.registry import get_kernel
from repro.core import CacheLevelSpec, MachineModel
from repro.frontend import (
    KernelParseError,
    parse_domain,
    parse_kernel,
    parse_kernel_path,
    register_kernel_file,
    unparse,
)
from repro.isl.constraints import EQ, INEQ
from repro.reporting.equivalence import normalize
from repro.isl.qpoly import QPoly
from repro.scop.builder import ScopBuilder
from repro.scop.polybench.linear_algebra import gemm
from repro.scop.polybench.sizes import kernel_sizes


SMALL_MACHINE = MachineModel(line_size=64, levels=(CacheLevelSpec(1024, "L1"),))


def scop_fingerprint(scop):
    """Full structural identity: everything the analysis (and digest) sees."""
    return (
        [(a.name, a.shape, a.element_size) for a in scop.arrays.values()],
        [
            (
                s.name,
                s.loop_vars,
                s.schedule,
                tuple((c.kind, c.expr._canonical_items()) for c in s.domain.constraints),
                tuple(
                    (r.array.name, tuple(i._canonical_items() for i in r.indices), r.is_write)
                    for r in s.accesses
                ),
            )
            for s in scop.statements
        ],
    )


def analysis_payload(scop, budget=500):
    session = Session().machine(SMALL_MACHINE).budget(budget)
    return normalize(session.cache_model().analyze(scop).to_dict())


def parse_error(text):
    with pytest.raises(KernelParseError) as info:
        program = parse_kernel(text)
        program.instantiate(program.dataset_sizes(next(iter(program.datasets))))
    return info.value


# ----------------------------------------------------------------------
# Domains
# ----------------------------------------------------------------------
class TestParseDomain:
    def test_chained_comparisons_desugar_pairwise(self):
        variables, system = parse_domain("{ [i] : 0 <= i < 10 }")
        assert variables == ("i",)
        kinds = [c.kind for c in system.constraints]
        assert kinds == [INEQ, INEQ]
        # i >= 0 and 9 - i >= 0: the builder's half-open normal form.
        assert system.constraints[0].expr.coefficient("i") == 1
        assert system.constraints[1].expr.coefficient("i") == -1
        assert system.constraints[1].expr.constant_value() == 9

    def test_matches_builder_loop_constraints(self):
        b = ScopBuilder("t")
        A = b.array("A", (10,))
        with b.loop("i", 0, 10):
            b.stmt(writes=[A[b.v("i")]])
        built = b.build().statements[0].domain.constraints
        _, system = parse_domain("{ [i] : 0 <= i < 10 }")
        assert [(c.kind, c.expr._canonical_items()) for c in system.constraints] == [
            (c.kind, c.expr._canonical_items()) for c in built
        ]

    def test_equality_and_parameters(self):
        variables, system = parse_domain("{ [i, j] : i == j and 0 <= i < N }")
        assert variables == ("i", "j")
        assert system.constraints[0].kind == EQ
        assert "N" in system.constraints[2].expr.free_variables()

    def test_empty_variable_list_and_no_constraints(self):
        variables, system = parse_domain("{ [] }")
        assert variables == () and system.constraints == []
        variables, system = parse_domain("{ [i] }")
        assert variables == ("i",) and system.constraints == []

    def test_duplicate_variable_rejected(self):
        with pytest.raises(KernelParseError, match="duplicate loop variable 'i'"):
            parse_domain("{ [i, i] : 0 <= i < 4 }")

    def test_division_rejected(self):
        with pytest.raises(KernelParseError, match="division is not allowed"):
            parse_domain("{ [i] : 0 <= i / 2 < 4 }")

    def test_trailing_input_rejected(self):
        with pytest.raises(KernelParseError, match="trailing input"):
            parse_domain("{ [i] : 0 <= i < 4 } garbage")


# ----------------------------------------------------------------------
# Statement bodies: desugaring
# ----------------------------------------------------------------------
def single_statement(body, *, arrays="array A[8]\narray B[8]\narray C[8]"):
    text = f"kernel t\n{arrays}\nS0: {{ [i] : 0 <= i < 8 }}\n    {body}\n"
    program = parse_kernel(text)
    return program.instantiate({}).statements[0]


class TestBodyDesugaring:
    def test_plain_assignment_reads_then_write(self):
        s = single_statement("C[i] = A[i] + B[i]")
        assert [(r.array.name, r.is_write) for r in s.accesses] == [
            ("A", False), ("B", False), ("C", True),
        ]

    def test_augmented_assignment_reads_operands_then_accumulator(self):
        s = single_statement("C[i] += A[i] * B[i]")
        assert [(r.array.name, r.is_write) for r in s.accesses] == [
            ("A", False), ("B", False), ("C", False), ("C", True),
        ]

    @pytest.mark.parametrize("op", ["-=", "*=", "/="])
    def test_all_augmented_ops_desugar_alike(self, op):
        s = single_statement(f"C[i] {op} A[i]")
        assert [(r.array.name, r.is_write) for r in s.accesses] == [
            ("A", False), ("C", False), ("C", True),
        ]

    def test_scalars_and_literals_carry_no_accesses(self):
        s = single_statement("C[i] = alpha * A[i] + 2 * beta")
        assert [(r.array.name, r.is_write) for r in s.accesses] == [
            ("A", False), ("C", True),
        ]

    def test_reads_collected_left_to_right_through_parens(self):
        s = single_statement("C[i] = c * (B[i] + A[i]) - A[i + 1]")
        assert [(r.array.name, r.is_write) for r in s.accesses] == [
            ("B", False), ("A", False), ("A", False), ("C", True),
        ]
        assert s.accesses[2].indices[0].constant_value() == 1

    def test_explicit_access_list_preserved_verbatim(self):
        s = single_statement("access(read C[i], write A[i], read B[i], write C[i])")
        assert [(r.array.name, r.is_write) for r in s.accesses] == [
            ("C", False), ("A", True), ("B", False), ("C", True),
        ]

    def test_empty_access_list(self):
        assert single_statement("access()").accesses == []


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
class TestSchedules:
    def test_default_schedule_gives_each_statement_its_own_nest(self):
        text = (
            "kernel t\narray A[4]\n"
            "S0: { [i] : 0 <= i < 4 }\n    A[i] = 0\n"
            "S1: { [i, j] : 0 <= i < 4 and 0 <= j < 4 }\n    A[i] = A[j]\n"
        )
        scop = parse_kernel(text).instantiate({})
        assert scop.statements[0].schedule == (0, "i", 0)
        assert scop.statements[1].schedule == (1, "i", 0, "j", 0)

    def test_depth_zero_default_schedule(self):
        text = "kernel t\narray A[4]\nS0: { [] }\n    A[0] = 0\n"
        assert parse_kernel(text).instantiate({}).statements[0].schedule == (0, 0)

    def test_explicit_schedule_kept(self):
        text = "kernel t\narray A[8]\nS0: { [i] : 0 <= i < 8 }\n    schedule [3, i, 7]\n    A[i] = 0\n"
        assert parse_kernel(text).instantiate({}).statements[0].schedule == (3, "i", 7)

    def test_schedule_unknown_variable_rejected(self):
        err = parse_error(
            "kernel t\narray A[8]\nS0: { [i] : 0 <= i < 8 }\n    schedule [0, j, 0]\n    A[i] = 0\n"
        )
        assert "not a loop variable" in err.message

    def test_schedule_wrong_order_rejected(self):
        err = parse_error(
            "kernel t\narray A[8]\n"
            "S0: { [i, j] : 0 <= i < 8 and 0 <= j < 8 }\n"
            "    schedule [0, j, 0, i, 0]\n    A[i] = A[j]\n"
        )
        assert "domain order" in err.message

    def test_schedule_adjacent_variables_rejected(self):
        err = parse_error(
            "kernel t\narray A[8]\n"
            "S0: { [i, j] : 0 <= i < 8 and 0 <= j < 8 }\n"
            "    schedule [0, i, j, 0]\n    A[i] = A[j]\n"
        )
        assert "static position" in err.message


# ----------------------------------------------------------------------
# Located errors
# ----------------------------------------------------------------------
class TestErrorLocations:
    def test_unexpected_character_with_position(self):
        err = parse_error("kernel t\narray A[4]\nS0: { [i] : 0 <= i < 4 }\n    A[i] = $\n")
        assert (err.line, err.col) == (4, 12)
        assert "unexpected character" in err.message

    def test_render_includes_caret_under_column(self):
        err = parse_error("kernel t\narray A[4]\nS0: { [i] 0 <= i < 4 }\n    A[i] = 0\n")
        rendered = err.render().split("\n")
        assert rendered[0].startswith("<kernel>:3:11:")
        assert rendered[1] == "    S0: { [i] 0 <= i < 4 }"
        assert rendered[2] == "    " + " " * 10 + "^"

    def test_missing_kernel_header(self):
        assert "must start with 'kernel" in parse_error("array A[4]\n").message

    def test_unterminated_string(self):
        assert "unterminated string" in parse_error('kernel "broken\n').message

    def test_duplicate_statement_name(self):
        err = parse_error(
            "kernel t\narray A[4]\n"
            "S0: { [i] : 0 <= i < 4 }\n    A[i] = 0\n"
            "S0: { [i] : 0 <= i < 4 }\n    A[i] = 1\n"
        )
        assert "duplicate statement 'S0'" in err.message and err.line == 5

    def test_duplicate_dataset_and_parameter(self):
        assert "duplicate dataset" in parse_error(
            "kernel t\ndataset a { N = 1 }\ndataset a { N = 2 }\narray A[4]\nS0: { [] }\n    A[0] = 0\n"
        ).message
        assert "duplicate parameter" in parse_error(
            "kernel t\ndataset a { N = 1, N = 2 }\narray A[4]\nS0: { [] }\n    A[0] = 0\n"
        ).message

    def test_reserved_word_rejected_as_names(self):
        assert "reserved word" in parse_error(
            "kernel t\narray schedule[4]\nS0: { [] }\n    A[0] = 0\n"
        ).message

    def test_bare_scalar_assignment_target_rejected(self):
        err = parse_error("kernel t\narray A[4]\nS0: { [i] : 0 <= i < 4 }\n    x = A[i]\n")
        assert "register scalars" in err.message

    def test_statement_required(self):
        assert "defines no statements" in parse_error("kernel t\narray A[4]\n").message


class TestInstantiationErrors:
    def test_undeclared_array(self):
        err = parse_error("kernel t\nS0: { [i] : 0 <= i < 4 }\n    A[i] = 0\n")
        assert "array 'A' is not declared" in err.message

    def test_rank_mismatch(self):
        err = parse_error("kernel t\narray A[4][4]\nS0: { [i] : 0 <= i < 4 }\n    A[i] = 0\n")
        assert "rank 2" in err.message

    def test_unknown_name_lists_bound_parameters(self):
        err = parse_error(
            "kernel t\ndataset mini { N = 4 }\narray A[N]\nS0: { [i] : 0 <= i < N }\n    A[i] = A[j]\n"
        )
        assert "unknown name(s) j" in err.message and "N" in err.message

    def test_nonaffine_index_after_substitution(self):
        err = parse_error(
            "kernel t\narray A[16]\nS0: { [i, j] : 0 <= i < 4 and 0 <= j < 4 }\n    A[i * j] = 0\n"
        )
        assert "not affine" in err.message

    def test_parametric_product_becomes_affine(self):
        # N*i is fine once N is concrete: row-major flattening by hand.
        text = (
            "kernel t\ndataset mini { N = 4 }\narray A[16]\n"
            "S0: { [i, j] : 0 <= i < N and 0 <= j < N }\n    A[N * i + j] = 0\n"
        )
        scop = parse_kernel(text).instantiate({"N": 4})
        index = scop.statements[0].accesses[0].indices[0]
        assert index.coefficient("i") == 4 and index.coefficient("j") == 1

    def test_nonpositive_extent(self):
        err = parse_error(
            "kernel t\ndataset mini { N = 0 }\narray A[N]\nS0: { [] }\n    A[0] = 0\n"
        )
        assert "positive integer" in err.message

    def test_unknown_dataset_lists_available(self):
        program = parse_kernel(
            "kernel t\ndataset a { N = 4 }\narray A[N]\nS0: { [] }\n    A[0] = 0\n"
        )
        with pytest.raises(KernelParseError, match="available: a"):
            program.dataset_sizes("b")

    def test_loop_variable_shadows_parameter(self):
        text = (
            "kernel t\ndataset mini { i = 99, N = 4 }\narray A[4]\n"
            "S0: { [i] : 0 <= i < N }\n    A[i] = 0\n"
        )
        scop = parse_kernel(text).instantiate({"i": 99, "N": 4})
        # The access index is the loop variable, not the constant 99.
        assert scop.statements[0].accesses[0].indices[0].coefficient("i") == 1


# ----------------------------------------------------------------------
# Fidelity against the builder and the registry
# ----------------------------------------------------------------------
GEMM_DSL = """
kernel gemm
dataset mini { NI = 10, NJ = 12, NK = 14 }
array C[NI][NJ]
array A[NI][NK]
array B[NK][NJ]
S0: { [i, j] : 0 <= i < NI and 0 <= j < NJ }
    schedule [0, i, 0, j, 0]
    C[i][j] *= beta
S1: { [i, k, j] : 0 <= i < NI and 0 <= k < NK and 0 <= j < NJ }
    schedule [0, i, 1, k, 0, j, 0]
    C[i][j] += A[i][k] * B[k][j]
"""


class TestFidelity:
    def test_handwritten_gemm_is_structurally_identical(self):
        program = parse_kernel(GEMM_DSL)
        mine = program.instantiate(program.dataset_sizes("mini"))
        ref = gemm(kernel_sizes("mini", "gemm"))
        assert scop_fingerprint(mine) == scop_fingerprint(ref)
        assert mine.context == ref.context

    def test_handwritten_gemm_payload_identical(self):
        program = parse_kernel(GEMM_DSL)
        mine = program.instantiate(program.dataset_sizes("mini"))
        ref = gemm(kernel_sizes("mini", "gemm"))
        assert analysis_payload(mine) == analysis_payload(ref)


class TestUnparse:
    @pytest.mark.parametrize("name", ["gemm", "trisolv", "jacobi-2d", "cholesky"])
    def test_builtin_round_trip(self, name):
        ref = get_kernel(name).build("mini")
        text = unparse(ref)
        program = parse_kernel(text)
        again = program.instantiate(program.dataset_sizes("mini"))
        assert scop_fingerprint(again) == scop_fingerprint(ref)

    def test_unparse_is_a_fixpoint(self):
        ref = get_kernel("trisolv").build("mini")
        text = unparse(ref)
        program = parse_kernel(text)
        again = program.instantiate(program.dataset_sizes("mini"))
        assert unparse(again) == text


# ----------------------------------------------------------------------
# Round-trip fuzz: random builder programs survive unparse -> parse
# ----------------------------------------------------------------------
@st.composite
def builder_programs(draw):
    """A small random ScopBuilder program with in-bounds affine accesses."""
    b = ScopBuilder("fuzz")
    array_count = draw(st.integers(min_value=1, max_value=2))
    extent = draw(st.integers(min_value=4, max_value=12))
    depth_budget = 16  # extents comfortably above any |index| we generate
    arrays = [
        b.array(f"A{n}", (extent + depth_budget,), element_size=draw(st.sampled_from([4, 8])))
        for n in range(array_count)
    ]
    depth = draw(st.integers(min_value=1, max_value=3))

    def index_expr(scope):
        # offset + sum of at most two in-scope variables: always in bounds.
        expr = QPoly.constant(draw(st.integers(min_value=0, max_value=3)))
        for var in draw(st.lists(st.sampled_from(scope), max_size=2, unique=True)):
            expr = expr + QPoly.variable(var)
        return expr

    def add_statement(scope):
        array = draw(st.sampled_from(arrays))
        reads = [
            draw(st.sampled_from(arrays))[index_expr(scope)]
            for _ in range(draw(st.integers(0, 2)))
        ]
        b.stmt(reads=reads, writes=[array[index_expr(scope)]])

    with b.loop("i", 0, extent):
        if depth == 1:
            add_statement(["i"])
            if draw(st.booleans()):
                add_statement(["i"])
        else:
            with b.loop("j", 0, extent):
                if depth == 2:
                    add_statement(["i", "j"])
                else:
                    with b.loop("k", 0, extent):
                        add_statement(["i", "j", "k"])
            if draw(st.booleans()):
                add_statement(["i"])
    return b.build()


@given(builder_programs())
@settings(max_examples=20, deadline=None)
def test_round_trip_fuzz_structural(scop):
    text = unparse(scop)
    program = parse_kernel(text)
    again = program.instantiate(program.dataset_sizes("mini"))
    assert scop_fingerprint(again) == scop_fingerprint(scop)


@given(builder_programs())
@settings(max_examples=8, deadline=None)
def test_round_trip_fuzz_payload(scop):
    text = unparse(scop)
    program = parse_kernel(text)
    again = program.instantiate(program.dataset_sizes("mini"))
    assert analysis_payload(again, budget=300) == analysis_payload(scop, budget=300)


# ----------------------------------------------------------------------
# Registration and the fluent API
# ----------------------------------------------------------------------
def write_kernel(tmp_path, name):
    path = tmp_path / f"{name}.knl"
    text = (
        f"kernel {name}\n"
        "dataset mini { N = 48 }\n"
        "dataset big { N = 96 }\n"
        "array x[N]\narray y[N]\n"
        "S0: { [i] : 0 <= i < N }\n    y[i] += a * x[i]\n"
    )
    path.write_text(text)
    return path


class TestRegistration:
    def test_register_kernel_file_source_and_datasets(self, tmp_path):
        path = write_kernel(tmp_path, "frontend_reg_test")
        program = register_kernel_file(path)
        assert program.name == "frontend_reg_test"
        entry = get_kernel("frontend_reg_test")
        assert entry.source == f"file:{path.name}"
        assert list(entry.datasets) == ["mini", "big"]
        scop = entry.build("big")
        assert scop.arrays["x"].shape == (96,)

    def test_parse_kernel_path_reads_utf8(self, tmp_path):
        path = write_kernel(tmp_path, "frontend_path_test")
        assert parse_kernel_path(path).name == "frontend_path_test"

    def test_session_kernel_file_runs(self, tmp_path):
        path = write_kernel(tmp_path, "frontend_session_test")
        batch = (
            Session().machine(SMALL_MACHINE).budget(300)
            .kernel_file(path).datasets("mini").run()
        )
        record = batch.records[0]
        assert record.status == "ok"
        assert record.kernel == "frontend_session_test"

    def test_session_kernel_file_multiworker_identical(self, tmp_path):
        # File kernels are invisible to spawn-started workers unless the spec
        # ships the built scop; this exercises that path end to end.
        path = write_kernel(tmp_path, "frontend_workers_test")
        runs = []
        for workers in (1, 2):
            batch = (
                Session().machine(SMALL_MACHINE).budget(300).workers(workers)
                .kernel_file(path).datasets("mini").run()
            )
            assert batch.records[0].status == "ok"
            runs.append(normalize(batch.records[0].result.to_dict()))
        assert runs[0] == runs[1]
