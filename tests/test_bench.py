"""Bench harness: suite runs, baseline comparison semantics, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.reporting import bench
from repro.reporting.bench import compare_reports, load_report, run_suite, write_report

#: A one-job suite so harness tests run in milliseconds; the tiny budget
#: trips immediately and the job degrades to the fast exact fallback.
TINY_SUITE = {
    "kernels": ["jacobi-1d"],
    "datasets": ["mini"],
    "levels": [(32 * 1024,)],
    "budget": 200,
}


@pytest.fixture(autouse=True)
def _tiny_suite(monkeypatch):
    monkeypatch.setitem(bench.SUITES, "tiny", TINY_SUITE)
    # Keep calibration cheap for the test suite.
    monkeypatch.setattr(bench, "_CALIBRATION_ROUNDS", 1)


class TestRunSuite:
    def test_report_shape(self, tmp_path):
        report = run_suite("tiny", store_path=str(tmp_path))
        assert report["suite"] == "tiny"
        assert report["totals"]["jobs"] == 1 and report["totals"]["errors"] == 0
        assert report["calibration_seconds"] > 0
        (job,) = report["jobs"]
        assert job["kernel"] == "jacobi-1d" and job["status"] == "ok"
        assert job["misses"] and job["accesses"] > 0
        assert job["work_units"] > 0
        assert "stack_distance_seconds" in job["phases"]

    def test_warm_store_rerun_is_cached(self, tmp_path):
        cold = run_suite("tiny", store_path=str(tmp_path))
        warm = run_suite("tiny", store_path=str(tmp_path))
        assert cold["totals"]["cached"] == 0
        assert warm["totals"]["cached"] == warm["totals"]["jobs"] == 1
        assert warm["jobs"][0]["misses"] == cold["jobs"][0]["misses"]

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_suite("no-such-suite")

    def test_report_round_trip(self, tmp_path):
        report = run_suite("tiny", store_path=None)
        path = tmp_path / "BENCH_tiny.json"
        write_report(report, path)
        assert load_report(path) == json.loads(json.dumps(report))


class TestCompareReports:
    def _report(self, **overrides):
        report = {
            "schema_version": 1,
            "suite": "tiny",
            "wall_seconds": 10.0,
            "calibration_seconds": 0.1,
            "jobs": [
                {
                    "kernel": "jacobi-1d",
                    "dataset": "mini",
                    "levels": [32768],
                    "status": "ok",
                    "misses": [4],
                    "accesses": 100,
                }
            ],
            "totals": {"work_units": 1000},
        }
        report.update(overrides)
        return report

    def test_identical_reports_clean(self):
        assert compare_reports(self._report(), self._report()) == []

    def test_miss_count_change_is_accuracy_regression(self):
        current = self._report()
        current["jobs"][0]["misses"] = [5]
        (regression,) = compare_reports(current, self._report())
        assert regression.startswith("accuracy:")

    def test_job_error_is_accuracy_regression(self):
        current = self._report()
        current["jobs"][0]["status"] = "error"
        (regression,) = compare_reports(current, self._report())
        assert "now fails" in regression

    def test_missing_job_is_accuracy_regression(self):
        current = self._report(jobs=[])
        (regression,) = compare_reports(current, self._report())
        assert "missing" in regression

    def test_wall_time_regression_is_normalized(self):
        # 3x the wall time on a 3x slower machine is NOT a regression.
        current = self._report(wall_seconds=30.0, calibration_seconds=0.3)
        assert compare_reports(current, self._report()) == []
        # 3x the wall time at identical machine speed IS one.
        current = self._report(wall_seconds=30.0)
        (regression,) = compare_reports(current, self._report())
        assert "wall time" in regression

    def test_wall_check_can_be_disabled(self):
        current = self._report(wall_seconds=30.0)
        assert compare_reports(current, self._report(), check_wall=False) == []

    def test_work_unit_regression_respects_tolerance(self):
        current = self._report(totals={"work_units": 1150})
        assert compare_reports(current, self._report(), check_wall=False) == []
        current = self._report(totals={"work_units": 1300})
        (regression,) = compare_reports(current, self._report(), check_wall=False)
        assert "work units" in regression

    def test_suite_mismatch_rejected(self):
        (regression,) = compare_reports(self._report(suite="other"), self._report())
        assert "suite mismatch" in regression

    def test_failing_job_absent_from_baseline_is_regression(self):
        current = self._report()
        current["jobs"].append(
            {"kernel": "new-kernel", "dataset": "mini", "levels": [1024], "status": "error"}
        )
        (regression,) = compare_reports(current, self._report())
        assert "not in baseline" in regression and "fails" in regression

    def test_healthy_job_absent_from_baseline_is_not_regression(self):
        current = self._report()
        current["jobs"].append(
            {"kernel": "new-kernel", "dataset": "mini", "levels": [1024], "status": "ok",
             "misses": [1], "accesses": 10}
        )
        assert compare_reports(current, self._report()) == []


class TestTraceWorkload:
    def _trace_entry(self, **overrides):
        entry = {
            "kernel": "bench-trace-gemm",
            "accesses": 11368,
            "misses": [100, 50],
            "python_seconds": 0.5,
            "numpy_available": True,
            "numpy_seconds": 0.01,
            "speedup": 50.0,
            "results_match": True,
            "min_speedup": 10.0,
        }
        entry.update(overrides)
        return entry

    def _report(self, trace):
        return {
            "suite": "tiny",
            "wall_seconds": 1.0,
            "calibration_seconds": 0.1,
            "jobs": [],
            "totals": {"work_units": 0},
            "trace": trace,
        }

    def test_run_suite_records_trace_workload(self, monkeypatch):
        monkeypatch.setitem(
            bench.SUITES,
            "tiny",
            dict(TINY_SUITE, trace={"size": 4, "rounds": 1, "min_speedup": 10.0}),
        )
        report = run_suite("tiny", store_path=None)
        trace = report["trace"]
        assert trace["kernel"] == "bench-trace-gemm"
        assert trace["accesses"] > 0 and len(trace["misses"]) == 2
        assert trace["python_seconds"] > 0
        assert trace["results_match"] is True
        if trace["numpy_available"]:
            assert trace["numpy_seconds"] > 0 and trace["speedup"] > 0
        else:
            assert trace["speedup"] is None

    def test_clean_trace_workload_passes(self):
        report = self._report(self._trace_entry())
        assert compare_reports(report, self._report(self._trace_entry()), check_wall=False) == []

    def test_backend_disagreement_is_accuracy_regression(self):
        current = self._report(self._trace_entry(results_match=False, numpy_misses=[101, 50]))
        regressions = compare_reports(current, self._report(self._trace_entry()), check_wall=False)
        assert any("backends disagree" in r for r in regressions)

    def test_trace_miss_drift_is_accuracy_regression(self):
        current = self._report(self._trace_entry(misses=[101, 50]))
        regressions = compare_reports(current, self._report(self._trace_entry()), check_wall=False)
        assert any("miss counts changed" in r for r in regressions)

    def test_speedup_below_floor_is_performance_regression(self):
        current = self._report(self._trace_entry(speedup=8.0))
        regressions = compare_reports(current, self._report(self._trace_entry()), check_wall=False)
        assert any("below the suite floor" in r for r in regressions)

    def test_speedup_collapse_against_baseline_is_regression(self):
        current = self._report(self._trace_entry(speedup=11.0))
        baseline = self._report(self._trace_entry(speedup=60.0))
        regressions = compare_reports(current, baseline, check_wall=False)
        assert any("collapsed" in r for r in regressions)

    def test_no_numpy_skips_the_speedup_gate(self):
        current = self._report(
            self._trace_entry(numpy_available=False, numpy_seconds=None, speedup=None)
        )
        assert compare_reports(current, self._report(self._trace_entry()), check_wall=False) == []

    def test_missing_trace_workload_is_flagged(self):
        current = self._report(None)
        current.pop("trace")
        regressions = compare_reports(current, self._report(self._trace_entry()), check_wall=False)
        assert any("trace workload missing" in r for r in regressions)

    def test_committed_smoke_baseline_records_the_speedup_claim(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        report = load_report(repo_root / "benchmarks" / "baselines" / "BENCH_smoke.json")
        trace = report["trace"]
        assert trace["results_match"] is True
        assert trace["min_speedup"] >= 10.0
        assert trace["speedup"] >= 10.0


class TestCurveWorkload:
    def _curve_entry(self, **overrides):
        entry = {
            "kernel": "bench-curve-matvec",
            "accesses": 4096,
            "points": 64,
            "single_seconds": 0.9,
            "sweep_seconds": 1.0,
            "sweep_ratio": 1.1,
            "counts_match": True,
            "used_fallback": False,
            "sweep_misses": [3000, 2000, 500, 0],
            "max_ratio": 2.0,
        }
        entry.update(overrides)
        return entry

    def _report(self, curve):
        return {
            "suite": "tiny",
            "wall_seconds": 1.0,
            "calibration_seconds": 0.1,
            "jobs": [],
            "totals": {"work_units": 0},
            "curve": curve,
        }

    def test_run_suite_records_curve_workload(self, monkeypatch):
        monkeypatch.setitem(
            bench.SUITES,
            "tiny",
            dict(TINY_SUITE, curve={"size": 8, "points": 16, "max_ratio": 2.0}),
        )
        report = run_suite("tiny", store_path=None)
        curve = report["curve"]
        assert curve["kernel"] == "bench-curve-matvec"
        assert curve["counts_match"] is True and not curve["used_fallback"]
        assert curve["points"] == 16 and len(curve["sweep_misses"]) == 16
        assert curve["single_seconds"] > 0 and curve["sweep_seconds"] > 0

    def test_clean_curve_workload_passes(self):
        report = self._report(self._curve_entry())
        assert compare_reports(report, self._report(self._curve_entry()), check_wall=False) == []

    def test_reference_disagreement_is_accuracy_regression(self):
        current = self._report(self._curve_entry(counts_match=False))
        regressions = compare_reports(current, self._report(self._curve_entry()), check_wall=False)
        assert any("disagree with the exact trace reference" in r for r in regressions)

    def test_sweep_count_drift_is_accuracy_regression(self):
        current = self._report(self._curve_entry(sweep_misses=[3000, 2001, 500, 0]))
        regressions = compare_reports(current, self._report(self._curve_entry()), check_wall=False)
        assert any("sweep counts changed" in r for r in regressions)

    def test_fallback_sweep_is_a_regression(self):
        current = self._report(self._curve_entry(used_fallback=True))
        regressions = compare_reports(current, self._report(self._curve_entry()), check_wall=False)
        assert any("fell back" in r for r in regressions)

    def test_ratio_over_ceiling_is_performance_regression(self):
        current = self._report(self._curve_entry(sweep_ratio=2.5))
        regressions = compare_reports(current, self._report(self._curve_entry()))
        assert any("curve sweep costs" in r for r in regressions)
        # The ratio is a wall-clock metric: --no-wall disables the gate.
        assert compare_reports(current, self._report(self._curve_entry()), check_wall=False) == []

    def test_missing_curve_workload_is_flagged(self):
        current = self._report(None)
        regressions = compare_reports(current, self._report(self._curve_entry()), check_wall=False)
        assert any("curve workload missing" in r for r in regressions)

    def test_committed_smoke_baseline_records_the_sweep_claim(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        report = load_report(repo_root / "benchmarks" / "baselines" / "BENCH_smoke.json")
        curve = report["curve"]
        assert curve["counts_match"] is True and not curve["used_fallback"]
        assert curve["max_ratio"] <= 2.0
        assert curve["sweep_ratio"] <= curve["max_ratio"]


class TestSymbolicWorkload:
    def _symbolic_entry(self, **overrides):
        entry = {
            "kernel": "bench-curve-matvec",
            "chamber_sets": 47,
            "points": 1024,
            "python_seconds": 0.7,
            "totals_sha256": "abc123",
            "numpy_available": True,
            "numpy_seconds": 0.02,
            "speedup": 35.0,
            "results_match": True,
            "min_speedup": 3.0,
        }
        entry.update(overrides)
        return entry

    def _report(self, symbolic):
        return {
            "suite": "tiny",
            "wall_seconds": 1.0,
            "calibration_seconds": 0.1,
            "jobs": [],
            "totals": {"work_units": 0},
            "symbolic": symbolic,
        }

    def test_run_suite_records_symbolic_workload(self, monkeypatch):
        monkeypatch.setitem(
            bench.SUITES,
            "tiny",
            dict(TINY_SUITE, symbolic={"size": 8, "points": 64, "rounds": 1, "min_speedup": 3.0}),
        )
        report = run_suite("tiny", store_path=None)
        symbolic = report["symbolic"]
        assert symbolic["kernel"] == "bench-curve-matvec"
        assert symbolic["chamber_sets"] > 0 and symbolic["points"] == 64
        assert symbolic["python_seconds"] > 0
        assert symbolic["results_match"] is True
        assert symbolic["totals_sha256"]
        if symbolic["numpy_available"]:
            assert symbolic["numpy_seconds"] > 0 and symbolic["speedup"] > 0
        else:
            assert symbolic["speedup"] is None

    def test_clean_symbolic_workload_passes(self):
        report = self._report(self._symbolic_entry())
        assert compare_reports(report, self._report(self._symbolic_entry()), check_wall=False) == []

    def test_backend_disagreement_is_accuracy_regression(self):
        current = self._report(self._symbolic_entry(results_match=False))
        regressions = compare_reports(current, self._report(self._symbolic_entry()), check_wall=False)
        assert any("evaluation backends disagree" in r for r in regressions)

    def test_totals_drift_is_accuracy_regression(self):
        current = self._report(self._symbolic_entry(totals_sha256="def456"))
        regressions = compare_reports(current, self._report(self._symbolic_entry()), check_wall=False)
        assert any("per-capacity totals changed" in r for r in regressions)

    def test_speedup_below_floor_is_performance_regression(self):
        current = self._report(self._symbolic_entry(speedup=2.0))
        regressions = compare_reports(current, self._report(self._symbolic_entry()), check_wall=False)
        assert any("below the suite floor" in r for r in regressions)

    def test_speedup_collapse_against_baseline_is_regression(self):
        current = self._report(self._symbolic_entry(speedup=5.0))
        baseline = self._report(self._symbolic_entry(speedup=40.0))
        regressions = compare_reports(current, baseline, check_wall=False)
        assert any("collapsed" in r for r in regressions)

    def test_no_numpy_skips_the_speedup_gate(self):
        current = self._report(
            self._symbolic_entry(numpy_available=False, numpy_seconds=None, speedup=None)
        )
        assert compare_reports(current, self._report(self._symbolic_entry()), check_wall=False) == []

    def test_missing_symbolic_workload_is_flagged(self):
        current = self._report(None)
        current.pop("symbolic")
        regressions = compare_reports(current, self._report(self._symbolic_entry()), check_wall=False)
        assert any("symbolic workload missing" in r for r in regressions)

    def test_committed_smoke_baseline_records_the_speedup_claim(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        report = load_report(repo_root / "benchmarks" / "baselines" / "BENCH_smoke.json")
        symbolic = report["symbolic"]
        assert symbolic["results_match"] is True
        assert symbolic["min_speedup"] >= 3.0
        assert symbolic["speedup"] >= 3.0
        assert symbolic["totals_sha256"]


class TestServeWorkload:
    def _serve_entry(self, **overrides):
        entry = {
            "kernels": ["gemm"],
            "requests": 207,
            "unique_specs": 7,
            "dedup": 200,
            "workers": 2,
            "clients": 8,
            "probe_ok": True,
            "probe_coalesced": 2,
            "shed_ok": True,
            "errors": 0,
            "engine_jobs": 7,
            "coalesced": 25,
            "cached": 175,
            "payloads_identical": True,
            "misses": {"gemm": [68, 68]},
            "store_hits": 175,
            "store_misses": 7,
            "store_hit_rate": 0.96,
            "wall_seconds": 14.0,
            "p50_seconds": 0.008,
            "p95_seconds": 5.0,
        }
        entry.update(overrides)
        return entry

    def _report(self, serve):
        return {
            "suite": "tiny",
            "wall_seconds": 1.0,
            "calibration_seconds": 0.1,
            "jobs": [],
            "totals": {"work_units": 0},
            "serve": serve,
        }

    def test_run_suite_records_serve_workload(self, monkeypatch):
        monkeypatch.setitem(
            bench.SUITES,
            "tiny",
            dict(
                TINY_SUITE,
                serve={
                    "kernels": ["jacobi-1d"],
                    "budget": 200,
                    "repeats": 2,
                    "clients": 2,
                    "workers": 1,
                },
            ),
        )
        report = run_suite("tiny", store_path=None)
        serve = report["serve"]
        assert serve["errors"] == 0
        assert serve["probe_ok"] is True and serve["probe_coalesced"] == 2
        assert serve["shed_ok"] is True
        # One engine job per unique spec: jacobi-1d plus the probe source.
        assert serve["engine_jobs"] == serve["unique_specs"] == 2
        assert serve["coalesced"] + serve["cached"] == serve["dedup"]
        assert serve["payloads_identical"] is True
        assert serve["misses"]["jacobi-1d"]
        assert serve["p50_seconds"] > 0 and serve["p95_seconds"] > 0

    def test_clean_serve_workload_passes(self):
        report = self._report(self._serve_entry())
        assert compare_reports(report, self._report(self._serve_entry()), check_wall=False) == []

    def test_request_errors_are_flagged(self):
        current = self._report(self._serve_entry(errors=3))
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("failed request" in r for r in regressions)

    def test_failed_coalesce_probe_is_regression(self):
        current = self._report(self._serve_entry(probe_coalesced=0))
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("failed to coalesce" in r for r in regressions)

    def test_unshed_unlimited_budget_is_regression(self):
        current = self._report(self._serve_entry(shed_ok=False))
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("not shed" in r for r in regressions)

    def test_excess_engine_jobs_is_regression(self):
        current = self._report(self._serve_entry(engine_jobs=9))
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("engine jobs for" in r for r in regressions)

    def test_unaccounted_duplicates_is_regression(self):
        current = self._report(self._serve_entry(cached=100))
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("dedup accounting" in r for r in regressions)

    def test_zero_store_hits_is_regression(self):
        current = self._report(self._serve_entry(cached=0, coalesced=200))
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("store served no duplicate" in r for r in regressions)

    def test_payload_divergence_is_accuracy_regression(self):
        current = self._report(self._serve_entry(payloads_identical=False))
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("not byte-identical" in r for r in regressions)

    def test_miss_drift_is_accuracy_regression(self):
        current = self._report(self._serve_entry(misses={"gemm": [69, 68]}))
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("miss counts changed" in r for r in regressions)

    def test_latency_collapse_is_gated_by_wall_check(self):
        current = self._report(self._serve_entry(p95_seconds=25.0))
        regressions = compare_reports(current, self._report(self._serve_entry()))
        assert any("p95 request latency" in r for r in regressions)
        # Latency is a wall-clock metric: --no-wall disables the gate.
        assert compare_reports(current, self._report(self._serve_entry()), check_wall=False) == []

    def test_missing_serve_workload_is_flagged(self):
        current = self._report(None)
        current.pop("serve")
        regressions = compare_reports(current, self._report(self._serve_entry()), check_wall=False)
        assert any("serve workload missing" in r for r in regressions)

    def test_committed_smoke_baseline_records_the_service_guarantees(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        report = load_report(repo_root / "benchmarks" / "baselines" / "BENCH_smoke.json")
        serve = report["serve"]
        assert serve["errors"] == 0
        assert serve["probe_ok"] is True and serve["probe_coalesced"] == 2
        assert serve["shed_ok"] is True
        assert serve["engine_jobs"] == serve["unique_specs"]
        assert serve["coalesced"] + serve["cached"] == serve["dedup"]
        assert serve["payloads_identical"] is True
        assert serve["p95_seconds"] > 0


class TestExploreWorkload:
    def _explore_entry(self, **overrides):
        entry = {
            "kernel": "bench-curve-matvec",
            "tiles": [1, 2, 4, 8],
            "capacity_points": 16,
            "grid_size": 64,
            "pareto_size": 9,
            "analyses": 4,
            "independent_analyses": 64,
            "grid_seconds": 1.0,
            "independent_seconds": 15.0,
            "cost_ratio": 1.0 / 15.0,
            "max_cost_ratio": 0.25,
            "table_digest": "abc123",
            "backends_match": True,
            "workers_match": True,
            "numpy_available": True,
        }
        entry.update(overrides)
        return entry

    def _report(self, explore):
        return {
            "suite": "tiny",
            "wall_seconds": 1.0,
            "calibration_seconds": 0.1,
            "jobs": [],
            "totals": {"work_units": 0},
            "explore": explore,
        }

    def test_run_suite_records_explore_workload(self, monkeypatch):
        monkeypatch.setitem(
            bench.SUITES,
            "tiny",
            dict(TINY_SUITE, explore={"size": 8, "tiles": [1, 2], "points": 4, "max_cost_ratio": 0.25}),
        )
        report = run_suite("tiny", store_path=None)
        explore = report["explore"]
        assert explore["kernel"] == "bench-curve-matvec"
        assert explore["analyses"] == 2
        assert explore["grid_size"] == 2 * explore["capacity_points"]
        assert explore["independent_analyses"] == explore["grid_size"]
        assert explore["grid_seconds"] > 0 and explore["independent_seconds"] > 0
        assert explore["table_digest"]
        assert explore["backends_match"] is True
        assert explore["workers_match"] is True

    def test_clean_explore_workload_passes(self):
        report = self._report(self._explore_entry())
        assert compare_reports(report, self._report(self._explore_entry()), check_wall=False) == []

    def test_backend_divergence_is_accuracy_regression(self):
        current = self._report(self._explore_entry(backends_match=False))
        regressions = compare_reports(current, self._report(self._explore_entry()), check_wall=False)
        assert any("across backends" in r for r in regressions)

    def test_worker_divergence_is_accuracy_regression(self):
        current = self._report(self._explore_entry(workers_match=False))
        regressions = compare_reports(current, self._report(self._explore_entry()), check_wall=False)
        assert any("across worker counts" in r for r in regressions)

    def test_table_drift_is_accuracy_regression(self):
        current = self._report(self._explore_entry(table_digest="def456"))
        regressions = compare_reports(current, self._report(self._explore_entry()), check_wall=False)
        assert any("ranked table changed" in r for r in regressions)

    def test_cost_ratio_over_ceiling_is_performance_regression(self):
        current = self._report(self._explore_entry(cost_ratio=0.5))
        regressions = compare_reports(current, self._report(self._explore_entry()))
        assert any("explore grid costs" in r for r in regressions)
        # The ratio is a wall-clock metric: --no-wall disables the gate.
        assert compare_reports(current, self._report(self._explore_entry()), check_wall=False) == []

    def test_missing_explore_workload_is_flagged(self):
        current = self._report(None)
        regressions = compare_reports(current, self._report(self._explore_entry()), check_wall=False)
        assert any("explore workload missing" in r for r in regressions)

    def test_committed_smoke_baseline_records_the_grid_claim(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        report = load_report(repo_root / "benchmarks" / "baselines" / "BENCH_smoke.json")
        explore = report["explore"]
        assert explore["grid_size"] == 64 and explore["analyses"] == 4
        assert explore["backends_match"] is True and explore["workers_match"] is True
        assert explore["max_cost_ratio"] <= 0.25
        assert explore["cost_ratio"] <= explore["max_cost_ratio"]


class TestBenchCli:
    def test_bench_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_tiny.json"
        rc = main(["bench", "--suite", "tiny", "--output", str(output)])
        assert rc == 0
        assert "bench suite 'tiny'" in capsys.readouterr().out
        report = json.loads(output.read_text())
        assert report["suite"] == "tiny" and report["jobs"]

    def test_bench_compare_clean_baseline_exits_zero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "--suite", "tiny", "--output", str(tmp_path / "a.json"),
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        rc = main(["bench", "--suite", "tiny", "--output", str(tmp_path / "b.json"),
                   "--baseline", str(baseline), "--compare", "--no-wall"])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_compare_injected_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "--suite", "tiny", "--output", str(tmp_path / "a.json"),
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        doctored = json.loads(baseline.read_text())
        doctored["jobs"][0]["misses"][0] += 1
        baseline.write_text(json.dumps(doctored))
        rc = main(["bench", "--suite", "tiny", "--output", str(tmp_path / "b.json"),
                   "--baseline", str(baseline), "--compare", "--no-wall"])
        assert rc == 4
        assert "accuracy" in capsys.readouterr().out

    def test_bench_compare_missing_baseline_exits_two(self, tmp_path, capsys):
        rc = main(["bench", "--suite", "tiny", "--output", str(tmp_path / "a.json"),
                   "--baseline", str(tmp_path / "nope.json"), "--compare"])
        assert rc == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_committed_smoke_baseline_is_well_formed(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        report = load_report(repo_root / "benchmarks" / "baselines" / "BENCH_smoke.json")
        assert report["suite"] == "smoke"
        assert report["totals"]["errors"] == 0
        assert report["totals"]["jobs"] == len(report["jobs"]) == 6
        assert all(job["status"] == "ok" for job in report["jobs"])
