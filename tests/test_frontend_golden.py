"""Golden kernel files: the `.knl` ports under ``examples/kernels/`` are
byte-for-byte faithful to their registered PolyBench twins.

For every golden file and every dataset it declares, instantiation must
produce a scop *structurally identical* to the registry's builder version —
same arrays, constraint normal forms, schedules, and ordered accesses — and
the analysis payload (modulo wall-clock fields, via
``repro.reporting.equivalence.normalize``) must match exactly.
"""

from pathlib import Path

import pytest

from repro.api.registry import get_kernel
from repro.frontend import parse_kernel_path

from test_frontend import analysis_payload, scop_fingerprint

KERNEL_DIR = Path(__file__).resolve().parent.parent / "examples" / "kernels"
GOLDEN = ["gemm", "trisolv", "jacobi-2d"]


def golden_program(name):
    return parse_kernel_path(KERNEL_DIR / f"{name}.knl")


def test_every_golden_file_is_covered():
    on_disk = sorted(p.stem for p in KERNEL_DIR.glob("*.knl"))
    assert on_disk == sorted(GOLDEN)


@pytest.mark.parametrize("name", GOLDEN)
def test_golden_declares_all_registry_datasets(name):
    program = golden_program(name)
    assert program.name == name
    assert list(program.datasets) == list(get_kernel(name).datasets)


@pytest.mark.parametrize("name", GOLDEN)
@pytest.mark.parametrize("dataset", ["mini", "small", "medium", "large", "extralarge"])
def test_golden_structurally_identical_to_registry(name, dataset):
    program = golden_program(name)
    mine = program.instantiate(program.dataset_sizes(dataset))
    ref = get_kernel(name).build(dataset)
    assert scop_fingerprint(mine) == scop_fingerprint(ref)
    assert mine.context == ref.context


@pytest.mark.parametrize("name", GOLDEN)
def test_golden_analysis_payload_identical(name):
    program = golden_program(name)
    mine = program.instantiate(program.dataset_sizes("mini"))
    ref = get_kernel(name).build("mini")
    assert analysis_payload(mine, budget=2000) == analysis_payload(ref, budget=2000)
