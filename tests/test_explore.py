"""Design-space explorer: Pareto invariants, axes, grid-vs-independent identity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.core import CacheLevelSpec, MachineModel
from repro.explore import (
    DesignSpace,
    DesignSpaceError,
    build_result,
    config_cost,
    dominates,
    pareto_front,
)
from repro.scop import ScopBuilder
from repro.scop.schedule import tile_scop

#: 2-D minimize-everything objective vectors, duplicates welcome.
objective_lists = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=0, max_size=24
)


class TestDominates:
    def test_strictly_better_dominates(self):
        assert dominates((1, 2), (2, 2))
        assert dominates((1, 1), (2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((3, 3), (3, 3))

    def test_tradeoffs_do_not_dominate(self):
        assert not dominates((1, 5), (5, 1))
        assert not dominates((5, 1), (1, 5))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            dominates((1,), (1, 2))


class TestParetoFront:
    @given(objective_lists)
    @settings(max_examples=200, deadline=None)
    def test_front_is_mutually_non_dominated(self, points):
        front = pareto_front(points)
        assert not any(
            dominates(a, b) for i, a in enumerate(front) for j, b in enumerate(front) if i != j
        )

    @given(objective_lists)
    @settings(max_examples=200, deadline=None)
    def test_every_excluded_point_is_dominated(self, points):
        front = pareto_front(points)
        remaining = list(points)
        for member in front:
            remaining.remove(member)
        assert all(any(dominates(member, point) for member in front) for point in remaining)

    @given(objective_lists)
    @settings(max_examples=200, deadline=None)
    def test_front_is_an_ordered_subsequence(self, points):
        front = pareto_front(points)
        indices = []
        cursor = 0
        for member in front:
            cursor = points.index(member, cursor)
            indices.append(cursor)
            cursor += 1
        assert indices == sorted(indices)

    def test_duplicate_optima_both_survive(self):
        assert pareto_front([(1, 1), (1, 1), (2, 2)]) == [(1, 1), (1, 1)]

    def test_key_maps_items_to_objectives(self):
        items = [{"m": 5, "c": 1}, {"m": 1, "c": 5}, {"m": 5, "c": 5}]
        front = pareto_front(items, key=lambda item: (item["m"], item["c"]))
        assert front == items[:2]


class TestDesignSpace:
    def test_from_specs_parses_sweep_spellings(self):
        space = DesignSpace.from_specs(
            tiles="1,2,4", capacities="1K:8K:4", line_sizes=[32, 64], associativities=8
        )
        assert space.tiles == (1, 2, 4)
        assert space.capacities == (1024, 2048, 4096, 8192)
        assert space.line_sizes == (32, 64)
        assert space.associativities == (8,)

    def test_defaults_are_untiled_fully_associative(self):
        space = DesignSpace.from_specs(capacities=[1024])
        assert space.tiles == (1,)
        assert space.associativities == (None,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tiles": (0,)},
            {"capacities": (0,)},
            {"line_sizes": (-64,)},
            {"associativities": (0,)},
        ],
    )
    def test_invalid_axes_rejected(self, kwargs):
        with pytest.raises(DesignSpaceError):
            DesignSpace(**{"capacities": (1024,), **kwargs}).validate()

    def test_resolved_fills_axes_from_machine(self):
        machine = MachineModel(
            line_size=32,
            levels=(CacheLevelSpec(1024, "L1"), CacheLevelSpec(8192, "L2")),
        )
        space = DesignSpace(tiles=(1, 4)).resolved(machine)
        assert space.capacities == (1024, 8192)
        assert space.line_sizes == (32,)

    def test_hierarchy_preset_reads_the_machine(self):
        machine = MachineModel(
            levels=(CacheLevelSpec(32 * 1024, "L1"), CacheLevelSpec(256 * 1024, "L2"))
        )
        space = DesignSpace.hierarchy(machine, tiles="1,8")
        assert space.capacities == (32 * 1024, 256 * 1024)
        assert space.line_sizes == (machine.line_size,)
        assert space.tiles == (1, 8)

    def test_grid_and_analysis_counts(self):
        space = DesignSpace(
            tiles=(1, 2), capacities=(1024, 2048, 4096), line_sizes=(32, 64),
            associativities=(None, 4),
        )
        assert space.config_count() == 2 * 3 * 2 * 2
        assert space.analysis_count() == 2 * 2


class TestConfigCost:
    def test_fully_associative_charges_every_line(self):
        assert config_cost(1024, 16, 64, None) == 1024 + 64 * 16

    def test_ways_capped_at_capacity_lines(self):
        assert config_cost(1024, 16, 64, 4) == 1024 + 64 * 4
        assert config_cost(128, 2, 64, 8) == 128 + 64 * 2


def _sweep_scop(n=8, passes=2):
    """s += A[i] repeated ``passes`` times: real capacity structure, tiny trace."""
    builder = ScopBuilder("sweep", context={"N": n, "T": passes}, element_size=64)
    A = builder.array("A", (n,))
    s = builder.array("s", (1,))
    with builder.loop("t", 0, passes):
        with builder.loop("i", 0, n):
            builder.stmt(reads=[A[builder.v("i")], s[0]], writes=[s[0]])
    return builder.build()


#: Tile x capacity x line-size x associativity grid used by the identity
#: tests: 4 analyses answer 16 configurations.
SPACE = DesignSpace(
    tiles=(1, 2),
    capacities=(4 * 64, 16 * 64),
    line_sizes=(32, 64),
    associativities=(None, 4),
)


def _session(**_ignored):
    return Session().machine((max(SPACE.capacities),)).budget(500).no_store()


class TestExploreIdentity:
    """The tentpole claim: parametric axes match per-configuration analyses."""

    def test_grid_matches_per_config_analyses(self):
        scop = _sweep_scop()
        result = _session().explore(scop, space=SPACE)
        assert len(result.configs) == SPACE.config_count() == 16
        assert result.analyses == SPACE.analysis_count() == 4
        variants = {1: scop, 2: tile_scop(scop, 2)}
        for config in result.configs:
            machine = MachineModel(
                line_size=config.line_size,
                levels=(CacheLevelSpec(config.capacity_bytes, "L1"),),
            )
            independent = Session(machine).budget(500).no_store().analyze(variants[config.tile])
            assert config.misses == independent.level_results[0].misses
            assert config.accesses == independent.accesses

    def test_associativity_axis_never_moves_the_misses(self):
        # The model is fully associative: the ways axis exists for the cost
        # proxy only, so configs differing only in associativity agree.
        result = _session().explore(_sweep_scop(), space=SPACE)
        by_point = {}
        for config in result.configs:
            key = (config.tile, config.line_size, config.capacity_bytes)
            by_point.setdefault(key, set()).add(config.misses)
        assert all(len(misses) == 1 for misses in by_point.values())

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_table_identical_across_backends(self, backend):
        scop = _sweep_scop()
        reference = _session().explore(scop, space=SPACE).table_digest()
        assert _session().backend(backend).explore(scop, space=SPACE).table_digest() == reference

    def test_table_identical_across_worker_counts(self):
        scop = _sweep_scop()
        reference = _session().explore(scop, space=SPACE).table_digest()
        assert _session().piece_workers(2).explore(scop, space=SPACE).table_digest() == reference

    def test_ranking_is_best_first_and_pareto_flagged(self):
        result = _session().explore(_sweep_scop(), space=SPACE)
        objectives = [config.objectives() for config in result.configs]
        assert objectives == sorted(objectives)
        expected = pareto_front(objectives)
        assert sorted(c.objectives() for c in result.front()) == sorted(expected)
        assert result.best() is result.configs[0]

    def test_table_digest_ignores_wall_time(self):
        result = _session().explore(_sweep_scop(), space=SPACE)
        digest = result.table_digest()
        result.elapsed_seconds = 123.0
        assert result.table_digest() == digest


class TestBuildResult:
    def test_empty_capacity_axis_rejected(self):
        with pytest.raises(DesignSpaceError, match="capacity axis is empty"):
            build_result(DesignSpace(), lambda tile, line: None, kernel="k")
