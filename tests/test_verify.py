"""The kernel verifier: static diagnostics, cost prediction, all surfaces."""

import json
import warnings
from pathlib import Path

import pytest

from repro.api import Session, registry
from repro.core.model import CacheModel, ModelOptions
from repro.frontend import KernelParseError, parse_kernel, parse_kernel_path
from repro.reporting import format_diagnostics
from repro.scop.builder import ScopBuilder
from repro.verify import (
    DIAGNOSTICS_SCHEMA_VERSION,
    Diagnostic,
    VerificationError,
    VerificationWarning,
    check_scop,
    estimate_cost,
    sort_diagnostics,
    verify_program,
    verify_scop,
)

BROKEN_DIR = Path(__file__).resolve().parent.parent / "examples" / "kernels" / "broken"


def _codes(findings):
    return [diag.code for diag in findings]


# ----------------------------------------------------------------------
# Builder-level programs, one per check
# ----------------------------------------------------------------------
def _copy_scop(read_offset=0, extent=16):
    """``for i in [0, extent): A[i] += B[i + read_offset]``."""
    b = ScopBuilder("copy")
    a = b.array("A", [extent])
    src = b.array("B", [extent])
    with b.loop("i", 0, extent) as i:
        b.stmt(reads=[src[i + read_offset], a[i]], writes=[a[i]])
    return b.build()


class TestBoundsCheck:
    def test_clean_program_has_no_findings(self):
        assert check_scop(_copy_scop()) == []

    def test_overrun_is_an_error_with_a_witness(self):
        findings = check_scop(_copy_scop(read_offset=1))
        oob = [diag for diag in findings if diag.code == "OOB"]
        assert len(oob) == 1
        assert oob[0].severity == "error"
        assert oob[0].array == "B" and oob[0].statement == "S0"
        # The witness instance names the violating iteration.
        assert "i=15" in oob[0].message and ">= extent 16" in oob[0].message

    def test_negative_index_side(self):
        findings = check_scop(_copy_scop(read_offset=-1))
        oob = [diag for diag in findings if diag.code == "OOB"]
        assert len(oob) == 1 and oob[0].severity == "error"
        assert "< 0" in oob[0].message and "i=0" in oob[0].message

    def test_multidimensional_access_reports_the_dimension(self):
        b = ScopBuilder("md")
        a = b.array("A", [4, 8])
        with b.loop("i", 0, 4) as i:
            with b.loop("j", 0, 9) as j:  # j reaches 8: column overrun
                b.stmt(writes=[a[i, j]])
        oob = [diag for diag in check_scop(b.build()) if diag.code == "OOB"]
        assert len(oob) == 1
        assert "index 1" in oob[0].message and "extent 8" in oob[0].message


class TestDeadAndDataflow:
    def test_empty_domain_is_dead(self):
        b = ScopBuilder("dead")
        a = b.array("A", [8])
        with b.loop("i", 4, 4) as i:  # [4, 4) is empty
            b.stmt(writes=[a[i]])
        findings = check_scop(b.build())
        dead = [diag for diag in findings if diag.code == "DEAD"]
        assert len(dead) == 1 and dead[0].severity == "warning"
        assert dead[0].statement == "S0"

    def test_unused_and_write_only_arrays(self):
        b = ScopBuilder("dataflow")
        a = b.array("A", [8])
        src = b.array("B", [8])
        b.array("ghost", [8])
        with b.loop("i", 0, 8) as i:
            b.stmt(reads=[src[i]], writes=[a[i]])
        findings = check_scop(b.build())
        by_code = {diag.code: diag for diag in findings}
        assert by_code["UNUSED"].array == "ghost"
        assert by_code["UNUSED"].severity == "warning"
        assert by_code["WRITE-NEVER-READ"].array == "A"
        assert by_code["WRITE-NEVER-READ"].severity == "info"


class TestScheduleCheck:
    def test_distinct_schedules_are_clean(self):
        scop = registry.get_kernel("gemm").build("mini")
        assert [d for d in check_scop(scop) if d.code == "SCHED"] == []

    def test_colliding_pair_is_an_error(self):
        program = parse_kernel_path(str(BROKEN_DIR / "sched.knl"))
        scop = program.instantiate(program.dataset_sizes("mini"))
        sched = [d for d in check_scop(scop) if d.code == "SCHED"]
        assert len(sched) == 1 and sched[0].severity == "error"
        assert "S0" in sched[0].message and "S1" in sched[0].message


# ----------------------------------------------------------------------
# Source locations through the frontend
# ----------------------------------------------------------------------
class TestSourceLocations:
    def test_oob_location_points_at_the_access(self):
        program = parse_kernel_path(str(BROKEN_DIR / "oob.knl"))
        report = verify_program(program, "mini", cost=False)
        oob = [d for d in report.diagnostics if d.code == "OOB"]
        assert len(oob) == 1
        loc = oob[0].location
        assert loc is not None and loc.line == 18 and loc.col == 12
        assert loc.filename.endswith("oob.knl")
        assert f"{loc.filename}:18:12" in oob[0].render()

    def test_dead_location_points_at_the_statement(self):
        program = parse_kernel_path(str(BROKEN_DIR / "dead.knl"))
        report = verify_program(program, cost=False)  # dataset defaults to first
        dead = [d for d in report.diagnostics if d.code == "DEAD"]
        assert len(dead) == 1
        assert dead[0].location.line == 21 and dead[0].location.col == 1

    def test_builder_programs_have_no_locations(self):
        findings = check_scop(_copy_scop(read_offset=1))
        assert all(diag.location is None for diag in findings)
        # The renderer anchors unlocated findings on the statement instead.
        assert "[statement S0" in findings[0].render()


# ----------------------------------------------------------------------
# Cost prediction
# ----------------------------------------------------------------------
class TestCostPrediction:
    def test_tiny_program_fits(self):
        report = estimate_cost(_copy_scop(), budget=50_000)
        assert report.outcome == "fits" and not report.trips
        assert 0 < report.work_units <= 50_000
        assert report.piece_count > 0

    def test_small_budget_trips(self):
        scop = registry.get_kernel("gemm").build("mini")
        report = estimate_cost(scop, budget=300)
        assert report.outcome == "budget" and report.trips
        assert report.work_units > 300  # charged up to the tripping charge

    @pytest.mark.parametrize("kernel", ["gemm", "atax", "bicg", "mvt", "trisolv", "jacobi-1d"])
    def test_default_budget_acceptance_all_smoke_kernels(self, kernel):
        """The acceptance gate: probe outcome == real outcome, per kernel.

        Work charges are deterministic and pre-memo, so the probe's
        trip/no-trip answer at the default budget must equal what
        ``CacheModel.analyze`` does at the same budget, for every bench
        smoke kernel.  (At the paper datasets they all trip — that is what
        the committed bench baselines record.)
        """
        from repro.core.budget import BudgetExhausted
        from repro.verify.cost import DEFAULT_VERIFY_BUDGET

        scop = registry.get_kernel(kernel).build("mini")
        predicted = estimate_cost(scop, budget=DEFAULT_VERIFY_BUDGET)
        options = ModelOptions(
            symbolic_work_budget=DEFAULT_VERIFY_BUDGET,
            fallback_to_simulation=False,
            cross_check=False,
            store_path=None,
        )
        try:
            CacheModel(None, options).analyze(scop)
            actual_trips = False
        except BudgetExhausted:
            actual_trips = True
        assert predicted.trips == actual_trips, (
            f"{kernel}: probe said {predicted.outcome} "
            f"({predicted.work_units} units), reality said trips={actual_trips}"
        )

    def test_cost_diagnostic_rides_in_the_report(self):
        report = verify_scop(_copy_scop(), budget=50_000)
        cost = [d for d in report.diagnostics if d.code == "COST"]
        assert len(cost) == 1 and cost[0].severity == "info"
        assert report.cost is not None and report.cost.outcome == "fits"

    def test_no_cost_skips_the_probe(self):
        report = verify_scop(_copy_scop(), cost=False)
        assert report.cost is None
        assert all(d.code != "COST" for d in report.diagnostics)


# ----------------------------------------------------------------------
# Pre-flight inside the model
# ----------------------------------------------------------------------
class TestPreflight:
    def test_error_mode_refuses_broken_programs(self):
        options = ModelOptions(verify="error", symbolic_work_budget=200)
        with pytest.raises(VerificationError) as excinfo:
            CacheModel(None, options).analyze(_copy_scop(read_offset=1))
        assert any(d.code == "OOB" for d in excinfo.value.diagnostics)

    @staticmethod
    def _sched_collision_scop():
        # A schedule collision is an error-severity finding, but the program
        # still executes (unlike an out-of-bounds access, which crashes the
        # trace fallback) — exactly what warn-and-continue needs.
        program = parse_kernel_path(str(BROKEN_DIR / "sched.knl"))
        return program.instantiate(program.dataset_sizes("mini"))

    def test_warn_mode_warns_and_analyzes(self):
        options = ModelOptions(verify="warn", symbolic_work_budget=200)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = CacheModel(None, options).analyze(self._sched_collision_scop())
        assert result.level_results
        assert any(issubclass(w.category, VerificationWarning) for w in caught)

    def test_off_mode_is_silent(self):
        options = ModelOptions(verify="off", symbolic_work_budget=200)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CacheModel(None, options).analyze(self._sched_collision_scop())
        assert not any(issubclass(w.category, VerificationWarning) for w in caught)

    def test_invalid_mode_is_rejected(self):
        options = ModelOptions(verify="loudly")
        with pytest.raises(ValueError, match="verify"):
            CacheModel(None, options).analyze(_copy_scop())

    def test_clean_program_unaffected_by_error_mode(self):
        options = ModelOptions(verify="error", symbolic_work_budget=200)
        assert CacheModel(None, options).analyze(_copy_scop()).level_results


# ----------------------------------------------------------------------
# Report payloads, ordering, rendering
# ----------------------------------------------------------------------
class TestReport:
    def test_payload_schema(self):
        program = parse_kernel_path(str(BROKEN_DIR / "oob.knl"))
        payload = verify_program(program, "mini", cost=False).to_payload()
        assert payload["schema_version"] == DIAGNOSTICS_SCHEMA_VERSION
        assert payload["kernel"] == "broken-oob" and payload["dataset"] == "mini"
        assert payload["summary"]["error"] == 1
        oob = [d for d in payload["diagnostics"] if d["code"] == "OOB"]
        assert oob[0]["location"]["line"] == 18 and oob[0]["location"]["col"] == 12
        json.dumps(payload)  # JSON-serializable end to end

    def test_sort_puts_errors_first(self):
        unsorted = [
            Diagnostic(code="UNUSED", severity="info", message="c"),
            Diagnostic(code="DEAD", severity="warning", message="b"),
            Diagnostic(code="SCHED", severity="error", message="a"),
        ]
        assert [d.severity for d in sort_diagnostics(unsorted)] == [
            "error",
            "warning",
            "info",
        ]

    def test_has_errors_strict_counts_warnings(self):
        program = parse_kernel_path(str(BROKEN_DIR / "dead.knl"))
        report = verify_program(program, cost=False)
        assert not report.has_errors()
        assert report.has_errors(strict=True)

    def test_format_diagnostics_renders_a_table(self):
        program = parse_kernel_path(str(BROKEN_DIR / "oob.knl"))
        report = verify_program(program, "mini", cost=False)
        table = format_diagnostics(report.diagnostics)
        assert "OOB" in table and "error" in table and ":18:12" in table

    def test_invalid_code_and_severity_are_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="BOGUS", severity="error", message="x")
        with pytest.raises(ValueError):
            Diagnostic(code="OOB", severity="fatal", message="x")


# ----------------------------------------------------------------------
# Name resolution: eager failure + did-you-mean
# ----------------------------------------------------------------------
class TestDidYouMean:
    def test_unknown_kernel_suggests_closest(self):
        with pytest.raises(registry.RegistryError, match="did you mean 'gemm'"):
            registry.get_kernel("gem")

    def test_unknown_dataset_suggests_closest(self):
        entry = registry.get_kernel("gemm")
        with pytest.raises(registry.RegistryError, match="did you mean"):
            entry.build("mni")

    def test_unknown_machine_suggests_closest(self):
        with pytest.raises(registry.RegistryError, match="did you mean 'paper-xeon'"):
            registry.get_machine("paper-xeno")

    def test_no_close_match_lists_without_hint(self):
        with pytest.raises(registry.RegistryError) as excinfo:
            registry.get_kernel("zzzzzzzz")
        assert "did you mean" not in str(excinfo.value)
        assert "available:" in str(excinfo.value)

    def test_frontend_dataset_typo(self):
        program = parse_kernel("kernel k\ndataset mini { N = 4 }\narray A[N]\nS0: { [i] : 0 <= i < N }\n    A[i] += 1\n")
        with pytest.raises(KernelParseError, match="did you mean 'mini'"):
            program.dataset_sizes("mni")


# ----------------------------------------------------------------------
# Session façade
# ----------------------------------------------------------------------
class TestSessionLint:
    def test_lint_registered_kernel(self):
        report = Session().lint("gemm", cost=False)
        assert report.kernel == "gemm" and report.dataset == "mini"
        assert not report.has_errors()

    def test_lint_scop_object(self):
        report = Session().lint(_copy_scop(read_offset=1), cost=False)
        assert report.has_errors()
        assert "OOB" in report.codes()

    def test_lint_unknown_kernel_fails_eagerly(self):
        with pytest.raises(registry.RegistryError, match="did you mean"):
            Session().lint("gem", cost=False)
