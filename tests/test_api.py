"""The ``repro.api`` façade: fluent sessions, registries, streaming runs."""

import warnings

import pytest

from repro.api import Session, registry
from repro.api.registry import (
    KernelEntry,
    RegistryError,
    add_kernel,
    register_kernel,
    register_machine,
)
from repro.api.session import SessionConfigError
from repro.core import MachineModel, ModelOptions
from repro.core.results import ModelResult
from repro.engine.batch import BatchResult, JobError
from repro.engine.jobs import JobSpec
from repro.scop import ScopBuilder

#: Tiny budget: heavy kernels degrade instantly to the fast exact fallback.
FAST_BUDGET = 200


def tiny_copy(sizes):
    """A minimal kernel builder usable as a registry entry."""
    n = sizes.get("N", 4)
    b = ScopBuilder("tiny-copy", context={"N": n}, element_size=64)
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    with b.loop("i", 0, n):
        b.stmt(reads=[A[b.v("i")]], writes=[B[b.v("i")]])
    return b.build()


@pytest.fixture
def scratch_registry():
    """Let a test register kernels/machines and restore the tables after."""
    kernels = dict(registry._KERNELS)
    machines = dict(registry._MACHINES)
    yield registry
    registry._KERNELS.clear()
    registry._KERNELS.update(kernels)
    registry._MACHINES.clear()
    registry._MACHINES.update(machines)


class TestRegistry:
    def test_builtin_kernels_and_machines_present(self):
        assert "gemm" in registry.kernel_names()
        assert "jacobi-2d" in registry.kernel_names()
        for name in ("default", "paper-xeon", "l1-only", "polycache"):
            assert name in registry.machine_names()

    def test_machine_presets_resolve(self):
        xeon = registry.resolve_machine("paper-xeon")
        assert [level.name for level in xeon.levels] == ["L1", "L2", "L3"]
        l1 = registry.resolve_machine("l1-only")
        assert len(l1.levels) == 1 and l1.levels[0].size == 32 * 1024

    def test_resolve_machine_passthrough_and_type_error(self):
        model = MachineModel()
        assert registry.resolve_machine(model) is model
        with pytest.raises(TypeError):
            registry.resolve_machine(123)

    def test_unknown_names_raise_with_available_list(self):
        with pytest.raises(RegistryError, match="unknown kernel 'nope'.*gemm"):
            registry.get_kernel("nope")
        with pytest.raises(RegistryError, match="unknown machine 'nope'.*paper-xeon"):
            registry.get_machine("nope")

    def test_register_kernel_decorator_and_build(self, scratch_registry):
        @register_kernel("tiny-copy", datasets={"mini": {"N": 4}, "small": {"N": 8}})
        def builder(sizes):
            return tiny_copy(sizes)

        entry = registry.get_kernel("tiny-copy")
        assert entry.datasets == ("mini", "small")
        assert entry.build("small").context["N"] == 8
        assert entry.build("mini", overrides={"N": 6}).context["N"] == 6
        with pytest.raises(RegistryError, match="no dataset 'huge'"):
            entry.build("huge")

    def test_duplicate_registration_rejected_unless_replaced(self, scratch_registry):
        register_kernel("tiny-copy", tiny_copy)
        with pytest.raises(RegistryError, match="already registered"):
            register_kernel("tiny-copy", tiny_copy)
        register_kernel("tiny-copy", tiny_copy, replace=True)  # explicit override ok
        with pytest.raises(RegistryError, match="already registered"):
            register_machine("default", MachineModel)

    def test_register_kernel_requires_a_dataset(self, scratch_registry):
        with pytest.raises(RegistryError, match="at least one dataset"):
            register_kernel("tiny-copy", tiny_copy, datasets={})


class _FakeDist:
    name = "fake-plugins"


class _FakeEntryPoint:
    """Just enough of importlib.metadata.EntryPoint for discovery."""

    dist = _FakeDist()

    def __init__(self, name, obj):
        self.name = name
        self._obj = obj

    def load(self):
        if isinstance(self._obj, Exception):
            raise self._obj
        return self._obj


class TestEntryPointDiscovery:
    def _discover(self, monkeypatch, kernel_eps=(), machine_eps=()):
        groups = {
            registry.KERNEL_GROUP: list(kernel_eps),
            registry.MACHINE_GROUP: list(machine_eps),
        }
        monkeypatch.setattr(registry, "_iter_entry_points", lambda group: groups.get(group, []))
        return registry.discover_plugins(force=True)

    def test_fake_distribution_contributes_kernel_and_machine(
        self, scratch_registry, monkeypatch
    ):
        tiny_copy.datasets = {"mini": {"N": 4}}
        try:
            loaded = self._discover(
                monkeypatch,
                kernel_eps=[_FakeEntryPoint("plugin-copy", tiny_copy)],
                machine_eps=[_FakeEntryPoint("plugin-machine", MachineModel)],
            )
        finally:
            del tiny_copy.datasets
        assert loaded == ["kernel:plugin-copy", "machine:plugin-machine"]
        entry = registry.get_kernel("plugin-copy")
        assert entry.source == "plugin:fake-plugins"
        assert entry.datasets == ("mini",)
        assert registry.get_machine("plugin-machine").build() == MachineModel()
        # ...and the plugin kernel is a first-class citizen of the façade.
        result = Session().machine("l1-tiny").analyze("plugin-copy")
        assert result.kernel == "tiny-copy" and result.accesses > 0

    def test_broken_plugin_warns_and_is_skipped(self, scratch_registry, monkeypatch):
        with pytest.warns(RuntimeWarning, match="skipping kernel plugin 'broken'"):
            loaded = self._discover(
                monkeypatch,
                kernel_eps=[
                    _FakeEntryPoint("broken", ImportError("boom")),
                    _FakeEntryPoint("plugin-copy", tiny_copy),
                ],
            )
        assert loaded == ["kernel:plugin-copy"]

    def test_plugin_colliding_with_builtin_warns_and_keeps_builtin(
        self, scratch_registry, monkeypatch
    ):
        builtin = registry.get_kernel("gemm")
        with pytest.warns(RuntimeWarning, match="skipping kernel plugin 'gemm'"):
            self._discover(monkeypatch, kernel_eps=[_FakeEntryPoint("gemm", tiny_copy)])
        assert registry.get_kernel("gemm") is builtin


class TestSessionBuilder:
    def test_fluent_chaining_returns_the_session(self):
        session = Session()
        assert session.machine("l1-only").budget(100).workers(2).no_store() is session
        assert session.worker_count == 2

    def test_machine_accepts_name_model_and_sizes(self):
        assert len(Session().machine("paper-xeon").machine_model.levels) == 3
        model = MachineModel()
        assert Session().machine(model).machine_model is model
        levels = Session().machine((1024, 8192)).machine_model.levels
        assert [level.size for level in levels] == [1024, 8192]

    def test_invalid_configuration_raises_at_the_call_site(self):
        with pytest.raises(RegistryError, match="unknown machine"):
            Session().machine("bogus")
        with pytest.raises(SessionConfigError, match="ordered from smallest"):
            Session().machine((8192, 1024))
        with pytest.raises(SessionConfigError, match="must be positive"):
            Session().machine((0,))
        with pytest.raises(SessionConfigError, match="budget"):
            Session().budget(-1)
        with pytest.raises(SessionConfigError, match="worker count"):
            Session().workers(0)
        with pytest.raises(SessionConfigError, match="unknown model options"):
            Session().options(bogus=True)
        with pytest.raises(RegistryError, match="unknown kernel"):
            Session().kernels("gemm", "not-a-kernel")

    def test_budget_zero_means_unlimited(self):
        session = Session().budget(0)
        assert session.model_options().symbolic_work_budget is None

    def test_store_none_disables_while_bare_store_uses_default(self, tmp_path):
        # store(path or None) must keep the old run_batch(store_path=None)
        # meaning: an explicit None disables, only store() picks the default.
        # A bare path is normalized to an explicit backend:root spec.
        assert Session().store(None).store_path is None
        assert Session().store(str(tmp_path)).store_path == f"dir:{tmp_path}"
        assert Session().store().store_path  # default path resolved

    def test_job_error_is_importable_from_the_facade(self):
        import repro.api
        import repro.engine

        assert repro.api.JobError is JobError
        assert repro.engine.JobError is JobError

    def test_request_validation(self):
        with pytest.raises(SessionConfigError, match="nothing to analyse"):
            Session().kernels().run()
        with pytest.raises(SessionConfigError, match="no dataset 'huge'"):
            Session().kernels("gemm").datasets("huge").specs()
        with pytest.raises(SessionConfigError, match="at least one dataset"):
            Session().kernels("gemm").datasets()
        with pytest.raises(SessionConfigError, match="Scop instances"):
            Session().scops("gemm")

    def test_specs_expand_row_major(self):
        specs = (
            Session()
            .budget(FAST_BUDGET)
            .kernels("gemm", "atax")
            .datasets("mini", "small")
            .levels(1024, (1024, 8192))
            .specs()
        )
        assert len(specs) == 8
        assert [(s.kernel, s.dataset, s.levels) for s in specs[:3]] == [
            ("gemm", "mini", (1024,)),
            ("gemm", "mini", (1024, 8192)),
            ("gemm", "small", (1024,)),
        ]
        assert all(spec.symbolic_work_budget == FAST_BUDGET for spec in specs)

    def test_configure_adopts_model_options(self):
        options = ModelOptions(
            equalization=False, fallback_to_simulation=False, symbolic_work_budget=42
        )
        resolved = Session().configure(options).model_options()
        assert resolved.equalization is False
        assert resolved.fallback_to_simulation is False
        assert resolved.symbolic_work_budget == 42

    def test_analyze_kernel_name_and_scop_agree(self):
        session = Session().machine("l1-tiny").budget(FAST_BUDGET)
        by_name = session.analyze("gemm", "mini")
        by_scop = session.analyze(session.build_scop("gemm", "mini"))
        assert by_name.misses(0) == by_scop.misses(0)

    def test_analyze_with_store_round_trips(self, tmp_path):
        session = Session().machine("l1-tiny").budget(FAST_BUDGET).store(str(tmp_path))
        first = session.analyze("gemm", "mini")
        second = session.analyze("gemm", "mini")
        assert second.to_dict() == first.to_dict()


class TestRunAndStream:
    def _session(self, **kwargs):
        return Session().machine("l1-tiny").budget(FAST_BUDGET)

    def test_run_matches_run_iter_content(self):
        session = self._session()
        request = session.kernels("gemm", "atax").datasets("mini")
        batch = request.run()
        streamed = sorted(request.run_iter(), key=lambda record: record.index)
        assert [r.kernel for r in batch] == [r.kernel for r in streamed]
        assert [r.result.misses(0) for r in batch] == [r.result.misses(0) for r in streamed]

    def test_run_iter_streams_partial_results(self, scratch_registry):
        """The first record must arrive before later jobs have even started."""
        built = []

        def counting_builder(sizes):
            built.append(sizes.get("N", 4))
            return tiny_copy(sizes)

        register_kernel("counting-copy", counting_builder,
                        datasets={"mini": {"N": 4}, "small": {"N": 8}, "medium": {"N": 12}})
        iterator = (
            Session()
            .machine("l1-tiny")
            .kernels("counting-copy")
            .datasets("mini", "small", "medium")
            .run_iter()
        )
        first = next(iterator)
        assert first.ok and first.index == 0
        assert built == [4], "only the first job may have run at this point"
        rest = list(iterator)
        assert built == [4, 8, 12]
        assert [record.index for record in rest] == [1, 2]

    def test_run_iter_yields_cached_records_first(self, tmp_path):
        session = self._session().store(str(tmp_path))
        session.kernels("gemm").datasets("mini").run()
        records = list(session.kernels("atax", "gemm").datasets("mini").run_iter())
        assert [record.kernel for record in records] == ["gemm", "atax"]
        assert records[0].cached and not records[1].cached

    def test_progress_callback_counts_up(self):
        seen = []
        batch = (
            self._session()
            .kernels("gemm", "atax")
            .datasets("mini")
            .run(progress=lambda record, done, total: seen.append((record.kernel, done, total)))
        )
        assert batch.error_count == 0
        assert seen == [("gemm", 1, 2), ("atax", 2, 2)]

    def _failing_specs(self, session):
        ok = session.job_spec("gemm", "mini")
        bad = JobSpec(kernel="does-not-exist", dataset="mini", levels=(1024,),
                      symbolic_work_budget=FAST_BUDGET)
        return [ok, bad, session.job_spec("atax", "mini")]

    def test_error_policy_continue_records_all(self):
        session = self._session()
        records = list(session.run_iter(self._failing_specs(session)))
        assert [record.status for record in records] == ["ok", "error", "ok"]

    def test_error_policy_stop_halts_after_failure(self):
        session = self._session()
        records = list(session.run_iter(self._failing_specs(session), error_policy="stop"))
        assert [record.status for record in records] == ["ok", "error"]

    def test_error_policy_raise(self):
        session = self._session()
        iterator = session.run_iter(self._failing_specs(session), error_policy="raise")
        assert next(iterator).ok
        with pytest.raises(JobError, match="does-not-exist"):
            list(iterator)

    def test_unknown_error_policy_rejected(self):
        session = self._session()
        with pytest.raises(ValueError, match="unknown error_policy"):
            list(session.run_iter([session.job_spec("gemm", "mini")], error_policy="bogus"))

    def test_parallel_run_iter_completes_all(self):
        session = self._session().workers(2)
        records = list(session.kernels("gemm", "atax", "bicg").datasets("mini").run_iter())
        assert sorted(record.kernel for record in records) == ["atax", "bicg", "gemm"]
        assert all(record.ok for record in records)

    def test_user_registered_kernel_ships_scop_to_multi_worker_pools(self, scratch_registry):
        # A kernel registered in this process is invisible to spawn-started
        # workers, so multi-worker specs must carry the built program.
        register_kernel("tiny-copy", tiny_copy, datasets={"mini": {"N": 4}})
        session = Session().machine("l1-tiny").workers(2)
        specs = session.kernels("tiny-copy").datasets("mini").specs()
        assert specs[0].scop is not None
        batch = session.kernels("tiny-copy").datasets("mini").run()
        assert batch.ok_count == 1
        # Single-worker sessions keep the lazy name-based path (jobs build
        # only when the streaming consumer reaches them).
        assert Session().kernels("tiny-copy").specs()[0].scop is None


class TestSchemaVersion:
    def _result(self):
        return Session().machine("l1-tiny").budget(FAST_BUDGET).analyze("gemm", "mini")

    def test_model_result_payload_is_versioned(self):
        payload = self._result().to_dict()
        # v2 added the miss_curve section.
        assert payload["schema_version"] == 2
        assert payload["miss_curve"] is not None
        assert ModelResult.from_dict(payload).to_dict() == payload

    def test_model_result_tolerates_missing_version(self):
        payload = self._result().to_dict()
        del payload["schema_version"]
        assert ModelResult.from_dict(payload).misses(0) == self._result().misses(0)

    def test_model_result_rejects_newer_version(self):
        payload = self._result().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version 99"):
            ModelResult.from_dict(payload)

    def test_batch_payload_versioned_and_tolerant(self):
        batch = Session().budget(FAST_BUDGET).kernels("gemm").datasets("mini").run()
        payload = batch.to_dict()
        assert payload["schema_version"] == 3
        clone = BatchResult.from_dict(payload)
        assert clone.to_dict() == payload
        del payload["schema_version"]
        assert BatchResult.from_dict(payload).ok_count == 1
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version 99"):
            BatchResult.from_dict(payload)


class TestRetiredShims:
    """The deprecated ``analyze_kernel``/``run_batch`` wrappers are gone —
    their Session replacements (README migration table) are the only path."""

    def test_analyze_kernel_is_removed(self):
        import repro.core
        import repro.core.model

        assert not hasattr(repro.core, "analyze_kernel")
        assert not hasattr(repro.core.model, "analyze_kernel")
        assert "analyze_kernel" not in repro.core.__all__

    def test_run_batch_is_removed(self):
        import repro.engine
        import repro.engine.batch

        assert not hasattr(repro.engine.batch, "run_batch")
        assert "run_batch" not in repro.engine.__all__
        with pytest.raises(AttributeError):
            repro.engine.run_batch  # noqa: B018 - lazy re-export must be gone

    def test_session_paths_emit_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            batch = Session().budget(FAST_BUDGET).kernels("gemm").datasets("mini").run()
        assert batch.ok_count == 1
