"""Basic sanity tests for the symbolic counting engine."""

from fractions import Fraction

from repro.isl.constraints import ConstraintSystem, eq, ge, le
from repro.isl.counting import cardinality, count_points, piecewise_total
from repro.isl.qpoly import QPoly, floor_div, power_sum_poly


def var(name):
    return QPoly.variable(name)


def test_power_sum_small():
    n = 10
    for k in range(5):
        poly = power_sum_poly(k)
        expected = sum(v ** k for v in range(1, n + 1))
        assert poly.evaluate({"n": n}) == expected


def test_power_sum_negative_telescope():
    poly = power_sum_poly(2)
    # F_k(U) - F_k(L-1) must equal the true sum for negative ranges too.
    low, up = -5, 3
    expected = sum(v ** 2 for v in range(low, up + 1))
    value = poly.evaluate({"n": up}) - poly.evaluate({"n": low - 1})
    assert value == expected


def test_count_box():
    cs = ConstraintSystem([ge("i", 0), le("i", 9), ge("j", 0), le("j", 4)])
    assert cardinality(cs, ["i", "j"], cross_check=True) == 50


def test_count_triangle():
    # 0 <= j <= i <= 9 : 55 points
    cs = ConstraintSystem([ge("i", 0), le("i", 9), ge("j", 0), le(var("j"), var("i"))])
    assert cardinality(cs, ["i", "j"], cross_check=True) == 55


def test_count_parametric_triangle():
    # count_{j} { 0 <= j <= i } parametric in i
    cs = ConstraintSystem([ge("j", 0), le(var("j"), var("i"))])
    pieces = count_points(cs, ["j"])
    total = QPoly()
    for domain, poly in pieces:
        # All pieces must be valid on i >= 0.
        total = total + poly
    assert total.evaluate({"i": 7}) == 8


def test_count_with_equality_stride():
    # { i : 0 <= i <= 20 and 2*i == x } has one point when x even in range.
    cs = ConstraintSystem([ge("i", 0), le("i", 20), eq(var("i") * 2, var("x"))])
    pieces = count_points(cs, ["i"])

    def count_at(x):
        total = Fraction(0)
        for domain, poly in pieces:
            if all(c.expr.evaluate({"x": x}) >= 0 if c.kind == "ineq" else c.expr.evaluate({"x": x}) == 0 for c in domain.constraints):
                total += poly.evaluate({"x": x})
        return total

    assert count_at(10) == 1
    assert count_at(11) == 0
    assert count_at(41) == 0
    assert count_at(40) == 1


def test_count_with_div_constraint():
    # { i : 0 <= i <= 31 and floor(i/8) == 2 } = {16..23}
    cs = ConstraintSystem([ge("i", 0), le("i", 31), eq(floor_div(var("i"), 8), 2)])
    assert cardinality(cs, ["i"], cross_check=True) == 8


def test_cardinality_empty():
    cs = ConstraintSystem([ge("i", 0), le("i", -1)])
    assert cardinality(cs, ["i"], cross_check=True) == 0


def test_triangle_3d():
    # 0 <= k <= j <= i <= 7 : C(10,3)... actually number of triples = C(8+2,3) = 120
    cs = ConstraintSystem(
        [ge("i", 0), le("i", 7), ge("j", 0), le(var("j"), var("i")), ge("k", 0), le(var("k"), var("j"))]
    )
    assert cardinality(cs, ["i", "j", "k"], cross_check=True) == 120
