"""The shared sweep parser: sizes, ranges, axes — and the no-fork grep gate."""

import re
from pathlib import Path

import pytest

from repro.sweep import (
    DEFAULT_SWEEP_POINTS,
    Sweep,
    SweepError,
    expand_range,
    log_spaced,
    parse_size,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4096", 4096),
            ("32K", 32 * 1024),
            ("32k", 32 * 1024),
            ("1M", 1024**2),
            ("2G", 2 * 1024**3),
            ("1MiB", 1024**2),
            ("8KB", 8 * 1024),
            (" 64 ", 64),
        ],
    )
    def test_accepted_spellings(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "x", "12Q", "K", "-64", "1.5K", "3:4"])
    def test_rejected_spellings(self, text):
        with pytest.raises(SweepError):
            parse_size(text)

    def test_zero_is_rejected(self):
        with pytest.raises(SweepError, match="positive"):
            parse_size("0K")

    def test_error_names_the_axis(self):
        with pytest.raises(SweepError, match="line size"):
            parse_size("bogus", label="line size")


class TestLogSpaced:
    def test_formula_contract(self):
        # The rounding recipe is load-bearing: bench baselines and the
        # explore table digest depend on these exact values.
        ratio = 4096.0
        expected = sorted({round(64 * ratio ** (i / 15)) for i in range(16)})
        assert log_spaced(64, 64 * 4096, 16) == expected

    def test_endpoints_present_and_sorted(self):
        values = log_spaced(64, 4096, 8)
        assert values[0] == 64 and values[-1] == 4096
        assert values == sorted(set(values))

    def test_close_bounds_deduplicate(self):
        assert log_spaced(2, 4, 16) == [2, 3, 4]

    def test_degenerate_specs_rejected(self):
        with pytest.raises(SweepError):
            log_spaced(64, 4096, 1)
        with pytest.raises(SweepError):
            log_spaced(4096, 64, 8)


class TestExpandRange:
    def test_default_point_count(self):
        values = expand_range("64:16K")
        assert values[0] == 64 and values[-1] == 16 * 1024
        assert len(values) <= DEFAULT_SWEEP_POINTS

    def test_explicit_points_and_suffixes(self):
        assert expand_range("1K:8K:4") == [1024, 2048, 4096, 8192]

    @pytest.mark.parametrize("spec", ["64", "a:b", "64:1K:x", "64:1K:1", "1K:64", "1:2:3:4"])
    def test_malformed_ranges_rejected(self, spec):
        with pytest.raises(SweepError):
            expand_range(spec)


class TestSweep:
    def test_none_is_the_empty_axis(self):
        axis = Sweep.parse(None)
        assert not axis and len(axis) == 0 and list(axis) == []

    def test_csv_mixing_sizes_and_ranges(self):
        axis = Sweep.parse("64,1K:8K:4,32")
        assert axis.values == (32, 64, 1024, 2048, 4096, 8192)

    def test_single_int_and_iterables(self):
        assert Sweep.parse(4096).values == (4096,)
        assert Sweep.parse([64, "32K", range(1, 4)]).values == (1, 2, 3, 64, 32 * 1024)

    def test_existing_sweep_passes_through(self):
        axis = Sweep.parse("1K,2K")
        assert Sweep.parse(axis) is axis

    def test_duplicates_collapse_sorted(self):
        assert Sweep.parse(["2K", 1024, "1K:2K:2"]).values == (1024, 2048)

    def test_booleans_rejected(self):
        with pytest.raises(SweepError, match="ints or size strings"):
            Sweep.parse([True])

    def test_floats_rejected(self):
        with pytest.raises(SweepError):
            Sweep.parse([1.5])

    def test_nonpositive_rejected(self):
        with pytest.raises(SweepError, match="positive"):
            Sweep.parse([0])

    def test_union(self):
        merged = Sweep.parse("64").union(Sweep.parse("32,64"))
        assert merged.values == (32, 64)


class TestNoForkedParsers:
    """Grep gates: the sweep grammar must never grow a second implementation.

    ``repro.sweep`` is the single owner of the size-suffix regex and the
    log-spacing formula.  A copy anywhere else in ``src/repro`` would let
    the CLI, API, server, and bench grammars drift apart — exactly the bug
    class the shared parser exists to kill.
    """

    def _offending_files(self, needle: str):
        hits = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if path.name == "sweep.py":
                continue
            if re.search(needle, path.read_text(encoding="utf-8")):
                hits.append(str(path.relative_to(SRC_ROOT)))
        return hits

    def test_size_suffix_regex_has_one_home(self):
        assert self._offending_files(r"\(K\|M\|G\)") == []

    def test_log_spacing_formula_has_one_home(self):
        assert self._offending_files(r"ratio\s*\*\*") == []

    def test_min_max_splitting_has_one_home(self):
        # Splitting a spec on ":" is how a hand-rolled MIN:MAX parser starts.
        assert self._offending_files(r"""\.split\(["']:["']\)""") == []
