"""Determinism of intra-analysis parallelism.

The contract of ``ModelOptions.piece_workers`` /
``Session().piece_workers(n)`` is that the *content* of a
:class:`~repro.core.results.ModelResult` — miss counts, fallback status,
work units, statistics — is byte-identical for any worker count, including
where the work budget trips.  These tests pin that contract on a real
symbolic analysis, plus the ordered pool helper and the Session/CLI knobs.
"""

import json

import pytest

from repro.api import Session
from repro.api.session import SessionConfigError
from repro.cli import main
from repro.engine.batch import pool_map_ordered
from repro.reporting.equivalence import diff_payloads, normalize
from repro.scop import ScopBuilder

#: One L1 of 16 lines: y overflows it, x does not (same shape as the bench
#: curve workload, scaled down so one analysis takes around a second).
MACHINE = (16 * 64,)
SIZE = 12


def _matvec(size=SIZE):
    builder = ScopBuilder("par-matvec", context={"N": size}, element_size=64)
    A = builder.array("A", (size, size))
    x = builder.array("x", (size,))
    y = builder.array("y", (size,))
    with builder.loop("i", 0, size):
        with builder.loop("j", 0, size):
            builder.stmt(
                reads=[A[builder.v("i"), builder.v("j")], y[builder.v("j")], x[builder.v("i")]],
                writes=[x[builder.v("i")]],
            )
    return builder.build()


def _analyze(piece_workers, budget=0):
    session = Session().machine(MACHINE).no_store().budget(budget)
    if piece_workers is not None:
        session.piece_workers(piece_workers)
    return session.analyze(_matvec())


def _payload(result):
    return json.dumps(normalize(result.to_dict()), sort_keys=True)


class TestDeterminism:
    def test_results_identical_across_worker_counts(self):
        reference = _analyze(1)
        for workers in (2, 4):
            result = _analyze(workers)
            assert diff_payloads(normalize(reference.to_dict()), normalize(result.to_dict())) == []
            assert _payload(result) == _payload(reference)
        assert not reference.used_fallback

    def test_parallel_curve_matches_sequential_analysis(self):
        sequential = Session().machine(MACHINE).no_store().budget(0).analyze(_matvec())
        parallel = _analyze(2)
        assert parallel.misses(0) == sequential.misses(0)
        assert parallel.level_results[0].compulsory == sequential.level_results[0].compulsory

    def test_budget_trip_identical_across_worker_counts(self):
        # A budget that exhausts mid-way through the per-access work: the
        # fallback decision, the charged units (= limit + 1: the charge that
        # trips), and the final counts must not depend on scheduling.
        reference = _analyze(1, budget=60)
        assert reference.used_fallback
        assert reference.timing.work_units_charged == 61
        for workers in (2, 4):
            result = _analyze(workers, budget=60)
            assert _payload(result) == _payload(reference)


class TestPoolMapOrdered:
    def test_preserves_item_order(self):
        items = list(range(23))
        assert pool_map_ordered(_square, items, workers=4) == [n * n for n in items]

    def test_single_worker_runs_inline(self):
        assert pool_map_ordered(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty_items(self):
        assert pool_map_ordered(_square, [], workers=4) == []


def _square(n):
    return n * n


class TestSessionKnob:
    def test_auto_resolves_to_machine_workers(self):
        from repro.engine.batch import default_worker_count

        session = Session().piece_workers("auto")
        assert session.model_options().piece_workers == default_worker_count()

    def test_explicit_count_and_disable(self):
        assert Session().piece_workers(3).model_options().piece_workers == 3
        assert Session().piece_workers(None).model_options().piece_workers is None

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5, "three"])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(SessionConfigError):
            Session().piece_workers(bad)


class TestCliWorkers:
    def test_model_accepts_workers_flag(self, capsys):
        rc = main(
            ["model", "jacobi-1d", "--dataset", "mini", "--l1", "32768",
             "--budget", "200", "--no-store", "--workers", "2"]
        )
        assert rc == 0
        assert "jacobi-1d" in capsys.readouterr().out

    def test_model_rejects_zero_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(["model", "jacobi-1d", "--workers", "0"])
