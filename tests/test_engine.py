"""Batch engine, cardinality cache, and work-budget behaviour."""

import pytest

from repro.core import CacheLevelSpec, CacheModel, MachineModel, ModelOptions
from repro.core.budget import BudgetExhausted, WorkBudget
from repro.core.results import ModelResult
from repro.engine import BatchEngine, BatchResult, CardinalityCache, JobSpec, expand_matrix
from repro.isl.constraints import ConstraintSystem, ge, le
from repro.scop import ScopBuilder

LINE = 64


def _machine(levels):
    return MachineModel(
        line_size=LINE,
        levels=tuple(CacheLevelSpec(size, f"L{i + 1}") for i, size in enumerate(levels)),
    )


def _transpose(n=8, m=7):
    b = ScopBuilder("transpose", context={"N": n, "M": m}, element_size=LINE)
    A = b.array("A", (n, m))
    B = b.array("B", (m, n))
    with b.loop("i", 0, n):
        with b.loop("j", 0, m):
            b.stmt(reads=[A[b.v("i"), b.v("j")]], writes=[B[b.v("j"), b.v("i")]])
    return b.build()


def _trisum(n=10):
    b = ScopBuilder("trisum", context={"N": n}, element_size=LINE)
    A = b.array("A", (n, n))
    s = b.array("s", (n,))
    with b.loop("i", 0, n):
        with b.loop("j", 0, b.v("i"), upper_inclusive=True):
            b.stmt(reads=[A[b.v("i"), b.v("j")], s[b.v("i")]], writes=[s[b.v("i")]])
    return b.build()


# ----------------------------------------------------------------------
# Cardinality cache
# ----------------------------------------------------------------------
class TestCardinalityCache:
    def test_cache_hits_and_equivalence(self):
        system = ConstraintSystem([ge("i", 0), le("i", 9), ge("j", 0), le("j", "i")])
        cache = CardinalityCache()
        first = cache.cardinality(system, ["i", "j"])
        assert first == 55
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        # A structurally equal system built in a different order hits.
        reordered = ConstraintSystem([le("j", "i"), ge("j", 0), le("i", 9), ge("i", 0)])
        assert cache.cardinality(reordered, ["i", "j"]) == 55
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        # Different count-variable order is a different problem statement.
        cache.cardinality(system, ["j", "i"])
        assert cache.stats.misses == 2

    def test_multi_level_analysis_has_nonzero_hit_rate(self):
        result = CacheModel(_machine((1024, 8192, 65536))).analyze(_transpose())
        timing = result.timing
        assert timing.cardinality_cache_hits > 0
        assert 0.0 < timing.cardinality_cache_hit_rate <= 1.0

    def test_cached_analysis_matches_trace_reference(self):
        options = ModelOptions(cross_check=True)
        result = CacheModel(_machine((1024, 8192)), options).analyze(_trisum())
        assert not result.used_fallback


# ----------------------------------------------------------------------
# Serialization round trip
# ----------------------------------------------------------------------
class TestResultSerialization:
    def test_model_result_round_trip(self):
        result = CacheModel(_machine((1024, 8192))).analyze(_transpose())
        data = result.to_dict()
        clone = ModelResult.from_dict(data)
        assert clone.to_dict() == data
        assert [level.misses for level in clone.level_results] == [
            level.misses for level in result.level_results
        ]
        assert clone.timing.cardinality_cache_hits == result.timing.cardinality_cache_hits
        assert len(clone.per_access) == len(result.per_access)


# ----------------------------------------------------------------------
# Batch engine
# ----------------------------------------------------------------------
class TestBatchEngine:
    def test_expand_matrix_order_and_options(self):
        jobs = expand_matrix(["gemm", "atax"], ["mini", "small"], [(1024,), (1024, 8192)])
        assert len(jobs) == 8
        assert [(j.kernel, j.dataset, j.levels) for j in jobs[:3]] == [
            ("gemm", "mini", (1024,)),
            ("gemm", "mini", (1024, 8192)),
            ("gemm", "small", (1024,)),
        ]
        with pytest.raises(ValueError):
            expand_matrix(["gemm"], options={"bogus": True})

    def test_inline_jobs_with_scops(self):
        specs = [
            JobSpec(kernel="transpose", scop=_transpose(), levels=(1024, 8192), line_size=LINE),
            JobSpec(kernel="trisum", scop=_trisum(), levels=(1024, 8192), line_size=LINE),
        ]
        batch = BatchEngine(jobs=1).run(specs)
        assert batch.ok_count == 2 and batch.error_count == 0
        assert [record.kernel for record in batch] == ["transpose", "trisum"]
        reference = CacheModel(_machine((1024, 8192))).analyze(_transpose())
        assert batch.records[0].result.misses() == reference.misses()

    def test_parallel_matches_sequential(self):
        specs = [
            JobSpec(kernel=name, scop=scop, levels=(1024, 8192), line_size=LINE)
            for name, scop in [
                ("transpose", _transpose()),
                ("trisum", _trisum()),
                ("transpose-9", _transpose(9, 5)),
                ("trisum-8", _trisum(8)),
            ]
        ]
        sequential = BatchEngine(jobs=1).run(specs)
        parallel = BatchEngine(jobs=4).run(specs)
        assert parallel.worker_count == 4

        def miss_signature(batch):
            return [
                (record.kernel, [level.to_dict() for level in record.result.level_results])
                for record in batch
            ]

        assert miss_signature(parallel) == miss_signature(sequential)

    def test_error_isolation(self):
        specs = [
            JobSpec(kernel="no-such-kernel", dataset="mini", levels=(1024,)),
            JobSpec(kernel="transpose", scop=_transpose(), levels=(1024,), line_size=LINE),
        ]
        batch = BatchEngine(jobs=1).run(specs)
        assert batch.error_count == 1 and batch.ok_count == 1
        failed, succeeded = batch.records
        assert failed.status == "error" and "no-such-kernel" in failed.error
        assert succeeded.result is not None

    def test_key_distinguishes_same_name_different_size(self):
        a = JobSpec(kernel="transpose", scop=_transpose(8, 7), levels=(1024,))
        b = JobSpec(kernel="transpose", scop=_transpose(9, 7), levels=(1024,))
        assert a.key() != b.key()

    def test_cross_check_travels_through_batch(self):
        spec = JobSpec(kernel="trisum", scop=_trisum(), levels=(1024,), line_size=LINE, cross_check=True)
        batch = BatchEngine(jobs=1).run([spec])
        assert batch.ok_count == 1 and not batch.records[0].used_fallback

    def test_batch_result_round_trip(self):
        specs = [JobSpec(kernel="transpose", scop=_transpose(), levels=(1024,), line_size=LINE)]
        batch = BatchEngine(jobs=1).run(specs)
        clone = BatchResult.from_dict(batch.to_dict())
        assert clone.to_dict() == batch.to_dict()
        assert clone.records[0].result.misses() == batch.records[0].result.misses()


# ----------------------------------------------------------------------
# Work budget
# ----------------------------------------------------------------------
class TestWorkBudget:
    def test_budget_trips_deterministically(self):
        scop = _trisum(12)
        options = ModelOptions(symbolic_work_budget=50)
        first = CacheModel(_machine((1024,)), options).analyze(scop)
        second = CacheModel(_machine((1024,)), options).analyze(scop)
        assert first.used_fallback and second.used_fallback
        assert [level.to_dict() for level in first.level_results] == [
            level.to_dict() for level in second.level_results
        ]
        # The fallback is exact: unbudgeted symbolic analysis agrees.
        exact = CacheModel(_machine((1024,))).analyze(scop)
        assert not exact.used_fallback
        assert first.misses() == exact.misses()
        assert first.compulsory() == exact.compulsory()

    def test_budget_without_fallback_raises(self):
        options = ModelOptions(symbolic_work_budget=50, fallback_to_simulation=False)
        with pytest.raises(BudgetExhausted):
            CacheModel(_machine((1024,)), options).analyze(_trisum(12))

    def test_generous_budget_does_not_trip(self):
        options = ModelOptions(symbolic_work_budget=1_000_000)
        result = CacheModel(_machine((1024,)), options).analyze(_transpose())
        assert not result.used_fallback

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            WorkBudget(0)
