"""Property-based tests for the cache simulators and the profiler."""

import random

from hypothesis import given, settings, strategies as st

from repro.simulator import FullyAssociativeLRU, SetAssociativeCache, StackDistanceProfiler

line_traces = st.lists(st.integers(min_value=0, max_value=24), min_size=1, max_size=200)


@given(line_traces, st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_stack_distance_inclusion_property(trace, capacity):
    """An access hits an LRU cache of C lines iff its stack distance <= C."""
    cache = FullyAssociativeLRU(capacity * 64, 64)
    hits = [cache.access_line(line) for line in trace]
    distances = StackDistanceProfiler().profile(trace)
    for hit, distance in zip(hits, distances):
        expected = distance is not None and distance <= capacity
        assert hit == expected


@given(line_traces, st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_lru_inclusion_across_sizes(trace, capacity):
    """A larger LRU cache never has more misses (inclusion property)."""
    small = FullyAssociativeLRU(capacity * 64, 64)
    large = FullyAssociativeLRU(2 * capacity * 64, 64)
    for line in trace:
        small.access_line(line)
        large.access_line(line)
    assert large.stats.misses <= small.stats.misses
    assert small.stats.compulsory_misses == large.stats.compulsory_misses


@given(line_traces)
@settings(max_examples=40, deadline=None)
def test_compulsory_misses_equal_distinct_lines(trace):
    cache = FullyAssociativeLRU(64, 64)
    for line in trace:
        cache.access_line(line)
    assert cache.stats.compulsory_misses == len(set(trace))


@given(line_traces)
@settings(max_examples=30, deadline=None)
def test_profiler_histogram_totals(trace):
    histogram = StackDistanceProfiler().histogram(trace)
    assert sum(histogram.values()) == len(trace)
    assert histogram.get(None, 0) == len(set(trace))
