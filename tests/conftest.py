"""Shared pytest configuration: the ``slow`` marker and store isolation.

Slow tests (line-granularity cross-validation on larger kernels) are skipped
by default; run them with ``pytest --run-slow``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_store(tmp_path, monkeypatch):
    """Point the persistent analysis store at a per-test directory.

    CLI runs default to the user-level store (``~/.cache/repro-haystack``);
    tests must stay hermetic and must never warm or pollute it.
    """
    monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "store"))


def pytest_addoption(parser):
    parser.addoption("--run-slow", action="store_true", default=False, help="run slow tests")


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running cross-validation tests")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test; use --run-slow to enable")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
