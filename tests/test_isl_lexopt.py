"""Tests for parametric lexicographic optimisation."""

import pytest

from repro.isl.constraints import ConstraintSystem, eq, ge, le
from repro.isl.lexopt import evaluate_pieces, lexmax, lexmax_explicit, lexmin
from repro.isl.qpoly import QPoly, floor_div


def var(name):
    return QPoly.variable(name)


def test_lexmax_box():
    cs = ConstraintSystem([ge("i", 0), le("i", 9), ge("j", 0), le("j", 4)])
    pieces = lexmax(cs, ["i", "j"])
    assert evaluate_pieces(pieces, 2, {}) == (9, 4)


def test_lexmin_box():
    cs = ConstraintSystem([ge("i", 2), le("i", 9), ge("j", 1), le("j", 4)])
    pieces = lexmin(cs, ["i", "j"])
    assert evaluate_pieces(pieces, 2, {}) == (2, 1)


def test_lexmax_triangle_parametric():
    # { j : 0 <= j <= i } parametric in i -> max j = i (only when i >= 0)
    cs = ConstraintSystem([ge("j", 0), le(var("j"), var("i"))])
    pieces = lexmax(cs, ["j"])
    assert evaluate_pieces(pieces, 1, {"i": 7}) == (7,)
    assert evaluate_pieces(pieces, 1, {"i": -3}) is None


def test_lexmax_two_upper_bounds():
    # { j : 0 <= j <= i and j <= n } -> max j = min(i, n)
    cs = ConstraintSystem([ge("j", 0), le(var("j"), var("i")), le(var("j"), var("n"))])
    pieces = lexmax(cs, ["j"])
    assert evaluate_pieces(pieces, 1, {"i": 3, "n": 10}) == (3,)
    assert evaluate_pieces(pieces, 1, {"i": 10, "n": 3}) == (3,)
    assert evaluate_pieces(pieces, 1, {"i": 5, "n": 5}) == (5,)


def test_lexmax_matches_bruteforce_on_triangles():
    cs = ConstraintSystem(
        [ge("i", 0), le(var("i"), var("n")), ge("j", 0), le(var("j"), var("i"))]
    )
    pieces = lexmax(cs, ["i", "j"])
    for n in range(-1, 6):
        expected = lexmax_explicit(cs, ["i", "j"], {"n": n})
        assert evaluate_pieces(pieces, 2, {"n": n}) == expected


def test_lexmax_with_equality():
    # previous access pattern: { y : 0 <= y < 100, y == x - 1 }
    cs = ConstraintSystem([ge("y", 0), le("y", 99), eq(var("y"), var("x") - 1)])
    pieces = lexmax(cs, ["y"])
    assert evaluate_pieces(pieces, 1, {"x": 5}) == (4,)
    assert evaluate_pieces(pieces, 1, {"x": 0}) is None
    assert evaluate_pieces(pieces, 1, {"x": 100}) == (99,)
    assert evaluate_pieces(pieces, 1, {"x": 101}) is None


def test_lexmax_cache_line_equality():
    # { y : 0 <= y <= 99, y < x, floor(y/8) == floor(x/8) }
    # i.e. the latest earlier access falling in the same cache line: y = x - 1
    # as long as x is not the first element of its line.
    cs = ConstraintSystem(
        [
            ge("y", 0),
            le("y", 99),
            le(var("y"), var("x") - 1),
            eq(floor_div(var("y"), 8), floor_div(var("x"), 8)),
        ]
    )
    pieces = lexmax(cs, ["y"])
    assert evaluate_pieces(pieces, 1, {"x": 13}) == (12,)
    assert evaluate_pieces(pieces, 1, {"x": 16}) is None  # first element of line 2
    assert evaluate_pieces(pieces, 1, {"x": 17}) == (16,)


def test_lexmax_contexts_disjoint():
    cs = ConstraintSystem([ge("j", 0), le(var("j"), var("i")), le(var("j"), var("n"))])
    pieces = lexmax(cs, ["j"])
    for i in range(0, 6):
        for n in range(0, 6):
            covering = [
                ctx
                for ctx, _ in pieces
                if all(
                    (c.expr.evaluate({"i": i, "n": n}) == 0 if c.kind == "eq" else c.expr.evaluate({"i": i, "n": n}) >= 0)
                    for c in ctx.constraints
                )
            ]
            assert len(covering) == 1
